"""End-to-end integration tests: DSE → workload → schedulers → analysis → RM."""

import pytest

from repro.analysis import evaluate_suite
from repro.platforms import odroid_xu4
from repro.runtime import RuntimeManager, poisson_trace
from repro.schedulers import ExMemScheduler, MMKPLRScheduler, MMKPMDFScheduler
from repro.workload import EvaluationSuite
from repro.workload.suite import scaled_census
from repro.workload.testgen import DeadlineLevel


class TestOfflineEvaluationPipeline:
    """The full Fig.2/Table IV/Fig.4 pipeline on a miniature workload."""

    @pytest.fixture(scope="class")
    def results(self, small_tables, odroid):
        suite = EvaluationSuite.generate(small_tables, scaled_census(0.01), seed=21)
        schedulers = [ExMemScheduler(), MMKPLRScheduler(), MMKPMDFScheduler()]
        return evaluate_suite(suite, odroid, small_tables, schedulers)

    def test_every_scheduler_ran_every_case(self, results):
        per_scheduler = {name: len(results.runs_of(name)) for name in results.schedulers}
        assert len(set(per_scheduler.values())) == 1

    def test_exmem_scheduling_rate_dominates(self, results):
        for level in (DeadlineLevel.WEAK, DeadlineLevel.TIGHT):
            reference = results.scheduling_rate("ex-mem", level)
            for scheduler in ("mmkp-lr", "mmkp-mdf"):
                rates = results.scheduling_rate(scheduler, level)
                for num_jobs, rate in rates.items():
                    assert rate <= reference[num_jobs] + 1e-9

    def test_relative_energies_are_at_least_one(self, results):
        for scheduler in ("mmkp-lr", "mmkp-mdf"):
            for _, ratio in results.relative_energies(scheduler, "ex-mem"):
                assert ratio >= 1.0 - 1e-9

    def test_mdf_is_faster_than_lr_on_average(self, results):
        mdf = results.search_time_stats("mmkp-mdf")
        lr = results.search_time_stats("mmkp-lr")
        mdf_mean = sum(s.mean for s in mdf.values()) / len(mdf)
        lr_mean = sum(s.mean for s in lr.values()) / len(lr)
        assert mdf_mean < lr_mean


class TestOnlineRuntimeManagerPipeline:
    """DSE tables driving the online runtime manager over a Poisson trace."""

    def test_online_simulation_with_dse_tables(self, small_tables, odroid):
        trace = poisson_trace(
            small_tables,
            arrival_rate=0.2,
            num_requests=10,
            deadline_factor_range=(2.0, 5.0),
            seed=13,
        )
        manager = RuntimeManager.from_components(odroid, small_tables, MMKPMDFScheduler())
        log = manager.run(trace)
        assert len(log.outcomes) == 10
        assert log.total_energy > 0
        for outcome in log.accepted:
            assert outcome.met_deadline
        # The executed timeline is time-ordered and gap-free in execution.
        for earlier, later in zip(log.timeline, log.timeline[1:]):
            assert earlier.end <= later.start + 1e-9

    def test_acceptance_degrades_gracefully_under_overload(self, small_tables, odroid):
        relaxed = poisson_trace(
            small_tables, arrival_rate=0.05, num_requests=8,
            deadline_factor_range=(3.0, 5.0), seed=3,
        )
        overloaded = poisson_trace(
            small_tables, arrival_rate=5.0, num_requests=8,
            deadline_factor_range=(1.0, 1.5), seed=3,
        )
        manager = RuntimeManager.from_components(odroid, small_tables, MMKPMDFScheduler())
        relaxed_rate = manager.run(relaxed).acceptance_rate
        overloaded_rate = manager.run(overloaded).acceptance_rate
        assert overloaded_rate <= relaxed_rate
