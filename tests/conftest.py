"""Shared fixtures for the test-suite.

Expensive artefacts (the DSE-generated operating-point tables, the small
evaluation suite) are session-scoped so the whole suite builds them once.
"""

from __future__ import annotations

import pytest

from repro.core.problem import SchedulingProblem
from repro.dse import paper_operating_points, reduced_tables
from repro.platforms import big_little, odroid_xu4
from repro.workload import EvaluationSuite
from repro.workload.motivational import (
    motivational_platform,
    motivational_problem,
    motivational_tables,
)
from repro.workload.suite import scaled_census
from repro.workload.testgen import TestCaseGenerator


@pytest.fixture(scope="session")
def odroid():
    """The Odroid XU4 platform model."""
    return odroid_xu4()


@pytest.fixture(scope="session")
def small_platform():
    """The 2-little/2-big platform of the motivational example."""
    return motivational_platform()


@pytest.fixture(scope="session")
def paper_tables(odroid):
    """Full DSE-generated tables for all application/input-size variants."""
    return paper_operating_points(odroid)


@pytest.fixture(scope="session")
def small_tables(paper_tables):
    """Tables capped at 6 points per application (keeps EX-MEM affordable)."""
    return reduced_tables(paper_tables, max_points=6)


@pytest.fixture(scope="session")
def mot_tables():
    """The Table II configuration tables of the motivational example."""
    return motivational_tables()


@pytest.fixture()
def mot_problem_s1():
    """The scheduling problem at t=1 of motivational scenario S1."""
    return motivational_problem("S1")


@pytest.fixture()
def mot_problem_s2():
    """The scheduling problem at t=1 of motivational scenario S2 (tight)."""
    return motivational_problem("S2")


@pytest.fixture(scope="session")
def tiny_suite(small_tables):
    """A down-scaled evaluation suite (1% census, >= 1 case per bucket)."""
    return EvaluationSuite.generate(small_tables, scaled_census(0.01), seed=11)


@pytest.fixture(scope="session")
def random_problems(small_tables, odroid):
    """A batch of random scheduling problems used by cross-scheduler tests."""
    generator = TestCaseGenerator(small_tables, seed=97)
    problems: list[SchedulingProblem] = []
    from repro.workload.testgen import DeadlineLevel

    for num_jobs in (1, 2, 3):
        for level in (DeadlineLevel.WEAK, DeadlineLevel.TIGHT):
            for _ in range(4):
                case = generator.generate_case(num_jobs, level)
                problems.append(case.problem(odroid, small_tables))
    return problems
