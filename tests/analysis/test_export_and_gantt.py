"""Tests for CSV export and the textual Gantt rendering."""

import csv

import pytest

from repro.analysis import (
    format_schedule_gantt,
    write_runs_csv,
    write_schedule_csv,
    write_scurve_csv,
)
from repro.analysis.experiments import SchedulerRun, SuiteResults
from repro.schedulers import MMKPMDFScheduler
from repro.workload.motivational import motivational_problem
from repro.workload.testgen import DeadlineLevel


@pytest.fixture()
def results():
    runs = []
    for index in range(3):
        for scheduler, energy in (("ref", 2.0), ("heu", 2.0 + index)):
            runs.append(
                SchedulerRun(
                    case_name=f"tc{index}",
                    num_jobs=2,
                    deadline_level=DeadlineLevel.WEAK,
                    scheduler=scheduler,
                    feasible=True,
                    energy=energy,
                    search_time=0.001,
                )
            )
    return SuiteResults(runs)


@pytest.fixture()
def schedule_and_problem():
    problem = motivational_problem("S1")
    result = MMKPMDFScheduler().schedule(problem)
    return result.schedule, problem


class TestCsvExport:
    def test_runs_csv(self, results, tmp_path):
        path = tmp_path / "runs.csv"
        count = write_runs_csv(results, path)
        assert count == 6
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "case"
        assert len(rows) == 7

    def test_scurve_csv(self, results, tmp_path):
        path = tmp_path / "scurve.csv"
        length = write_scurve_csv(results, ["heu"], "ref", path)
        assert length == 3
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["rank", "heu"]
        # The curve is sorted ascending.
        values = [float(row[1]) for row in rows[1:]]
        assert values == sorted(values)

    def test_schedule_csv(self, schedule_and_problem, tmp_path):
        schedule, problem = schedule_and_problem
        path = tmp_path / "schedule.csv"
        rows = write_schedule_csv(schedule, problem.tables, path)
        assert rows == sum(len(segment) for segment in schedule)
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert {row["job"] for row in parsed} == {"sigma1", "sigma2"}

    def test_infeasible_energy_is_written_as_empty(self, tmp_path):
        run = SchedulerRun("tc", 1, DeadlineLevel.TIGHT, "x", False, float("inf"), 0.0)
        path = tmp_path / "runs.csv"
        write_runs_csv(SuiteResults([run]), path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[1][5] == ""


class TestGantt:
    def test_contains_every_job_row(self, schedule_and_problem):
        schedule, _ = schedule_and_problem
        rendered = format_schedule_gantt(schedule, None, width=40)
        assert "sigma1" in rendered and "sigma2" in rendered
        # Two job rows plus the header line.
        assert len(rendered.splitlines()) == 3

    def test_suspension_is_rendered_as_dots(self, schedule_and_problem):
        schedule, _ = schedule_and_problem
        rendered = format_schedule_gantt(schedule, None, width=40)
        sigma1_row = next(l for l in rendered.splitlines() if "sigma1" in l)
        # sigma1 is suspended while sigma2 runs (Fig. 1c), so its row starts
        # with suspension dots and later shows its configuration index 6.
        cells = sigma1_row.split("|")[1]
        assert cells.startswith(".")
        assert "6" in cells

    def test_empty_schedule(self):
        from repro.core.segment import Schedule

        assert "empty" in format_schedule_gantt(Schedule(), None)
