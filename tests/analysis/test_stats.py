"""Tests for the statistics helpers."""

import math

import pytest

from repro.analysis.stats import BoxplotStats, geometric_mean, percentile, s_curve


class TestGeometricMean:
    def test_known_values(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_is_below_arithmetic_mean(self):
        values = [1.0, 2.0, 10.0]
        assert geometric_mean(values) < sum(values) / len(values)

    def test_empty_input_gives_nan(self):
        assert math.isnan(geometric_mean([]))

    def test_non_positive_values_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])


class TestSCurve:
    def test_sorts_ascending(self):
        assert s_curve([3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]

    def test_empty(self):
        assert s_curve([]) == []


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([1.0, 2.0, 9.0], 0.5) == pytest.approx(2.0)

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_bounds(self):
        data = [1.0, 2.0, 3.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 3.0
        with pytest.raises(ValueError):
            percentile(data, 1.5)

    def test_empty_and_singleton(self):
        assert math.isnan(percentile([], 0.5))
        assert percentile([7.0], 0.9) == 7.0


class TestBoxplotStats:
    def test_five_number_summary(self):
        stats = BoxplotStats.from_samples([5.0, 1.0, 3.0, 2.0, 4.0])
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.median == 3.0
        assert stats.q1 == 2.0
        assert stats.q3 == 4.0
        assert stats.mean == pytest.approx(3.0)
        assert stats.count == 5

    def test_requires_at_least_one_sample(self):
        with pytest.raises(ValueError):
            BoxplotStats.from_samples([])

    def test_single_sample(self):
        stats = BoxplotStats.from_samples([2.5])
        assert stats.minimum == stats.maximum == stats.median == 2.5
