"""Tests for the experiment harness and the text reports."""

import pytest

from repro.analysis import (
    SuiteResults,
    evaluate_suite,
    format_fig2_scheduling_rate,
    format_fig3_scurve,
    format_fig4_search_time,
    format_table_iii,
    format_table_iv,
)
from repro.analysis.experiments import SchedulerRun
from repro.exceptions import SchedulingError
from repro.platforms import big_little
from repro.schedulers import ExMemScheduler, MMKPMDFScheduler
from repro.workload import EvaluationSuite
from repro.workload.motivational import motivational_tables
from repro.workload.suite import scaled_census
from repro.workload.testgen import DeadlineLevel


def synthetic_runs():
    """Hand-crafted runs with known aggregate values."""
    runs = []
    for index, (feasible, energy) in enumerate([(True, 2.0), (True, 4.0), (False, float("inf"))]):
        runs.append(
            SchedulerRun(
                case_name=f"tc{index}",
                num_jobs=2,
                deadline_level=DeadlineLevel.TIGHT,
                scheduler="heuristic",
                feasible=feasible,
                energy=energy,
                search_time=0.002,
            )
        )
        runs.append(
            SchedulerRun(
                case_name=f"tc{index}",
                num_jobs=2,
                deadline_level=DeadlineLevel.TIGHT,
                scheduler="reference",
                feasible=True,
                energy=2.0,
                search_time=0.1,
            )
        )
    return runs


class TestSuiteResults:
    def test_scheduling_rate(self):
        results = SuiteResults(synthetic_runs())
        rates = results.scheduling_rate("heuristic", DeadlineLevel.TIGHT)
        assert rates[2] == pytest.approx(100.0 * 2 / 3)
        assert results.scheduling_rate("reference", DeadlineLevel.TIGHT)[2] == 100.0

    def test_relative_energy_uses_commonly_scheduled_cases_only(self):
        results = SuiteResults(synthetic_runs())
        ratios = [r for _, r in results.relative_energies("heuristic", "reference")]
        assert sorted(ratios) == [pytest.approx(1.0), pytest.approx(2.0)]
        table = results.relative_energy_table(["heuristic"], "reference")
        assert table["heuristic"][(DeadlineLevel.TIGHT, 2)] == pytest.approx(2.0**0.5)
        # Aggregate buckets are present.
        assert (None, 0) in table["heuristic"]

    def test_s_curve_and_optimal_share(self):
        results = SuiteResults(synthetic_runs())
        curve = results.relative_energy_curve("heuristic", "reference")
        assert curve == [pytest.approx(1.0), pytest.approx(2.0)]
        assert results.optimal_share("heuristic", "reference") == pytest.approx(0.5)

    def test_search_time_stats(self):
        results = SuiteResults(synthetic_runs())
        stats = results.search_time_stats("reference")
        assert stats[2].count == 3
        assert stats[2].mean == pytest.approx(0.1)

    def test_unknown_scheduler_raises(self):
        results = SuiteResults(synthetic_runs())
        with pytest.raises(SchedulingError):
            results.runs_of("ghost")
        with pytest.raises(SchedulingError):
            results.relative_energies("heuristic", "ghost")


class TestEvaluateSuite:
    @pytest.fixture(scope="class")
    def small_results(self):
        tables = motivational_tables()
        suite = EvaluationSuite.generate(tables, scaled_census(0.01), seed=3)
        schedulers = [ExMemScheduler(), MMKPMDFScheduler()]
        return (
            suite,
            evaluate_suite(suite, big_little(2, 2), tables, schedulers),
        )

    def test_one_run_per_case_and_scheduler(self, small_results):
        suite, results = small_results
        assert len(results.runs) == 2 * len(suite)
        assert set(results.schedulers) == {"ex-mem", "mmkp-mdf"}

    def test_mdf_energy_is_never_below_exmem(self, small_results):
        _, results = small_results
        for _, ratio in results.relative_energies("mmkp-mdf", "ex-mem"):
            assert ratio >= 1.0 - 1e-9

    def test_reports_render(self, small_results):
        suite, results = small_results
        assert "Table III" in format_table_iii(suite)
        fig2 = format_fig2_scheduling_rate(results, ["ex-mem", "mmkp-mdf"])
        assert "scheduling rate" in fig2
        table4 = format_table_iv(results, ["mmkp-mdf"], "ex-mem")
        assert "geometric mean" in table4
        fig3 = format_fig3_scurve(results, ["mmkp-mdf"], "ex-mem")
        assert "S-curves" in fig3
        fig4 = format_fig4_search_time(results, ["ex-mem", "mmkp-mdf"])
        assert "overhead" in fig4
        # Every scheduler name appears in its report.
        assert "mmkp-mdf" in fig2 and "mmkp-mdf" in fig4
