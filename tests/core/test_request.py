"""Tests for :class:`repro.core.request.Job`."""

import pytest

from repro.core.request import Job
from repro.exceptions import SchedulingError


class TestJobConstruction:
    def test_defaults_to_unstarted_job(self):
        job = Job("j", "app", arrival=0.0, deadline=5.0)
        assert job.remaining_ratio == 1.0
        assert job.completed_ratio == 0.0
        assert not job.is_started()

    def test_validation(self):
        with pytest.raises(SchedulingError):
            Job("", "app", 0.0, 1.0)
        with pytest.raises(SchedulingError):
            Job("j", "", 0.0, 1.0)
        with pytest.raises(SchedulingError):
            Job("j", "app", 2.0, 1.0)
        with pytest.raises(SchedulingError):
            Job("j", "app", 0.0, 1.0, remaining_ratio=0.0)
        with pytest.raises(SchedulingError):
            Job("j", "app", 0.0, 1.0, remaining_ratio=1.5)

    def test_laxity(self):
        job = Job("j", "app", arrival=0.0, deadline=5.0)
        assert job.laxity(2.0) == pytest.approx(3.0)
        assert job.laxity(7.0) == pytest.approx(-2.0)


class TestProgressUpdates:
    def test_with_progress_reduces_remaining_ratio(self):
        job = Job("j", "app", 0.0, 10.0)
        progressed = job.with_progress(0.25)
        assert progressed.remaining_ratio == pytest.approx(0.75)
        assert progressed.is_started()
        # The original job is unchanged (immutability).
        assert job.remaining_ratio == 1.0

    def test_with_progress_to_completion(self):
        job = Job("j", "app", 0.0, 10.0, remaining_ratio=0.3)
        finished = job.with_progress(0.3)
        assert finished.is_finished()

    def test_with_progress_beyond_remaining_raises(self):
        job = Job("j", "app", 0.0, 10.0, remaining_ratio=0.3)
        with pytest.raises(SchedulingError):
            job.with_progress(0.4)

    def test_negative_progress_raises(self):
        job = Job("j", "app", 0.0, 10.0)
        with pytest.raises(SchedulingError):
            job.with_progress(-0.1)

    def test_with_remaining_replaces_ratio(self):
        job = Job("j", "app", 0.0, 10.0)
        assert job.with_remaining(0.4).remaining_ratio == pytest.approx(0.4)

    def test_is_finished_tolerance(self):
        job = Job("j", "app", 0.0, 10.0, remaining_ratio=1e-7)
        assert job.is_finished()
        assert not Job("j", "app", 0.0, 10.0, remaining_ratio=0.5).is_finished()
