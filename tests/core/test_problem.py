"""Tests for the scheduling problem container and the constraint validator."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.exceptions import SchedulingError
from repro.platforms.resources import ResourceVector


@pytest.fixture()
def tables():
    return {
        "app": ConfigTable(
            "app",
            [
                OperatingPoint(ResourceVector([1, 0]), 10.0, 2.0),
                OperatingPoint(ResourceVector([2, 1]), 4.0, 6.0),
            ],
        )
    }


@pytest.fixture()
def jobs():
    return [
        Job("a", "app", arrival=0.0, deadline=12.0),
        Job("b", "app", arrival=0.0, deadline=6.0, remaining_ratio=0.5),
    ]


@pytest.fixture()
def problem(tables, jobs):
    return SchedulingProblem(ResourceVector([2, 2]), tables, jobs, now=0.0)


class TestConstruction:
    def test_accessors(self, problem):
        assert problem.capacity.counts == (2, 2)
        assert problem.now == 0.0
        assert problem.horizon == 12.0
        assert problem.job("a").deadline == 12.0
        assert problem.table_for("app").application == "app"
        assert problem.table_for(problem.job("b")) is problem.table_for("app")

    def test_platform_can_be_passed_directly(self, tables, jobs):
        from repro.platforms import big_little

        problem = SchedulingProblem(big_little(2, 2), tables, jobs)
        assert problem.capacity.counts == (2, 2)

    def test_processing_capacity_follows_algorithm1_line1(self, problem):
        # Horizon is 12 s, capacity (2, 2) -> 24 core-seconds per type.
        assert problem.processing_capacity() == [24.0, 24.0]

    def test_validation_errors(self, tables, jobs):
        with pytest.raises(SchedulingError):
            SchedulingProblem(ResourceVector([2, 2]), tables, [])
        with pytest.raises(SchedulingError):
            SchedulingProblem(ResourceVector([2, 2]), tables, jobs + [jobs[0]])
        with pytest.raises(SchedulingError):
            SchedulingProblem(
                ResourceVector([2, 2]),
                tables,
                [Job("x", "unknown-app", 0.0, 5.0)],
            )
        with pytest.raises(SchedulingError):
            # Deadline lies before the activation time.
            SchedulingProblem(ResourceVector([2, 2]), tables, jobs, now=100.0)
        with pytest.raises(SchedulingError):
            # Table dimension mismatch.
            SchedulingProblem(ResourceVector([2]), tables, jobs)
        with pytest.raises(SchedulingError):
            SchedulingProblem(ResourceVector([2, 2]), tables, jobs).job("missing")

    def test_with_jobs_and_with_now(self, problem, jobs):
        fewer = problem.with_jobs(jobs[:1])
        assert len(fewer.jobs) == 1
        later = problem.with_now(1.0)
        assert later.now == 1.0


class TestValidation:
    def _valid_schedule(self, jobs):
        # Job b (half remaining) uses the fast configuration first, then job a
        # runs alone until its deadline — the adaptive-suspension pattern.
        job_a, job_b = jobs
        return Schedule(
            [
                MappingSegment(0.0, 2.0, [JobMapping(job_b, 1)]),
                MappingSegment(2.0, 12.0, [JobMapping(job_a, 0)]),
            ]
        )

    def test_none_schedule_is_infeasible(self, problem):
        report = problem.validate(None)
        assert not report
        assert "no schedule" in report.violations[0]

    def test_valid_schedule_passes_and_reports_energy(self, problem, jobs, tables):
        schedule = self._valid_schedule(jobs)
        report = problem.validate(schedule)
        assert report.feasible, report.violations
        assert report.energy == pytest.approx(schedule.total_energy(tables))

    def test_resource_overload_is_detected(self, problem, jobs):
        job_a, job_b = jobs
        # Both jobs in the heavy (2, 1) configuration need (4, 2) > (2, 2).
        schedule = Schedule(
            [
                MappingSegment(0.0, 2.0, [JobMapping(job_b, 1), JobMapping(job_a, 1)]),
                MappingSegment(2.0, 4.0, [JobMapping(job_a, 1)]),
            ]
        )
        report = problem.validate(schedule)
        assert not report.feasible
        assert any("capacity" in v for v in report.violations)

    def test_incomplete_progress_is_detected(self, problem, jobs):
        job_a, job_b = jobs
        schedule = Schedule(
            [MappingSegment(0.0, 2.0, [JobMapping(job_b, 1), JobMapping(job_a, 0)])]
        )
        report = problem.validate(schedule)
        assert not report.feasible
        assert any("completes" in v for v in report.violations)

    def test_deadline_miss_is_detected(self, tables):
        job = Job("late", "app", arrival=0.0, deadline=5.0)
        problem = SchedulingProblem(ResourceVector([2, 2]), tables, [job])
        schedule = Schedule([MappingSegment(0.0, 10.0, [JobMapping(job, 0)])])
        report = problem.validate(schedule)
        assert not report.feasible
        assert any("deadline" in v for v in report.violations)

    def test_unknown_job_in_schedule_is_detected(self, problem, jobs):
        stranger = Job("stranger", "app", 0.0, 50.0)
        schedule = Schedule(
            [
                MappingSegment(0.0, 2.0, [JobMapping(jobs[1], 1), JobMapping(stranger, 0)]),
            ]
        )
        report = problem.validate(schedule)
        assert not report.feasible
        assert any("unknown" in v for v in report.violations)

    def test_schedule_starting_before_now_is_detected(self, tables):
        job = Job("a", "app", arrival=0.0, deadline=20.0, remaining_ratio=0.5)
        problem = SchedulingProblem(ResourceVector([2, 2]), tables, [job], now=5.0)
        schedule = Schedule([MappingSegment(0.0, 5.0, [JobMapping(job, 0)])])
        report = problem.validate(schedule)
        assert not report.feasible
        assert any("before activation" in v for v in report.violations)
