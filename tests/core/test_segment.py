"""Tests for job mappings, mapping segments and schedules."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.exceptions import SchedulingError
from repro.platforms.resources import ResourceVector


@pytest.fixture()
def tables():
    return {
        "app": ConfigTable(
            "app",
            [
                OperatingPoint(ResourceVector([1, 0]), 10.0, 2.0),
                OperatingPoint(ResourceVector([2, 1]), 4.0, 6.0),
            ],
        )
    }


@pytest.fixture()
def job():
    return Job("j1", "app", arrival=0.0, deadline=20.0)


@pytest.fixture()
def other_job():
    return Job("j2", "app", arrival=0.0, deadline=20.0)


class TestJobMapping:
    def test_accessors(self, job):
        mapping = JobMapping(job, 1)
        assert mapping.job_name == "j1"
        assert mapping.application == "app"

    def test_operating_point_resolution(self, job, tables):
        assert JobMapping(job, 1).operating_point(tables).execution_time == 4.0

    def test_unknown_application_raises(self, tables):
        mapping = JobMapping(Job("x", "ghost", 0.0, 5.0), 0)
        with pytest.raises(SchedulingError):
            mapping.operating_point(tables)

    def test_negative_config_index_rejected(self, job):
        with pytest.raises(SchedulingError):
            JobMapping(job, -1)


class TestMappingSegment:
    def test_duration_and_queries(self, job, tables):
        segment = MappingSegment(1.0, 3.0, [JobMapping(job, 0)])
        assert segment.duration == pytest.approx(2.0)
        assert segment.job_names() == {"j1"}
        assert segment.mapping_for("j1").config_index == 0
        assert segment.mapping_for("missing") is None

    def test_resource_usage_and_energy(self, job, other_job, tables):
        segment = MappingSegment(
            0.0, 2.0, [JobMapping(job, 0), JobMapping(other_job, 1)]
        )
        assert segment.resource_usage(tables, 2).counts == (3, 1)
        # Energy: 2 J * 2/10 + 6 J * 2/4 = 0.4 + 3.0
        assert segment.energy(tables) == pytest.approx(3.4)

    def test_progress_of(self, job, tables):
        segment = MappingSegment(0.0, 2.0, [JobMapping(job, 0)])
        assert segment.progress_of("j1", tables) == pytest.approx(0.2)
        assert segment.progress_of("absent", tables) == 0.0

    def test_invalid_interval_rejected(self, job):
        with pytest.raises(SchedulingError):
            MappingSegment(2.0, 2.0, [JobMapping(job, 0)])
        with pytest.raises(SchedulingError):
            MappingSegment(3.0, 2.0, [JobMapping(job, 0)])

    def test_duplicate_job_mapping_rejected(self, job):
        with pytest.raises(SchedulingError):
            MappingSegment(0.0, 1.0, [JobMapping(job, 0), JobMapping(job, 1)])

    def test_with_mapping_adds_and_rejects_duplicates(self, job, other_job):
        segment = MappingSegment(0.0, 1.0, [JobMapping(job, 0)])
        extended = segment.with_mapping(JobMapping(other_job, 1))
        assert extended.job_names() == {"j1", "j2"}
        with pytest.raises(SchedulingError):
            extended.with_mapping(JobMapping(job, 1))

    def test_split_at(self, job):
        segment = MappingSegment(0.0, 4.0, [JobMapping(job, 0)])
        first, second = segment.split_at(1.5)
        assert (first.start, first.end) == (0.0, 1.5)
        assert (second.start, second.end) == (1.5, 4.0)
        assert first.job_names() == second.job_names() == {"j1"}

    def test_split_outside_interval_rejected(self, job):
        segment = MappingSegment(0.0, 4.0, [JobMapping(job, 0)])
        with pytest.raises(SchedulingError):
            segment.split_at(0.0)
        with pytest.raises(SchedulingError):
            segment.split_at(4.0)


class TestSchedule:
    def _schedule(self, job, other_job):
        return Schedule(
            [
                MappingSegment(0.0, 2.0, [JobMapping(job, 1)]),
                MappingSegment(2.0, 5.0, [JobMapping(job, 0), JobMapping(other_job, 0)]),
            ]
        )

    def test_ordering_and_bounds(self, job, other_job):
        schedule = self._schedule(job, other_job)
        assert schedule.start == 0.0
        assert schedule.end == 5.0
        assert schedule.makespan == 5.0
        assert schedule.is_contiguous()
        assert len(schedule) == 2

    def test_empty_schedule(self):
        schedule = Schedule()
        assert not schedule
        assert schedule.end == 0.0
        assert schedule.job_names() == set()

    def test_overlapping_segments_rejected(self, job):
        with pytest.raises(SchedulingError):
            Schedule(
                [
                    MappingSegment(0.0, 2.0, [JobMapping(job, 0)]),
                    MappingSegment(1.0, 3.0, [JobMapping(job, 0)]),
                ]
            )

    def test_segments_are_sorted_by_start(self, job, other_job):
        schedule = Schedule(
            [
                MappingSegment(2.0, 5.0, [JobMapping(other_job, 0)]),
                MappingSegment(0.0, 2.0, [JobMapping(job, 0)]),
            ]
        )
        assert [s.start for s in schedule] == [0.0, 2.0]

    def test_job_queries(self, job, other_job, tables):
        schedule = self._schedule(job, other_job)
        assert schedule.job_names() == {"j1", "j2"}
        assert schedule.completion_time("j1") == pytest.approx(5.0)
        assert schedule.completion_time("j2") == pytest.approx(5.0)
        assert schedule.completion_time("missing") is None
        # j1 runs config 1 for 2 s (2/4 progress) then config 0 for 3 s (3/10).
        assert schedule.total_progress("j1", tables) == pytest.approx(0.8)
        assert schedule.configuration_changes("j1") == 1
        assert schedule.configuration_changes("j2") == 0

    def test_total_energy(self, job, other_job, tables):
        schedule = self._schedule(job, other_job)
        expected = 6.0 * 2 / 4 + 2.0 * 3 / 10 + 2.0 * 3 / 10
        assert schedule.total_energy(tables) == pytest.approx(expected)

    def test_with_segment_and_replace_segment(self, job, other_job):
        schedule = Schedule([MappingSegment(0.0, 2.0, [JobMapping(job, 0)])])
        extended = schedule.with_segment(MappingSegment(2.0, 3.0, [JobMapping(other_job, 0)]))
        assert len(extended) == 2
        target = extended.segments[0]
        replaced = extended.replace_segment(
            target, target.split_at(1.0)
        )
        assert len(replaced) == 3
        with pytest.raises(SchedulingError):
            extended.replace_segment(MappingSegment(9.0, 10.0, []), [])

    def test_truncation(self, job, other_job):
        schedule = self._schedule(job, other_job)
        tail = schedule.truncated_before(3.0)
        assert tail.start == pytest.approx(3.0)
        assert tail.end == pytest.approx(5.0)
        head = schedule.truncated_after(3.0)
        assert head.start == pytest.approx(0.0)
        assert head.end == pytest.approx(3.0)
        # Truncating outside the schedule returns everything / nothing.
        assert schedule.truncated_before(0.0) == schedule
        assert len(schedule.truncated_after(0.0)) == 0
