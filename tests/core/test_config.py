"""Tests for operating points and configuration tables."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint, pareto_filter_points
from repro.exceptions import ConfigurationError
from repro.platforms.resources import ResourceVector


def point(little, big, time, energy):
    return OperatingPoint(ResourceVector([little, big]), time, energy)


class TestOperatingPoint:
    def test_derived_quantities(self):
        p = point(2, 1, 5.0, 10.0)
        assert p.power == pytest.approx(2.0)
        assert p.remaining_time(0.5) == pytest.approx(2.5)
        assert p.remaining_energy(0.25) == pytest.approx(2.5)
        assert p.progress_of(2.5) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            point(1, 0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            point(1, 0, 1.0, -1.0)
        with pytest.raises(ConfigurationError):
            OperatingPoint(ResourceVector([0, 0]), 1.0, 1.0)

    def test_ratio_bounds_checked(self):
        p = point(1, 0, 4.0, 2.0)
        with pytest.raises(ConfigurationError):
            p.remaining_time(1.5)
        with pytest.raises(ConfigurationError):
            p.remaining_energy(-0.1)
        with pytest.raises(ConfigurationError):
            p.progress_of(-1.0)

    def test_dominance(self):
        better = point(1, 0, 5.0, 5.0)
        worse = point(1, 0, 6.0, 6.0)
        incomparable = point(0, 1, 4.0, 7.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(incomparable)
        assert not incomparable.dominates(better)

    def test_identical_points_do_not_dominate_each_other(self):
        a = point(1, 0, 5.0, 5.0)
        b = point(1, 0, 5.0, 5.0)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestConfigTable:
    def _table(self):
        return ConfigTable(
            "app",
            [
                point(1, 0, 10.0, 2.0),
                point(2, 0, 6.0, 2.5),
                point(0, 1, 5.0, 7.0),
                point(0, 2, 3.0, 9.0),
            ],
        )

    def test_len_iteration_and_indexing(self):
        table = self._table()
        assert len(table) == 4
        assert list(table.indices()) == [0, 1, 2, 3]
        assert table[2].resources.counts == (0, 1)

    def test_out_of_range_index_raises(self):
        with pytest.raises(ConfigurationError):
            self._table()[10]

    def test_most_efficient_and_fastest(self):
        table = self._table()
        assert table.most_efficient().energy == pytest.approx(2.0)
        assert table.fastest().execution_time == pytest.approx(3.0)

    def test_fastest_fitting(self):
        table = self._table()
        fitting = table.fastest_fitting(ResourceVector([2, 0]))
        assert fitting.execution_time == pytest.approx(6.0)
        assert table.fastest_fitting(ResourceVector([0, 0])) is None

    def test_feasible_indices_filters_capacity_and_deadline(self):
        table = self._table()
        # Budget of 5.5 s with half the work remaining: all points finish in
        # time; capacity (2, 1) excludes the (0, 2) point.
        indices = table.feasible_indices(
            ResourceVector([2, 1]), remaining_ratio=0.5, time_budget=5.5
        )
        assert indices == [0, 1, 2]
        # A very tight budget keeps only the fastest fitting points.
        indices = table.feasible_indices(
            ResourceVector([2, 2]), remaining_ratio=1.0, time_budget=3.0
        )
        assert indices == [3]

    def test_empty_or_inconsistent_tables_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfigTable("app", [])
        with pytest.raises(ConfigurationError):
            ConfigTable("", [point(1, 0, 1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            ConfigTable(
                "app",
                [point(1, 0, 1.0, 1.0), OperatingPoint(ResourceVector([1]), 1.0, 1.0)],
            )

    def test_pareto_filter_drops_dominated_points(self):
        dominated = point(2, 0, 11.0, 3.0)  # worse than the (1, 0) point in all dims
        table = ConfigTable("app", [point(1, 0, 10.0, 2.0), dominated], pareto_filter=True)
        assert len(table) == 1
        assert table.is_pareto_optimal()

    def test_paper_motivational_tables_are_pareto_optimal(self):
        from repro.workload.motivational import motivational_tables

        for table in motivational_tables().values():
            assert table.is_pareto_optimal()


class TestParetoFilterPoints:
    def test_keeps_non_dominated_and_removes_duplicates(self):
        a = point(1, 0, 10.0, 2.0)
        b = point(0, 1, 5.0, 7.0)
        duplicate = point(1, 0, 10.0, 2.0)
        dominated = point(1, 0, 12.0, 2.5)
        survivors = pareto_filter_points([a, b, duplicate, dominated])
        assert survivors == [a, b]

    def test_empty_input_gives_empty_output(self):
        assert pareto_filter_points([]) == []
