"""Tests for JSON serialization round-trips."""

import pytest

from repro.core.request import Job
from repro.exceptions import SerializationError
from repro.io import (
    config_table_from_dict,
    config_table_to_dict,
    job_from_dict,
    job_to_dict,
    load_json,
    platform_from_dict,
    platform_to_dict,
    request_trace_from_dict,
    request_trace_to_dict,
    save_json,
    schedule_to_dict,
    tables_from_dict,
    tables_to_dict,
)
# Aliased so pytest does not try to collect the library functions as tests.
from repro.io import test_case_from_dict as case_from_dict
from repro.io import test_case_to_dict as case_to_dict
from repro.platforms import odroid_xu4
from repro.runtime import RequestEvent, RequestTrace
from repro.schedulers import MMKPMDFScheduler
from repro.workload.motivational import motivational_problem, motivational_tables
from repro.workload.testgen import DeadlineLevel, TestCaseGenerator


class TestPlatformRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = odroid_xu4()
        restored = platform_from_dict(platform_to_dict(original))
        assert restored.name == original.name
        assert restored.core_counts == original.core_counts
        assert restored.type_names == original.type_names
        for name in original.type_names:
            assert restored.processor_type(name).performance_factor == pytest.approx(
                original.processor_type(name).performance_factor
            )

    def test_missing_field_raises(self):
        data = platform_to_dict(odroid_xu4())
        del data["core_counts"]
        with pytest.raises(SerializationError):
            platform_from_dict(data)


class TestTableRoundTrip:
    def test_single_table(self):
        table = motivational_tables()["lambda1"]
        restored = config_table_from_dict(config_table_to_dict(table))
        assert restored == table

    def test_table_mapping(self):
        tables = motivational_tables()
        restored = tables_from_dict(tables_to_dict(tables))
        assert set(restored) == set(tables)
        assert restored["lambda2"] == tables["lambda2"]

    def test_key_mismatch_detected(self):
        tables = motivational_tables()
        data = tables_to_dict(tables)
        data["wrong_key"] = data.pop("lambda1")
        with pytest.raises(SerializationError):
            tables_from_dict(data)


class TestJobAndTestCaseRoundTrip:
    def test_job(self):
        job = Job("j", "lambda1", arrival=1.0, deadline=9.0, remaining_ratio=0.4)
        assert job_from_dict(job_to_dict(job)) == job

    def test_job_defaults_remaining_ratio(self):
        data = job_to_dict(Job("j", "lambda1", 0.0, 5.0))
        del data["remaining_ratio"]
        assert job_from_dict(data).remaining_ratio == 1.0

    def test_test_case(self):
        generator = TestCaseGenerator(motivational_tables(), seed=2)
        case = generator.generate_case(3, DeadlineLevel.TIGHT)
        restored = case_from_dict(case_to_dict(case))
        assert restored.name == case.name
        assert restored.deadline_level is case.deadline_level
        assert restored.jobs == case.jobs

    def test_bad_deadline_level_rejected(self):
        generator = TestCaseGenerator(motivational_tables(), seed=2)
        data = case_to_dict(generator.generate_case(1, DeadlineLevel.WEAK))
        data["deadline_level"] = "impossible"
        with pytest.raises(SerializationError):
            case_from_dict(data)


class TestTraceAndScheduleSerialization:
    def test_request_trace_round_trip(self):
        trace = RequestTrace(
            [RequestEvent(0.0, "lambda1", 9.0, "a"), RequestEvent(1.0, "lambda2", 4.0, "b")]
        )
        restored = request_trace_from_dict(request_trace_to_dict(trace))
        assert [e.name for e in restored] == ["a", "b"]
        assert restored[1].absolute_deadline == pytest.approx(5.0)

    def test_schedule_export(self):
        problem = motivational_problem("S1")
        result = MMKPMDFScheduler().schedule(problem)
        exported = schedule_to_dict(result.schedule)
        assert len(exported["segments"]) == len(result.schedule)
        first = exported["segments"][0]
        assert {"start", "end", "mappings"} <= set(first)


class TestExplorationResultRoundTrip:
    def test_round_trip_is_exact(self):
        import json

        from repro.dataflow import audio_filter
        from repro.dse import DesignSpaceExplorer
        from repro.io import exploration_result_from_dict, exploration_result_to_dict
        from repro.platforms.resources import ResourceVector

        platform = odroid_xu4()
        graph = audio_filter().graph
        result = DesignSpaceExplorer(platform).evaluate_allocation(
            graph, ResourceVector([2, 1])
        )
        wire = json.loads(json.dumps(exploration_result_to_dict(result)))
        restored = exploration_result_from_dict(wire, graph, platform)
        assert restored.operating_point == result.operating_point
        assert restored.simulation.execution_time == result.simulation.execution_time
        assert restored.mapping.assignment == result.mapping.assignment

    def test_malformed_core_name_is_rejected(self):
        from repro.dataflow import audio_filter
        from repro.dse import DesignSpaceExplorer
        from repro.io import exploration_result_from_dict, exploration_result_to_dict
        from repro.platforms.resources import ResourceVector

        platform = odroid_xu4()
        graph = audio_filter().graph
        result = DesignSpaceExplorer(platform).evaluate_allocation(
            graph, ResourceVector([1, 1])
        )
        wire = exploration_result_to_dict(result)
        process = next(iter(wire["assignment"]))
        wire["assignment"][process] = "no-dot-separator"
        with pytest.raises(SerializationError):
            exploration_result_from_dict(wire, graph, platform)


class TestFileHelpers:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "nested" / "data.json"
        save_json({"answer": 42}, path)
        assert load_json(path) == {"answer": 42}

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_json(tmp_path / "nothing.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_json(path)
