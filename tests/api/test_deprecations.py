"""The deprecated pre-``repro.api`` entry points: still working, now warning.

Every shim must (a) emit a :class:`DeprecationWarning` and (b) behave
bit-identically to the canonical path — old call sites keep producing the
exact same execution logs until they migrate.
"""

import warnings

import pytest

from repro.api.registry import platforms, schedulers
from repro.runtime.manager import RuntimeManager
from repro.schedulers import MMKPMDFScheduler
from repro.service.jobs import build_platform, build_scheduler
from repro.workload.motivational import (
    motivational_platform,
    motivational_tables,
    motivational_trace,
)


def _log_key(log):
    return (
        [(o.name, o.accepted, repr(o.completion_time), repr(o.energy))
         for o in log.outcomes],
        [(repr(i.start), repr(i.end), i.job_configs, repr(i.energy))
         for i in log.timeline],
        repr(log.total_energy),
        log.activations,
    )


class TestRuntimeManagerShim:
    def test_direct_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="RuntimeManager"):
            RuntimeManager(
                motivational_platform(), motivational_tables(), MMKPMDFScheduler()
            )

    def test_from_components_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            RuntimeManager.from_components(
                motivational_platform(), motivational_tables(), MMKPMDFScheduler()
            )

    def test_old_kwarg_path_produces_bit_identical_logs(self):
        trace = motivational_trace("S2")
        with pytest.warns(DeprecationWarning):
            legacy = RuntimeManager(
                motivational_platform(),
                motivational_tables(),
                MMKPMDFScheduler(),
                remap_on_finish=True,
                engine="linear",
            )
        modern = RuntimeManager.from_components(
            motivational_platform(),
            motivational_tables(),
            MMKPMDFScheduler(),
            remap_on_finish=True,
            engine="linear",
        )
        assert _log_key(legacy.run(trace)) == _log_key(modern.run(trace))

    def test_from_spec_matches_the_legacy_kwargs(self):
        from repro.api import EnergySpec, ExperimentSpec, SchedulerSpec, WorkloadSpec

        spec = ExperimentSpec(
            name="shim",
            workload=WorkloadSpec.scenario("S1"),
            scheduler=SchedulerSpec(name="mmkp-mdf"),
            energy=EnergySpec(governor="performance"),
        )
        modern = RuntimeManager.from_spec(spec)
        with pytest.warns(DeprecationWarning):
            legacy = RuntimeManager(
                motivational_platform(),
                motivational_tables(),
                MMKPMDFScheduler(),
                governor=spec.energy.build_governor(),
            )
        trace = motivational_trace("S1")
        assert _log_key(modern.run(trace)) == _log_key(legacy.run(trace))


class TestBuilderShims:
    def test_build_scheduler_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="build_scheduler"):
            built = build_scheduler("mmkp-mdf")
        assert type(built) is type(schedulers.build("mmkp-mdf"))
        # Fresh instance per call, exactly like the old dict-based builder.
        with pytest.warns(DeprecationWarning):
            assert build_scheduler("mmkp-mdf") is not built

    def test_build_platform_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="build_platform"):
            built = build_platform("odroid-xu4")
        assert built.name == platforms.build("odroid-xu4").name

    def test_shims_keep_the_historical_error_type(self):
        from repro.exceptions import WorkloadError

        with pytest.warns(DeprecationWarning):
            with pytest.raises(WorkloadError, match="choose from"):
                build_scheduler("nope")

    def test_batch_service_path_does_not_warn(self):
        """The internal service plumbing migrated off the shims entirely."""
        from repro.service import BatchSpec, SimulationService

        spec = BatchSpec.sweep(
            arrival_rates=[0.2], traces_per_point=2, num_requests=3
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            results = SimulationService(workers=1).run_batch(spec)
        assert results.failures == []

    def test_session_and_kernel_paths_do_not_warn(self):
        """Every remaining internal caller migrated off the shims.

        A full Session run — spec resolution, registries, kernel pipeline,
        commit path — must not touch ``build_scheduler``/``build_platform``
        or the deprecated ``RuntimeManager(...)`` constructor.  Together
        with pytest.ini's ``error::DeprecationWarning`` filter this pins the
        suite's warning count to exactly the shim tests above.
        """
        from repro.api import ExperimentSpec, Session, WorkloadSpec

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            spec = ExperimentSpec(
                name="clean", workload=WorkloadSpec.scenario("S1")
            )
            log = Session.from_spec(spec).run()
        assert log.acceptance_rate == 1.0
