"""Snapshot tests pinning the JSON wire schema of :class:`RunEvent`.

The gateway protocol (:mod:`repro.gateway.protocol`) ships these payloads
over the network, so their shape is a compatibility contract: any change
that breaks a snapshot here is a wire-schema change and must bump
``PROTOCOL_VERSION``.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, RunEvent, RunEventKind, Session, WorkloadSpec

# One representative event per kind, with the payload fields the runtime
# manager actually emits (see repro.runtime.manager).  The right-hand side
# of WIRE_SNAPSHOTS is the pinned wire form — literal, not computed.
SAMPLE_EVENTS = {
    RunEventKind.ARRIVAL: RunEvent(
        RunEventKind.ARRIVAL,
        1.5,
        "req0000",
        {"application": "sigma1", "deadline": 9.25},
    ),
    RunEventKind.ADMIT: RunEvent(
        RunEventKind.ADMIT, 1.5, "req0000", {"search_time": 0.0031}
    ),
    RunEventKind.REJECT: RunEvent(
        RunEventKind.REJECT,
        2.0,
        "req0001",
        {"search_time": 0.0007, "reason": "budget"},
    ),
    RunEventKind.COMMIT: RunEvent(
        RunEventKind.COMMIT,
        1.5,
        None,
        {"segments": 2, "speed": 0.7, "jobs": ("req0000",)},
    ),
    RunEventKind.INTERVAL: RunEvent(
        RunEventKind.INTERVAL,
        3.0,
        None,
        {
            "start": 1.5,
            "end": 3.0,
            "energy": 0.75,
            "jobs": ("req0000",),
            "total_energy": 0.75,
        },
    ),
    RunEventKind.FINISH: RunEvent(RunEventKind.FINISH, 3.0, "req0000", {}),
    RunEventKind.KERNEL: RunEvent(
        RunEventKind.KERNEL,
        3.0,
        None,
        {"activations": 2, "commits": 2, "resumed_steps": 5, "replayed_steps": 1},
    ),
}

WIRE_SNAPSHOTS = {
    RunEventKind.ARRIVAL: {
        "kind": "arrival",
        "time": 1.5,
        "request": "req0000",
        "data": {"application": "sigma1", "deadline": 9.25},
    },
    RunEventKind.ADMIT: {
        "kind": "admit",
        "time": 1.5,
        "request": "req0000",
        "data": {"search_time": 0.0031},
    },
    RunEventKind.REJECT: {
        "kind": "reject",
        "time": 2.0,
        "request": "req0001",
        "data": {"search_time": 0.0007, "reason": "budget"},
    },
    RunEventKind.COMMIT: {
        "kind": "commit",
        "time": 1.5,
        "data": {"segments": 2, "speed": 0.7, "jobs": ["req0000"]},
    },
    RunEventKind.INTERVAL: {
        "kind": "interval",
        "time": 3.0,
        "data": {
            "start": 1.5,
            "end": 3.0,
            "energy": 0.75,
            "jobs": ["req0000"],
            "total_energy": 0.75,
        },
    },
    RunEventKind.FINISH: {
        "kind": "finish",
        "time": 3.0,
        "request": "req0000",
        "data": {},
    },
    RunEventKind.KERNEL: {
        "kind": "kernel",
        "time": 3.0,
        "data": {"activations": 2, "commits": 2, "resumed_steps": 5,
                 "replayed_steps": 1},
    },
}


class TestWireSnapshots:
    @pytest.mark.parametrize("kind", sorted(SAMPLE_EVENTS, key=lambda k: k.value))
    def test_to_dict_matches_the_pinned_snapshot(self, kind):
        assert SAMPLE_EVENTS[kind].to_dict() == WIRE_SNAPSHOTS[kind]

    @pytest.mark.parametrize("kind", sorted(SAMPLE_EVENTS, key=lambda k: k.value))
    def test_wire_form_is_plain_json(self, kind):
        payload = SAMPLE_EVENTS[kind].to_dict()
        assert json.loads(json.dumps(payload)) == payload

    @pytest.mark.parametrize("kind", sorted(SAMPLE_EVENTS, key=lambda k: k.value))
    def test_round_trip_rebuilds_an_equal_event(self, kind):
        event = SAMPLE_EVENTS[kind]
        rebuilt = RunEvent.from_dict(event.to_dict())
        # Tuples become lists on the wire, so compare wire forms (which are
        # canonical) plus the typed fields that must survive exactly.
        assert rebuilt.kind is event.kind
        assert rebuilt.time == event.time
        assert rebuilt.request == event.request
        assert rebuilt.to_dict() == event.to_dict()

    def test_every_kind_is_covered(self):
        covered = set(SAMPLE_EVENTS) | {RunEventKind.END}
        assert covered == set(RunEventKind), (
            "a new RunEventKind needs a wire snapshot here"
        )


class TestEndEvent:
    """END is the one lossy kind: the live log travels as its summary."""

    @pytest.fixture(scope="class")
    def end_event(self):
        spec = ExperimentSpec(name="wire-end", workload=WorkloadSpec.scenario("S1"))
        events = []
        Session.from_spec(spec).run(on_event=events.append)
        return events[-1]

    def test_end_wire_form_carries_the_log_summary(self, end_event):
        payload = end_event.to_dict()
        assert payload["kind"] == "end"
        summary = payload["data"]["log"]
        assert set(summary) == {
            "requests", "accepted", "rejected", "acceptance_rate",
            "total_energy", "makespan", "activations", "deadline_misses",
            "budget_rejections", "cluster_energy", "fingerprint",
        }
        assert summary == end_event.data["log"].summary()
        assert json.loads(json.dumps(payload)) == payload

    def test_end_fingerprint_is_deterministic_hex(self, end_event):
        summary = end_event.to_dict()["data"]["log"]
        fingerprint = summary["fingerprint"]
        assert isinstance(fingerprint, str) and len(fingerprint) == 64
        int(fingerprint, 16)  # raises if not hex
        assert fingerprint == end_event.data["log"].fingerprint()

    def test_to_dict_is_idempotent_across_the_round_trip(self, end_event):
        wire = end_event.to_dict()
        assert RunEvent.from_dict(wire).to_dict() == wire


class TestFingerprintStability:
    """The summary fingerprint is the cross-process equivalence witness.

    The gateway (and the trace-equivalence gate in
    ``benchmarks/bench_obs_overhead.py``) compare fingerprints computed in
    different processes, so the digest must be a pure function of the run's
    deterministic fields — stable across interpreters, insensitive to
    wall-clock measurements.
    """

    SPEC_NAME = "wire-fp"

    @pytest.fixture(scope="class")
    def log(self):
        spec = ExperimentSpec(
            name=self.SPEC_NAME, workload=WorkloadSpec.scenario("S1")
        )
        return Session.from_spec(spec).run()

    def test_fingerprint_is_sha256_of_the_deterministic_fields(self, log):
        fingerprint = log.fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)
        assert fingerprint == log.fingerprint()  # pure, not stateful

    def test_fingerprint_matches_across_process_boundaries(self, log):
        program = (
            "from repro.api import ExperimentSpec, Session, WorkloadSpec\n"
            f"spec = ExperimentSpec(name={self.SPEC_NAME!r}, "
            "workload=WorkloadSpec.scenario('S1'))\n"
            "print(Session.from_spec(spec).run().fingerprint())"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = {**os.environ, "PYTHONPATH": str(src)}
        remote = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.strip()
        assert remote == log.fingerprint()

    def test_fingerprint_ignores_wall_clock_scheduler_time(self, log):
        doctored = dataclasses.replace(log)
        doctored.outcomes = [
            dataclasses.replace(outcome, scheduler_time=outcome.scheduler_time + 1.0)
            for outcome in log.outcomes
        ]
        assert doctored.fingerprint() == log.fingerprint()

    def test_fingerprint_is_sensitive_to_deterministic_fields(self, log):
        doctored = dataclasses.replace(log)
        doctored.outcomes = [
            dataclasses.replace(outcome, energy=outcome.energy + 1e-9)
            for outcome in log.outcomes
        ]
        assert doctored.fingerprint() != log.fingerprint()
        assert dataclasses.replace(log, activations=log.activations + 1).fingerprint() \
            != log.fingerprint()


class TestFromDictValidation:
    def test_unknown_kind_lists_the_known_ones(self):
        with pytest.raises(ValueError, match="arrival.*commit.*end"):
            RunEvent.from_dict({"kind": "teleport", "time": 1.0})

    def test_missing_kind(self):
        with pytest.raises(ValueError, match="no 'kind'"):
            RunEvent.from_dict({"time": 1.0})

    def test_non_numeric_time(self):
        with pytest.raises(ValueError, match="numeric 'time'"):
            RunEvent.from_dict({"kind": "arrival", "time": "soon"})

    def test_non_mapping_payload(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            RunEvent.from_dict(["arrival", 1.0])

    def test_non_mapping_data(self):
        with pytest.raises(ValueError, match="data must be a mapping"):
            RunEvent.from_dict({"kind": "arrival", "time": 1.0, "data": [1]})

    def test_missing_data_defaults_to_empty(self):
        event = RunEvent.from_dict({"kind": "finish", "time": 2.0, "request": "r0"})
        assert event.data == {}
