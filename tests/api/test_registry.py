"""Tests for the plugin registries of :mod:`repro.api.registry`."""

import pytest

from repro.api import (
    ExperimentSpec,
    Registry,
    SchedulerSpec,
    Session,
    WorkloadSpec,
    register_scheduler,
)
from repro.api.registry import governors, platforms, schedulers, trace_sources
from repro.exceptions import EnergyError, RegistryError, WorkloadError
from repro.schedulers.base import Scheduler, SchedulingResult


class TestRegistryBasics:
    def test_register_and_build(self):
        registry = Registry("widget")
        registry.register("w", dict)
        assert registry.build("w") == {}
        assert registry["w"] is dict

    def test_decorator_form_returns_the_class(self):
        registry = Registry("widget")

        @registry.register("null")
        class NullWidget:
            pass

        assert registry.build("null").__class__ is NullWidget
        assert NullWidget.__name__ == "NullWidget"

    def test_duplicate_name_registration_raises(self):
        registry = Registry("widget")
        registry.register("w", dict)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("w", list)
        # The original registration survives the failed overwrite.
        assert registry["w"] is dict

    def test_replace_overrides_deliberately(self):
        registry = Registry("widget")
        registry.register("w", dict)
        registry.register("w", list, replace=True)
        assert registry["w"] is list

    def test_unknown_name_error_lists_available_plugins(self):
        registry = Registry("widget")
        registry.register("alpha", dict)
        registry.register("beta", list)
        with pytest.raises(WorkloadError) as excinfo:
            registry.build("gamma")
        message = str(excinfo.value)
        assert "alpha" in message and "beta" in message
        assert "gamma" in message

    def test_invalid_registrations_rejected(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError):
            registry.register("", dict)
        with pytest.raises(RegistryError):
            registry.register("w", "not-callable")

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("w", dict)
        registry.unregister("w")
        assert "w" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("w")

    def test_get_returns_default_instead_of_raising(self):
        registry = Registry("widget")
        registry.register("w", dict)
        assert registry.get("w") is dict
        assert registry.get("missing") is None
        assert registry.get("missing", list) is list

    def test_mapping_protocol(self):
        registry = Registry("widget")
        registry.register("b", list)
        registry.register("a", dict)
        assert len(registry) == 2
        assert set(registry) == {"a", "b"}
        assert "a" in registry and "zzz" not in registry
        assert registry.names() == ["a", "b"]
        assert dict(registry) == {"a": dict, "b": list}


class TestBuiltinRegistries:
    def test_builtin_vocabulary(self):
        assert {"mmkp-mdf", "mmkp-lr", "ex-mem", "fixed"} <= set(schedulers)
        assert {"motivational", "odroid-xu4"} <= set(platforms)
        assert {"performance", "powersave", "ondemand", "schedule-aware"} <= set(
            governors
        )
        assert {"poisson", "motivational", "explicit"} <= set(trace_sources)

    def test_unknown_governor_raises_energy_error(self):
        with pytest.raises(EnergyError, match="choose from"):
            governors.build("turbo")

    def test_legacy_aliases_are_the_registries(self):
        from repro.energy.governor import GOVERNORS
        from repro.service.jobs import PLATFORMS, SCHEDULERS

        assert SCHEDULERS is schedulers
        assert PLATFORMS is platforms
        assert GOVERNORS is governors

    def test_trace_sources_build_real_traces(self):
        from repro.workload.motivational import motivational_tables

        tables = motivational_tables()
        poisson = trace_sources.build(
            "poisson", tables, arrival_rate=0.3, num_requests=4, seed=1
        )
        assert len(poisson) == 4
        scenario = trace_sources.build("motivational", tables, scenario="S2")
        assert len(scenario) > 0


class _GreedyFirstScheduler(Scheduler):
    """A deliberately trivial third-party scheduler used by the e2e test."""

    name = "test-greedy-first"

    def _solve(self, problem):
        from repro.schedulers import MMKPMDFScheduler

        # Delegate: the point of the test is registration plumbing, not a
        # novel algorithm — any Scheduler subclass works unmodified.
        result = MMKPMDFScheduler().schedule(problem)
        return SchedulingResult(
            schedule=result.schedule,
            assignment=result.assignment,
            energy=result.energy,
        )


class TestThirdPartyPlugins:
    def test_registered_scheduler_runs_end_to_end(self):
        """A scheduler registered in a test participates in Session.run()."""
        register_scheduler(_GreedyFirstScheduler.name, _GreedyFirstScheduler)
        try:
            spec = ExperimentSpec(
                name="plugin-e2e",
                workload=WorkloadSpec.scenario("S1"),
                scheduler=SchedulerSpec(name=_GreedyFirstScheduler.name),
            )
            log = Session.from_spec(spec).run()
            assert log.acceptance_rate == 1.0
            assert log.total_energy > 0
            # ... and the CLI/batch vocabulary picked it up with zero edits.
            from repro.service.jobs import SCHEDULERS

            assert _GreedyFirstScheduler.name in SCHEDULERS
            results = Session.from_spec(spec).run_batch()
            assert results.failures == []
            assert results[0].scheduler == _GreedyFirstScheduler.name
        finally:
            schedulers.unregister(_GreedyFirstScheduler.name)

    def test_registered_trace_source_feeds_a_session(self):
        from repro.api.registry import register_trace_source
        from repro.runtime.trace import RequestEvent, RequestTrace

        @register_trace_source("test-single-shot")
        def _single_shot(tables, *, application, deadline=30.0):
            return RequestTrace([RequestEvent(0.0, application, deadline, "r0")])

        try:
            spec = ExperimentSpec(
                name="source-e2e",
                workload=WorkloadSpec(
                    source="test-single-shot", options={"application": "lambda1"}
                ),
            )
            log = Session.from_spec(spec).run()
            assert [o.name for o in log.outcomes] == ["r0"]
            assert log.acceptance_rate == 1.0
        finally:
            trace_sources.unregister("test-single-shot")

    def test_duplicate_builtin_name_is_refused(self):
        with pytest.raises(RegistryError):
            register_scheduler("mmkp-mdf", _GreedyFirstScheduler)
