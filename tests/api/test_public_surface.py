"""API-surface snapshot: accidental breaking changes must fail fast.

These assertions pin the *names* of the public API — ``repro.api.__all__``,
the spec schemas (dataclass field names) and the built-in registry
vocabulary.  Renaming or removing anything here is a breaking change and
must be an explicit, reviewed edit of this file, never a drive-by.
"""

import repro
import repro.api as api
from repro.api.spec import SPEC_SCHEMAS

#: The frozen public surface of repro.api.  Additions are fine (append here);
#: removals and renames are breaking.
EXPECTED_API_ALL = [
    # spec tree
    "ExperimentSpec",
    "PlatformSpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "EnergySpec",
    "DSESpec",
    "SPEC_SCHEMAS",
    # registries
    "Registry",
    "register_scheduler",
    "register_platform",
    "register_governor",
    "register_trace_source",
    "schedulers",
    "platforms",
    "governors",
    "trace_sources",
    # session + streaming
    "Session",
    "RunEvent",
    "RunEventKind",
    "RunEventStream",
    # columnar operating-point kernel (PR 4)
    "OpTable",
    "as_optable",
    # incremental scheduling engine (PR 5)
    "KernelCaches",
    "kernel_disabled",
    "kernel_enabled",
    "kernel_override",
]

#: The frozen field names of every spec dataclass (order included: it is the
#: positional-construction contract of frozen dataclasses).
EXPECTED_SPEC_SCHEMAS = {
    "PlatformSpec": ("name", "inline"),
    "WorkloadSpec": ("source", "options"),
    "SchedulerSpec": ("name", "remap_on_finish", "options"),
    "EnergySpec": (
        "governor",
        "power_cap_watts",
        "energy_budget_joules",
        "account_energy",
    ),
    "DSESpec": ("input_sizes", "sweep_opps", "max_points"),
    "ExperimentSpec": (
        "name",
        "platform",
        "workload",
        "scheduler",
        "energy",
        "dse",
        "tables",
        "tables_inline",
        "engine",
    ),
}


class TestApiSurface:
    def test_all_matches_the_snapshot(self):
        assert list(api.__all__) == EXPECTED_API_ALL

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_spec_schemas_match_the_snapshot(self):
        assert SPEC_SCHEMAS == EXPECTED_SPEC_SCHEMAS

    def test_run_event_kinds_are_frozen(self):
        from repro.api import RunEventKind

        assert {kind.value for kind in RunEventKind} == {
            "arrival",
            "admit",
            "reject",
            "commit",
            "interval",
            "finish",
            "kernel",
            "end",
        }

    def test_builtin_registry_vocabulary_is_frozen(self):
        # Supersets are allowed (plugins register more); the built-ins must
        # never silently disappear.
        assert {"mmkp-mdf", "mmkp-lr", "ex-mem", "fixed"} <= set(api.schedulers)
        assert {
            "motivational",
            "odroid-xu4",
            "big-little-2x2",
            "big-little-4x4",
        } <= set(api.platforms)
        assert {"performance", "powersave", "ondemand", "schedule-aware"} <= set(
            api.governors
        )
        assert {"poisson", "motivational", "explicit"} <= set(api.trace_sources)


class TestOpTableSurface:
    def test_api_export_is_the_kernel_class(self):
        import repro.optable

        assert api.OpTable is repro.optable.OpTable
        assert api.as_optable is repro.optable.as_optable

    def test_kernel_public_names_are_frozen(self):
        import repro.optable

        # Supersets allowed; the kernel contract must never silently shrink.
        assert {
            "OpTable",
            "ParetoFrontier",
            "ProblemView",
            "SolveCache",
            "as_optable",
            "columnar_disabled",
            "columnar_enabled",
            "columnar_override",
            "fingerprint_points",
            "intern_info",
            "pareto_select",
        } <= set(repro.optable.__all__)


class TestTopLevelReexports:
    def test_api_names_reachable_from_repro(self):
        for name in (
            "ExperimentSpec",
            "PlatformSpec",
            "WorkloadSpec",
            "SchedulerSpec",
            "EnergySpec",
            "DSESpec",
            "Session",
            "RunEvent",
            "RunEventKind",
            "register_scheduler",
            "register_platform",
            "register_governor",
            "register_trace_source",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is getattr(api, name)

    def test_engine_names_agree_across_layers(self):
        from repro.api.spec import ENGINES as SPEC_ENGINES
        from repro.runtime.manager import ENGINES as MANAGER_ENGINES

        assert SPEC_ENGINES == MANAGER_ENGINES
