"""Tests for the typed :class:`ExperimentSpec` tree of :mod:`repro.api.spec`."""

import pytest

from repro.api.spec import (
    ENGINES,
    DSESpec,
    EnergySpec,
    ExperimentSpec,
    PlatformSpec,
    SchedulerSpec,
    WorkloadSpec,
)
from repro.exceptions import SerializationError, WorkloadError
from repro.platforms import Platform, odroid_xu4


def _rich_spec() -> ExperimentSpec:
    """A spec exercising every section with non-default values."""
    return ExperimentSpec(
        name="rich",
        platform=PlatformSpec(name="odroid-xu4"),
        workload=WorkloadSpec.poisson(
            arrival_rate=0.4, num_requests=6, deadline_factor_range=(2.0, 5.0), seed=9
        ),
        scheduler=SchedulerSpec(name="mmkp-lr", remap_on_finish=True),
        energy=EnergySpec(
            governor="schedule-aware", power_cap_watts=9.5, energy_budget_joules=400.0
        ),
        tables="motivational",
        engine="linear",
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = _rich_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = _rich_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = _rich_spec()
        path = tmp_path / "experiment.json"
        spec.save(path)
        assert ExperimentSpec.load(path) == spec

    def test_default_spec_round_trips(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_dse_and_inline_tables_round_trip(self):
        spec = ExperimentSpec(
            name="dse",
            dse=DSESpec(input_sizes=("medium",), sweep_opps=True, max_points=4),
            tables=None,
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_tuples_canonicalise_to_lists(self):
        # JSON hands back lists where callers passed tuples; specs normalise
        # at construction so equality survives the round trip.
        a = WorkloadSpec(source="poisson", options={"arrival_rate": 0.2,
                                                    "num_requests": 3,
                                                    "deadline_factor_range": (1.5, 4.0)})
        b = WorkloadSpec(source="poisson", options={"arrival_rate": 0.2,
                                                    "num_requests": 3,
                                                    "deadline_factor_range": [1.5, 4.0]})
        assert a == b

    def test_inline_platform_round_trips_and_builds(self):
        spec = PlatformSpec.from_platform(odroid_xu4())
        again = PlatformSpec.from_dict(spec.to_dict())
        assert again == spec
        platform = again.build()
        assert isinstance(platform, Platform)
        assert platform.name == "odroid-xu4"

    def test_bad_json_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            ExperimentSpec.from_json("{not json")
        with pytest.raises(SerializationError):
            ExperimentSpec.from_dict({"workload": "nope"})
        with pytest.raises(SerializationError):
            ExperimentSpec.load("/does/not/exist.json")


class TestValidation:
    def test_engine_validated(self):
        with pytest.raises(WorkloadError, match="engine"):
            ExperimentSpec(engine="quantum")

    def test_engines_match_the_runtime_manager(self):
        from repro.runtime.manager import ENGINES as MANAGER_ENGINES

        assert ENGINES == MANAGER_ENGINES

    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            ExperimentSpec(name="")

    def test_platform_requires_exactly_one_source(self):
        with pytest.raises(WorkloadError):
            PlatformSpec(name=None, inline=None)
        with pytest.raises(WorkloadError):
            PlatformSpec(name="motivational", inline={"name": "x"})

    def test_tables_sources_are_mutually_exclusive(self):
        with pytest.raises(WorkloadError):
            ExperimentSpec(tables="motivational", tables_inline={"t": {}})
        with pytest.raises(WorkloadError):
            ExperimentSpec(tables=None, tables_inline=None, dse=None)

    def test_dse_with_named_tables_is_rejected_not_ignored(self):
        # The silent-footgun shape: the defaulted tables="motivational" next
        # to a dse section would shadow the exploration entirely.
        with pytest.raises(WorkloadError, match="dse"):
            ExperimentSpec(name="oops", dse=DSESpec(sweep_opps=True))
        with pytest.raises(WorkloadError, match="dse"):
            ExperimentSpec(
                name="oops", dse=DSESpec(), tables=None, tables_inline={"t": {}}
            )

    def test_energy_envelope_must_be_positive(self):
        with pytest.raises(WorkloadError):
            EnergySpec(power_cap_watts=-1.0)
        with pytest.raises(WorkloadError):
            EnergySpec(energy_budget_joules=0.0)

    def test_dse_max_points_must_be_positive(self):
        with pytest.raises(WorkloadError):
            DSESpec(max_points=0)

    def test_unseeded_workload_cannot_reseed(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec.scenario("S1").with_seed(3)
        reseeded = WorkloadSpec.poisson(0.2, 4, seed=1).with_seed(7)
        assert reseeded.options["seed"] == 7

    def test_reseed_works_without_an_explicit_seed_key(self):
        # poisson's factory defaults the seed, so a spec that omits the key
        # is still seedable (trials fan-out must not reject it).
        spec = WorkloadSpec(
            source="poisson", options={"arrival_rate": 0.3, "num_requests": 4}
        )
        assert spec.with_seed(9).options["seed"] == 9
        job = ExperimentSpec(name="ns", workload=spec).to_job(seed=9)
        assert job.trace_spec.seed == 9

    def test_bad_scheduler_options_raise_workload_error(self):
        with pytest.raises(WorkloadError, match="bogus"):
            SchedulerSpec(name="mmkp-mdf", options={"bogus": 1}).build()


class TestBuilders:
    def test_sections_build_live_objects(self):
        spec = _rich_spec()
        assert spec.platform.build().name == "odroid-xu4"
        assert spec.scheduler.build().name == "mmkp-lr"
        assert spec.energy.build_governor().name == "schedule-aware"
        budget = spec.energy.build_budget()
        assert budget.power_cap_watts == 9.5
        tables = spec.resolve_tables()
        assert set(tables) == {"lambda1", "lambda2"}

    def test_default_energy_builds_nothing(self):
        energy = EnergySpec()
        assert energy.build_governor() is None
        assert energy.build_budget() is None

    def test_workload_build_uses_the_registered_source(self):
        from repro.workload.motivational import motivational_tables

        trace = WorkloadSpec.scenario("S2").build(motivational_tables())
        assert len(trace) > 0

    def test_bad_workload_options_raise_workload_error_not_type_error(self):
        from repro.workload.motivational import motivational_tables

        tables = motivational_tables()
        missing = WorkloadSpec(source="poisson", options={"num_requests": 4})
        with pytest.raises(WorkloadError, match="poisson"):
            missing.build(tables)
        typo = WorkloadSpec(
            source="poisson",
            options={"arival_rate": 0.2, "num_requests": 4},
        )
        with pytest.raises(WorkloadError, match="arival_rate"):
            typo.build(tables)

    def test_from_trace_embeds_events(self):
        from repro.runtime.trace import RequestEvent, RequestTrace

        trace = RequestTrace([RequestEvent(0.0, "lambda1", 9.0, "r0")])
        spec = WorkloadSpec.from_trace(trace)
        assert spec.source == "explicit"
        from repro.workload.motivational import motivational_tables

        rebuilt = spec.build(motivational_tables())
        assert [e.name for e in rebuilt] == ["r0"]

    def test_scheduler_options_forwarded_to_factory(self):
        from repro.api.registry import schedulers

        captured = {}

        class _Configurable:
            name = "test-configurable"

            def __init__(self, knob=0):
                captured["knob"] = knob

            def schedule(self, problem):  # pragma: no cover — never called
                raise NotImplementedError

        schedulers.register("test-configurable", _Configurable)
        try:
            SchedulerSpec(name="test-configurable", options={"knob": 5}).build()
            assert captured["knob"] == 5
        finally:
            schedulers.unregister("test-configurable")


class TestJobBridge:
    def test_to_job_and_back(self):
        spec = _rich_spec()
        job = spec.to_job()
        assert job.name == "rich"
        assert job.scheduler == "mmkp-lr"
        assert job.platform == "odroid-xu4"
        assert job.governor == "schedule-aware"
        assert job.power_cap_watts == 9.5
        assert job.trace_spec.arrival_rate == 0.4
        assert ExperimentSpec.from_job(job) == spec

    def test_to_job_reseeds_poisson_workloads(self):
        job = _rich_spec().to_job(name="trial-3", seed=42)
        assert job.name == "trial-3"
        assert job.trace_spec.seed == 42

    def test_to_job_materialises_non_poisson_sources(self):
        spec = ExperimentSpec(name="s1", workload=WorkloadSpec.scenario("S1"))
        job = spec.to_job()
        assert job.trace is not None and job.trace_spec is None
        with pytest.raises(WorkloadError):
            spec.to_job(seed=1)

    def test_to_job_validates_options_like_the_run_path(self):
        # Batch and single-run must agree: a typo'd or missing option key is
        # an error in both, never silently-run defaults.
        missing = ExperimentSpec(
            name="m",
            workload=WorkloadSpec(source="poisson", options={"num_requests": 4}),
        )
        with pytest.raises(WorkloadError, match="poisson"):
            missing.to_job()
        typo = ExperimentSpec(
            name="t",
            workload=WorkloadSpec(
                source="poisson",
                options={"arrival_rate": 0.2, "num_requests": 4, "burst": 3},
            ),
        )
        with pytest.raises(WorkloadError, match="burst"):
            typo.to_job()

    def test_third_party_seeded_sources_are_batchable(self):
        from repro.api.registry import register_trace_source, trace_sources
        from repro.runtime.trace import RequestEvent, RequestTrace

        @register_trace_source("test-seeded")
        def _seeded(tables, *, seed):
            return RequestTrace(
                [RequestEvent(float(seed), "lambda1", 30.0, f"r{seed}")]
            )

        try:
            spec = ExperimentSpec(
                name="seeded",
                workload=WorkloadSpec(source="test-seeded", options={"seed": 0}),
            )
            job = spec.to_job(name="trial", seed=4)
            assert [e.name for e in job.trace] == ["r4"]
        finally:
            trace_sources.unregister("test-seeded")

    def test_to_job_rejects_scheduler_options(self):
        spec = ExperimentSpec(
            name="opt", scheduler=SchedulerSpec(name="mmkp-mdf", options={"x": 1})
        )
        with pytest.raises(WorkloadError):
            spec.to_job()

    def test_to_job_accepts_materialised_tables(self):
        from repro.workload.motivational import motivational_tables

        tables = motivational_tables()
        job = ExperimentSpec(name="inline-tables").to_job(tables=tables)
        assert not isinstance(job.tables, str)
        assert set(job.tables) == {"lambda1", "lambda2"}
