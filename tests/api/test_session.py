"""Tests for the :class:`Session` facade and its streaming run events."""

import pytest

from repro.api import (
    EnergySpec,
    ExperimentSpec,
    RunEventKind,
    SchedulerSpec,
    Session,
    WorkloadSpec,
)
from repro.exceptions import AdmissionError, WorkloadError
from repro.runtime.manager import RuntimeManager
from repro.schedulers import MMKPMDFScheduler
from repro.workload.motivational import (
    motivational_platform,
    motivational_tables,
    motivational_trace,
)


def _poisson_spec(seed: int = 5) -> ExperimentSpec:
    return ExperimentSpec(
        name="session-poisson",
        workload=WorkloadSpec.poisson(arrival_rate=0.25, num_requests=8, seed=seed),
    )


def _log_key(log):
    """Every deterministic field of an execution log, for bit-identity checks."""
    return (
        tuple(log.outcomes and [(o.name, o.accepted, repr(o.completion_time),
                                 repr(o.energy)) for o in log.outcomes]),
        tuple((repr(i.start), repr(i.end), i.job_configs, repr(i.energy))
              for i in log.timeline),
        repr(log.total_energy),
        log.activations,
        log.budget_rejections,
    )


class TestBitIdentity:
    def test_session_reproduces_the_legacy_manager_path(self):
        """Session.from_spec(spec).run() == hand-wired RuntimeManager run."""
        spec = ExperimentSpec(
            name="identity", workload=WorkloadSpec.scenario("S1")
        )
        session_log = Session.from_spec(spec).run()
        legacy = RuntimeManager.from_components(
            motivational_platform(), motivational_tables(), MMKPMDFScheduler()
        )
        legacy_log = legacy.run(motivational_trace("S1"))
        assert _log_key(session_log) == _log_key(legacy_log)

    def test_observed_run_is_bit_identical_to_unobserved(self):
        spec = _poisson_spec()
        events = []
        observed = Session.from_spec(spec).run(on_event=events.append)
        plain = Session.from_spec(spec).run()
        assert _log_key(observed) == _log_key(plain)
        assert events  # something was actually streamed

    def test_engine_override_matches_default(self):
        spec = _poisson_spec()
        events_log = Session.from_spec(spec).run(engine="events")
        linear_log = Session.from_spec(spec).run(engine="linear")
        assert _log_key(events_log) == _log_key(linear_log)

    def test_batch_fingerprint_matches_the_legacy_service_path(self):
        """Session.run_batch() fingerprints == legacy BatchSpec plumbing."""
        from repro.service import BatchSpec, SimulationJob, SimulationService
        from repro.service.jobs import TraceSpec

        spec = _poisson_spec(seed=3)
        session_results = Session.from_spec(spec).run_batch(trials=3)

        legacy_jobs = tuple(
            SimulationJob(
                name=f"session-poisson-t{i:03d}",
                trace_spec=TraceSpec(arrival_rate=0.25, num_requests=8, seed=3 + i),
            )
            for i in range(3)
        )
        legacy_results = SimulationService(workers=1).run_batch(
            BatchSpec("session-poisson", legacy_jobs)
        )
        assert session_results.fingerprint() == legacy_results.fingerprint()

    def test_run_batch_is_deterministic_across_worker_counts(self):
        spec = _poisson_spec(seed=11)
        serial = Session.from_spec(spec).run_batch(trials=4, workers=1)
        threaded = Session.from_spec(spec).run_batch(
            trials=4, workers=4, executor="thread"
        )
        assert serial.fingerprint() == threaded.fingerprint()


class TestStreaming:
    def test_callback_event_sequence(self):
        spec = ExperimentSpec(name="events", workload=WorkloadSpec.scenario("S1"))
        events = []
        log = Session.from_spec(spec).run(on_event=events.append)
        kinds = [event.kind for event in events]
        # Two S1 arrivals, both admitted, both finishing, with commits and
        # energy ticks in between; no END through the callback-only path is
        # wrong — run() always emits it last.
        assert kinds[0] is RunEventKind.ARRIVAL
        assert kinds[-1] is RunEventKind.END
        assert kinds.count(RunEventKind.ARRIVAL) == len(log.outcomes) == 2
        assert kinds.count(RunEventKind.ADMIT) == len(log.accepted) == 2
        assert kinds.count(RunEventKind.FINISH) == 2
        assert kinds.count(RunEventKind.INTERVAL) == len(log.timeline)
        assert RunEventKind.COMMIT in kinds
        assert events[-1].data["log"] is log
        # Event times never go backwards.
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_rejections_stream_with_a_reason(self):
        # A power cap low enough to reject every feasible schedule.
        spec = ExperimentSpec(
            name="capped",
            workload=WorkloadSpec.scenario("S1"),
            energy=EnergySpec(governor="performance", power_cap_watts=0.001),
        )
        events = []
        log = Session.from_spec(spec).run(on_event=events.append)
        rejects = [e for e in events if e.kind is RunEventKind.REJECT]
        assert rejects and all(e.data["reason"] == "budget" for e in rejects)
        assert log.budget_rejections == len(rejects)

    def test_stream_generator_yields_incrementally_and_ends_with_log(self):
        spec = _poisson_spec()
        kinds = []
        log = None
        for event in Session.from_spec(spec).stream():
            kinds.append(event.kind)
            if event.kind is RunEventKind.END:
                log = event.data["log"]
        assert kinds[-1] is RunEventKind.END
        assert log is not None
        assert _log_key(log) == _log_key(Session.from_spec(spec).run())

    def test_stream_propagates_simulation_failures(self):
        from repro.runtime.trace import RequestEvent, RequestTrace

        trace = RequestTrace([RequestEvent(0.0, "ghost-app", 5.0, "r0")])
        spec = ExperimentSpec(
            name="ghost", workload=WorkloadSpec.from_trace(trace)
        )
        with pytest.raises(AdmissionError):
            for _ in Session.from_spec(spec).stream():
                pass

    def test_abandoned_stream_does_not_leak_the_worker_thread(self):
        import threading
        import time

        spec = ExperimentSpec(
            name="abandoned",
            workload=WorkloadSpec.poisson(arrival_rate=0.5, num_requests=40, seed=1),
        )
        stream = Session.from_spec(spec).stream()
        next(stream)  # start the worker, consume one event
        start = time.perf_counter()
        stream.close()  # abandon mid-run
        assert time.perf_counter() - start < 5.0
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if not any(
                t.name == "repro-session-abandoned" for t in threading.enumerate()
            ):
                break
            time.sleep(0.01)
        assert not any(
            t.name == "repro-session-abandoned" for t in threading.enumerate()
        )

    def test_stream_is_a_context_manager(self):
        spec = _poisson_spec()
        kinds = []
        with Session.from_spec(spec).stream() as events:
            for event in events:
                kinds.append(event.kind)
        assert kinds[0] is RunEventKind.ARRIVAL
        assert kinds[-1] is RunEventKind.END

    def test_early_close_leaves_no_live_worker_thread(self):
        """Breaking out of the with-block mid-run joins the worker."""
        import threading
        import time

        spec = ExperimentSpec(
            name="early-close",
            workload=WorkloadSpec.poisson(arrival_rate=0.5, num_requests=40, seed=1),
        )
        with Session.from_spec(spec).stream() as events:
            next(events)  # worker is running mid-simulation
        # __exit__ has returned: the worker must already be joined, not
        # merely cancelled — no polling grace period.
        assert not any(
            t.name == "repro-session-early-close" for t in threading.enumerate()
        )
        # close() is idempotent and a closed stream stays closed.
        events.close()
        with pytest.raises(StopIteration):
            next(events)

    def test_close_before_first_next_never_starts_the_worker(self):
        import threading

        stream = Session.from_spec(_poisson_spec()).stream()
        stream.close()
        assert not any(
            t.name == "repro-session-session-poisson"
            for t in threading.enumerate()
        )

    def test_run_event_str_is_compact(self):
        spec = ExperimentSpec(name="str", workload=WorkloadSpec.scenario("S1"))
        events = []
        Session.from_spec(spec).run(on_event=events.append)
        text = str(events[0])
        assert "arrival" in text and "sigma1" in text


class TestConcurrentSessions:
    def test_parallel_sessions_with_private_caches_match_serial(self):
        """Two Sessions with independent KernelCaches, run in parallel
        threads, produce batch fingerprints identical to running each
        serially — per-tenant cache isolation never leaks across sessions.
        This is the property the gateway's per-tenant warm stores rely on.
        """
        import threading

        from repro.kernel.caches import KernelCaches

        specs = [_poisson_spec(seed=21), _poisson_spec(seed=42)]
        serial = [
            Session.from_spec(spec, kernel_caches=KernelCaches()).run_batch(trials=3)
            for spec in specs
        ]

        parallel_results = [None, None]
        errors = []

        def work(index):
            try:
                session = Session.from_spec(
                    specs[index], kernel_caches=KernelCaches()
                )
                parallel_results[index] = session.run_batch(trials=3)
            except BaseException as error:  # surfaced below
                errors.append(error)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        for reference, observed in zip(serial, parallel_results):
            assert observed is not None
            assert observed.fingerprint() == reference.fingerprint()


class TestSessionSurface:
    def test_requires_an_experiment_spec(self):
        with pytest.raises(WorkloadError):
            Session({"name": "nope"})

    def test_components_are_cached_per_session(self):
        session = Session.from_spec(_poisson_spec())
        assert session.platform is session.platform
        assert session.tables is session.tables
        # ... but schedulers are fresh per call (they may keep solve state).
        assert session.scheduler() is not session.scheduler()

    def test_from_file(self, tmp_path):
        spec = _poisson_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        session = Session.from_file(path)
        assert session.spec == spec

    def test_to_batch_validates_trials(self):
        session = Session.from_spec(_poisson_spec())
        with pytest.raises(WorkloadError):
            session.to_batch(trials=0)
        batch = session.to_batch(trials=2)
        assert [job.trace_spec.seed for job in batch.jobs] == [5, 6]

    def test_explore_requires_a_dse_section(self):
        with pytest.raises(WorkloadError):
            Session.from_spec(_poisson_spec()).explore()

    def test_batch_over_inline_tables_reuses_the_session_cache(self):
        from repro.api import PlatformSpec
        from repro.io import tables_to_dict
        from repro.workload.motivational import motivational_tables

        spec = ExperimentSpec(
            name="inline-batch",
            platform=PlatformSpec(name="motivational"),
            tables=None,
            tables_inline=tables_to_dict(motivational_tables()),
            workload=WorkloadSpec.poisson(arrival_rate=0.25, num_requests=4, seed=2),
        )
        session = Session.from_spec(spec)
        batch = session.to_batch(trials=2)
        # Every job carries the one materialised table set (shallow-copied
        # mapping, shared ConfigTable objects), not the serialised dict.
        for job in batch.jobs:
            assert not isinstance(job.tables, str)
            assert job.tables["lambda1"] is session.tables["lambda1"]
        results = session.run_batch(trials=2)
        assert results.failures == []

    def test_explore_single_graph(self):
        from repro.api import DSESpec, PlatformSpec
        from repro.dataflow import pedestrian_recognition

        spec = ExperimentSpec(
            name="dse-graph",
            platform=PlatformSpec(name="odroid-xu4"),
            dse=DSESpec(),
            tables=None,
        )
        table = Session.from_spec(spec).explore(
            graph=pedestrian_recognition().graph
        )
        assert len(table) > 0
