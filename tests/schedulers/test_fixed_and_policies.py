"""Tests for the fixed-mapping scheduler and the job-selection policies."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.platforms.resources import ResourceVector
from repro.schedulers import FixedMinEnergyScheduler, MMKPMDFScheduler
from repro.schedulers.policies import (
    ArrivalOrderPolicy,
    EarliestDeadlinePolicy,
    MaximumDifferencePolicy,
    MinimumLaxityPolicy,
    RandomPolicy,
)
from repro.workload.motivational import (
    CONFIG_1L1B,
    motivational_problem,
    motivational_tables,
)


class TestFixedScheduler:
    def test_motivational_s1_selects_1l1b_for_both_jobs(self, mot_problem_s1):
        # With both jobs forced to run concurrently the cheapest feasible pair
        # is 1L1B/1L1B, as discussed in Section III of the paper.
        result = FixedMinEnergyScheduler().schedule(mot_problem_s1)
        assert result.feasible
        assert result.assignment == {"sigma1": CONFIG_1L1B, "sigma2": CONFIG_1L1B}
        report = mot_problem_s1.validate(result.schedule)
        assert report.feasible, report.violations

    def test_motivational_s2_is_rejected(self, mot_problem_s2):
        # The tighter deadline of S2 cannot be met without adaptation.
        assert not FixedMinEnergyScheduler().schedule(mot_problem_s2).feasible

    def test_fixed_energy_is_never_below_the_adaptive_mapper(self, random_problems):
        for problem in random_problems:
            fixed = FixedMinEnergyScheduler().schedule(problem)
            adaptive = MMKPMDFScheduler().schedule(problem)
            if fixed.feasible and adaptive.feasible:
                # Both are valid; the fixed mapping is a restricted special
                # case of the segment-based schedules.
                assert problem.validate(fixed.schedule).feasible

    def test_single_job(self):
        problem = SchedulingProblem(
            ResourceVector([2, 2]),
            motivational_tables(),
            [Job("solo", "lambda2", 0.0, 4.0)],
        )
        result = FixedMinEnergyScheduler().schedule(problem)
        assert result.feasible
        # Cheapest lambda2 point finishing within 4 s is 2L1B (3 s, 5.73 J).
        assert result.energy == pytest.approx(5.73)

    def test_rejects_when_no_concurrent_assignment_fits(self):
        table = ConfigTable("a", [OperatingPoint(ResourceVector([2]), 4.0, 1.0)])
        jobs = [Job("j1", "a", 0.0, 20.0), Job("j2", "a", 0.0, 20.0)]
        problem = SchedulingProblem(ResourceVector([2]), {"a": table}, jobs)
        assert not FixedMinEnergyScheduler().schedule(problem).feasible


class TestPolicies:
    def _candidates(self, problem):
        tables = problem.tables
        return [
            (job, list(tables[job.application].indices())) for job in problem.jobs
        ], tables

    def test_mdf_prefers_the_job_with_the_largest_energy_gap(self, mot_problem_s1):
        candidates, tables = self._candidates(mot_problem_s1)
        job, _ = MaximumDifferencePolicy().select(candidates, tables, now=1.0)
        # With all configurations available, the largest best-to-second-best
        # gap belongs to sigma2 (2.00 vs 2.87 J) compared to sigma1.
        assert job.name == "sigma2"

    def test_mdf_gives_priority_to_single_option_jobs(self, mot_problem_s1):
        candidates, tables = self._candidates(mot_problem_s1)
        # Restrict sigma1 to a single configuration: it must be selected first.
        restricted = [
            (job, indices if job.name != "sigma1" else [0])
            for job, indices in candidates
        ]
        job, indices = MaximumDifferencePolicy().select(restricted, tables, now=1.0)
        assert job.name == "sigma1"
        assert indices == [0]

    def test_policies_return_hopeless_jobs_immediately(self, mot_problem_s1):
        candidates, tables = self._candidates(mot_problem_s1)
        hopeless = [
            (job, [] if job.name == "sigma2" else indices)
            for job, indices in candidates
        ]
        for policy in (
            MaximumDifferencePolicy(),
            EarliestDeadlinePolicy(),
            ArrivalOrderPolicy(),
            MinimumLaxityPolicy(),
            RandomPolicy(seed=3),
        ):
            job, indices = policy.select(hopeless, tables, now=1.0)
            assert job.name == "sigma2"
            assert indices == []

    def test_edf_and_arrival_and_laxity_orders(self, mot_problem_s1):
        candidates, tables = self._candidates(mot_problem_s1)
        job, _ = EarliestDeadlinePolicy().select(candidates, tables, now=1.0)
        assert job.name == "sigma2"  # deadline 5 < 9
        job, _ = ArrivalOrderPolicy().select(candidates, tables, now=1.0)
        assert job.name == "sigma1"  # arrived at t=0
        job, _ = MinimumLaxityPolicy().select(candidates, tables, now=1.0)
        assert job.name == "sigma2"

    def test_random_policy_is_deterministic_per_seed(self, mot_problem_s1):
        candidates, tables = self._candidates(mot_problem_s1)
        first = RandomPolicy(seed=5).select(candidates, tables, now=1.0)
        second = RandomPolicy(seed=5).select(candidates, tables, now=1.0)
        assert first[0].name == second[0].name

    def test_mdf_scheduler_beats_or_matches_other_policies_on_energy(
        self, random_problems
    ):
        # MDF is the paper's choice; averaged over the random workload it
        # should not lose to a naive arrival-order policy.
        mdf_total, fifo_total, counted = 0.0, 0.0, 0
        for problem in random_problems:
            mdf = MMKPMDFScheduler(policy=MaximumDifferencePolicy()).schedule(problem)
            fifo = MMKPMDFScheduler(policy=ArrivalOrderPolicy()).schedule(problem)
            if mdf.feasible and fifo.feasible:
                mdf_total += mdf.energy
                fifo_total += fifo.energy
                counted += 1
        assert counted > 0
        assert mdf_total <= fifo_total * 1.02
