"""Tests for the MMKP-LR baseline scheduler."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.platforms.resources import ResourceVector
from repro.schedulers import ExMemScheduler, MMKPLRScheduler, MMKPMDFScheduler


class TestMotivationalExample:
    def test_scenario_s1_is_feasible_but_not_optimal(self, mot_problem_s1):
        result = MMKPLRScheduler().schedule(mot_problem_s1)
        assert result.feasible
        report = mot_problem_s1.validate(result.schedule)
        assert report.feasible, report.violations
        optimal = ExMemScheduler().schedule(mot_problem_s1)
        # The single-segment scope costs energy compared with the global scope.
        assert result.energy >= optimal.energy - 1e-9

    def test_single_job_is_solved_optimally(self):
        from repro.workload.motivational import motivational_tables

        problem = SchedulingProblem(
            ResourceVector([2, 2]),
            motivational_tables(),
            [Job("solo", "lambda1", arrival=0.0, deadline=9.0)],
        )
        result = MMKPLRScheduler().schedule(problem)
        assert result.feasible
        # With a single job the greedy per-segment choice is the global optimum.
        assert result.energy == pytest.approx(8.9)


class TestStructure:
    def test_segments_are_rebuilt_per_completion(self, mot_problem_s1):
        result = MMKPLRScheduler().schedule(mot_problem_s1)
        # The scope is one segment at a time: a new segment starts when the
        # first job of the previous one completes.
        assert len(result.schedule) >= 2
        assert result.schedule.is_contiguous()

    def test_statistics_report_subgradient_iterations(self, mot_problem_s1):
        result = MMKPLRScheduler().schedule(mot_problem_s1)
        assert result.statistics["subgradient_iterations"] > 0
        assert result.statistics["segments"] == len(result.schedule)

    def test_iteration_limit_is_configurable(self, mot_problem_s1):
        limited = MMKPLRScheduler(max_subgradient_iterations=3)
        result = limited.schedule(mot_problem_s1)
        assert result.feasible
        assert (
            result.statistics["subgradient_iterations"]
            <= 3 * result.statistics["segments"]
        )


class TestRejection:
    def test_impossible_deadline_is_rejected(self):
        table = ConfigTable("a", [OperatingPoint(ResourceVector([1]), 10.0, 1.0)])
        problem = SchedulingProblem(
            ResourceVector([1]), {"a": table}, [Job("late", "a", 0.0, 5.0)]
        )
        assert not MMKPLRScheduler().schedule(problem).feasible

    def test_overloaded_platform_is_rejected(self):
        table = ConfigTable("a", [OperatingPoint(ResourceVector([2]), 10.0, 1.0)])
        jobs = [Job(f"j{i}", "a", 0.0, 11.0) for i in range(3)]
        problem = SchedulingProblem(ResourceVector([2]), {"a": table}, jobs)
        assert not MMKPLRScheduler().schedule(problem).feasible


class TestAgainstRandomWorkload:
    def test_accepted_schedules_are_valid(self, random_problems):
        scheduler = MMKPLRScheduler()
        accepted = 0
        for problem in random_problems:
            result = scheduler.schedule(problem)
            if not result.feasible:
                continue
            accepted += 1
            report = problem.validate(result.schedule)
            assert report.feasible, report.violations
        assert accepted > 0

    def test_energy_is_never_better_than_exmem(self, random_problems):
        for problem in random_problems:
            lr = MMKPLRScheduler().schedule(problem)
            if not lr.feasible:
                continue
            reference = ExMemScheduler().schedule(problem)
            assert reference.feasible
            assert lr.energy >= reference.energy - 1e-6

    def test_is_slower_than_mdf_on_multi_job_cases(self, random_problems):
        # Aggregate over the random workload: LR spends at least as much time
        # as MDF (it runs up to 100 subgradient iterations per segment).
        lr_total, mdf_total = 0.0, 0.0
        for problem in random_problems:
            if len(problem.jobs) < 2:
                continue
            lr_total += MMKPLRScheduler().schedule(problem).search_time
            mdf_total += MMKPMDFScheduler().schedule(problem).search_time
        assert lr_total > mdf_total
