"""Cross-scheduler consistency checks on the DSE-generated workload.

These tests encode the relationships the paper's evaluation relies on:
EX-MEM is the energy reference and schedules a superset of the heuristics'
test cases; all schedulers agree on single-job cases; every accepted schedule
satisfies the formal constraints (2b)-(2e).
"""

import pytest

from repro.schedulers import (
    ExMemScheduler,
    FixedMinEnergyScheduler,
    MMKPLRScheduler,
    MMKPMDFScheduler,
)


@pytest.fixture(scope="module")
def scheduler_results(random_problems):
    """Run all four schedulers on the shared random workload once."""
    schedulers = {
        "ex-mem": ExMemScheduler(),
        "mmkp-mdf": MMKPMDFScheduler(),
        "mmkp-lr": MMKPLRScheduler(),
        "fixed": FixedMinEnergyScheduler(),
    }
    results = []
    for problem in random_problems:
        per_scheduler = {
            name: scheduler.schedule(problem) for name, scheduler in schedulers.items()
        }
        results.append((problem, per_scheduler))
    return results


class TestFeasibilityRelations:
    def test_every_accepted_schedule_is_constraint_clean(self, scheduler_results):
        for problem, per_scheduler in scheduler_results:
            for name, result in per_scheduler.items():
                if result.feasible:
                    report = problem.validate(result.schedule)
                    assert report.feasible, (name, report.violations)

    def test_exmem_accepts_whatever_any_other_scheduler_accepts(self, scheduler_results):
        for _, per_scheduler in scheduler_results:
            others_feasible = any(
                result.feasible
                for name, result in per_scheduler.items()
                if name != "ex-mem"
            )
            if others_feasible:
                assert per_scheduler["ex-mem"].feasible

    def test_fixed_mapper_acceptances_are_a_subset_of_exmem(self, scheduler_results):
        # A fixed concurrent mapping is a special case of a segment schedule,
        # so the exhaustive search accepts every case the fixed mapper accepts.
        accepted_fixed = 0
        for _, per_scheduler in scheduler_results:
            if per_scheduler["fixed"].feasible:
                accepted_fixed += 1
                assert per_scheduler["ex-mem"].feasible
        assert accepted_fixed > 0


class TestEnergyRelations:
    def test_exmem_is_the_energy_lower_bound(self, scheduler_results):
        for _, per_scheduler in scheduler_results:
            reference = per_scheduler["ex-mem"]
            if not reference.feasible:
                continue
            for name, result in per_scheduler.items():
                if result.feasible:
                    assert result.energy >= reference.energy - 1e-6, name

    def test_single_job_energies_agree_across_schedulers(self, scheduler_results):
        for problem, per_scheduler in scheduler_results:
            if len(problem.jobs) != 1:
                continue
            energies = {
                name: result.energy
                for name, result in per_scheduler.items()
                if result.feasible
            }
            if len(energies) > 1:
                values = list(energies.values())
                assert max(values) - min(values) <= 1e-6 * max(values), energies

    def test_mdf_energy_close_to_optimal_on_average(self, scheduler_results):
        from repro.analysis.stats import geometric_mean

        ratios = []
        for _, per_scheduler in scheduler_results:
            reference = per_scheduler["ex-mem"]
            candidate = per_scheduler["mmkp-mdf"]
            if reference.feasible and candidate.feasible and reference.energy > 0:
                ratios.append(candidate.energy / reference.energy)
        assert ratios
        # The paper reports a 3.6 % gap overall; on the reduced tables used in
        # the tests a 15 % bound is a comfortable sanity margin.
        assert geometric_mean(ratios) <= 1.15


class TestOverheadRelations:
    def test_mdf_total_overhead_is_the_smallest_heuristic(self, scheduler_results):
        totals = {"mmkp-mdf": 0.0, "mmkp-lr": 0.0}
        for _, per_scheduler in scheduler_results:
            for name in totals:
                totals[name] += per_scheduler[name].search_time
        assert totals["mmkp-mdf"] < totals["mmkp-lr"]

    def test_all_schedulers_report_positive_search_time(self, scheduler_results):
        for _, per_scheduler in scheduler_results:
            for result in per_scheduler.values():
                assert result.search_time > 0.0
