"""Tests for the MMKP-MDF scheduler (the paper's Algorithm 1)."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.platforms.resources import ResourceVector
from repro.schedulers import MMKPMDFScheduler
from repro.schedulers.policies import EarliestDeadlinePolicy
from repro.workload.motivational import (
    CONFIG_2L1B,
    motivational_problem,
    motivational_tables,
)


class TestMotivationalExample:
    def test_scenario_s1_matches_fig1c(self, mot_problem_s1):
        result = MMKPMDFScheduler().schedule(mot_problem_s1)
        assert result.feasible
        # Both requests use the 2L1B configuration (Fig. 1c) and the remaining
        # energy is 0.8113 * 8.9 + 5.73 = 12.95 J.
        assert result.assignment == {"sigma1": CONFIG_2L1B, "sigma2": CONFIG_2L1B}
        assert result.energy == pytest.approx(12.951, abs=0.01)
        report = mot_problem_s1.validate(result.schedule)
        assert report.feasible, report.violations

    def test_scenario_s2_is_schedulable_by_the_adaptive_mapper(self, mot_problem_s2):
        # A fixed mapper rejects sigma2 in S2; the adaptive MMKP-MDF admits it.
        result = MMKPMDFScheduler().schedule(mot_problem_s2)
        assert result.feasible
        assert mot_problem_s2.validate(result.schedule).feasible

    def test_single_job_picks_the_most_efficient_feasible_point(self):
        problem = SchedulingProblem(
            ResourceVector([2, 2]),
            motivational_tables(),
            [Job("solo", "lambda1", arrival=0.0, deadline=9.0)],
            now=0.0,
        )
        result = MMKPMDFScheduler().schedule(problem)
        # Table II: 2L1B (5.3 s, 8.9 J) is the cheapest point meeting t=9.
        assert result.assignment == {"solo": CONFIG_2L1B}
        assert result.energy == pytest.approx(8.9)


class TestRejection:
    def test_impossible_deadline_is_rejected(self):
        problem = SchedulingProblem(
            ResourceVector([2, 2]),
            motivational_tables(),
            [Job("hopeless", "lambda1", arrival=0.0, deadline=1.0)],
            now=0.0,
        )
        result = MMKPMDFScheduler().schedule(problem)
        assert not result.feasible
        assert result.schedule is None

    def test_resource_starved_job_set_is_rejected(self):
        # Three jobs that all need at least two little cores within a horizon
        # that forbids any serialisation.
        table = ConfigTable(
            "greedy",
            [OperatingPoint(ResourceVector([2]), 10.0, 5.0)],
        )
        jobs = [Job(f"j{i}", "greedy", 0.0, 12.0) for i in range(3)]
        problem = SchedulingProblem(ResourceVector([2]), {"greedy": table}, jobs)
        result = MMKPMDFScheduler().schedule(problem)
        assert not result.feasible


class TestResultMetadata:
    def test_statistics_and_search_time_are_reported(self, mot_problem_s1):
        result = MMKPMDFScheduler().schedule(mot_problem_s1)
        assert result.search_time > 0
        assert result.statistics["packer_calls"] >= 2
        assert result.statistics["policy_calls"] == 2

    def test_energy_matches_problem_objective(self, mot_problem_s1):
        result = MMKPMDFScheduler().schedule(mot_problem_s1)
        assert result.energy == pytest.approx(
            mot_problem_s1.energy_of(result.schedule)
        )

    def test_alternative_policy_is_used(self, mot_problem_s1):
        scheduler = MMKPMDFScheduler(policy=EarliestDeadlinePolicy())
        assert scheduler.policy.name == "edf"
        result = scheduler.schedule(mot_problem_s1)
        assert result.feasible
        assert mot_problem_s1.validate(result.schedule).feasible


class TestAgainstRandomWorkload:
    def test_all_accepted_schedules_are_valid(self, random_problems):
        scheduler = MMKPMDFScheduler()
        accepted = 0
        for problem in random_problems:
            result = scheduler.schedule(problem)
            if not result.feasible:
                continue
            accepted += 1
            report = problem.validate(result.schedule)
            assert report.feasible, report.violations
            # The committed assignment covers every job of the problem.
            assert set(result.assignment) == {job.name for job in problem.jobs}
        assert accepted > 0, "the random workload should contain feasible cases"

    def test_single_job_cases_match_exhaustive_optimum(self, random_problems):
        from repro.schedulers import ExMemScheduler

        for problem in random_problems:
            if len(problem.jobs) != 1:
                continue
            mdf = MMKPMDFScheduler().schedule(problem)
            reference = ExMemScheduler().schedule(problem)
            assert mdf.feasible == reference.feasible
            if mdf.feasible:
                assert mdf.energy == pytest.approx(reference.energy, rel=1e-6)
