"""Tests for the EDF mapping-segment packer (Algorithm 2)."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.exceptions import SchedulingError
from repro.platforms.resources import ResourceVector
from repro.schedulers.edf_packer import pack_jobs_edf
from repro.workload.motivational import CONFIG_2L1B, motivational_problem


@pytest.fixture()
def simple_problem():
    """Two jobs on a 2-core single-type platform with two configurations."""
    table = ConfigTable(
        "app",
        [
            OperatingPoint(ResourceVector([1]), 10.0, 2.0),  # slow, cheap, 1 core
            OperatingPoint(ResourceVector([2]), 6.0, 3.0),  # fast, 2 cores
        ],
    )
    jobs = [
        Job("early", "app", arrival=0.0, deadline=8.0),
        Job("late", "app", arrival=0.0, deadline=30.0),
    ]
    return SchedulingProblem(ResourceVector([2]), {"app": table}, jobs, now=0.0)


class TestBasicPacking:
    def test_single_job_gets_one_segment(self, simple_problem):
        problem = simple_problem.with_jobs([simple_problem.job("late")])
        schedule = pack_jobs_edf(problem, {"late": 0})
        assert schedule is not None
        assert len(schedule) == 1
        assert schedule.completion_time("late") == pytest.approx(10.0)

    def test_jobs_without_assignment_are_ignored(self, simple_problem):
        schedule = pack_jobs_edf(simple_problem, {"late": 0})
        assert schedule.job_names() == {"late"}

    def test_unknown_configuration_raises(self, simple_problem):
        with pytest.raises(SchedulingError):
            pack_jobs_edf(simple_problem, {"late": 99})

    def test_edf_order_puts_urgent_job_first(self, simple_problem):
        # Both jobs want the 2-core configuration, so they cannot overlap; the
        # earlier deadline must be served first.
        schedule = pack_jobs_edf(simple_problem, {"early": 1, "late": 1})
        assert schedule is not None
        assert schedule.completion_time("early") == pytest.approx(6.0)
        assert schedule.completion_time("late") == pytest.approx(12.0)

    def test_concurrent_execution_when_resources_allow(self, simple_problem):
        relaxed = simple_problem.with_jobs(
            [
                simple_problem.job("early").with_remaining(1.0),
                simple_problem.job("late"),
            ]
        )
        relaxed = relaxed.with_jobs(
            [Job("early", "app", 0.0, 30.0), Job("late", "app", 0.0, 30.0)]
        )
        schedule = pack_jobs_edf(relaxed, {"early": 0, "late": 0})
        # Both single-core jobs fit side by side in one segment.
        assert len(schedule) == 1
        assert schedule.completion_time("early") == pytest.approx(10.0)
        assert schedule.completion_time("late") == pytest.approx(10.0)

    def test_deadline_violation_returns_none(self, simple_problem):
        # The slow configuration finishes "early" at 10 s, after its 8 s deadline.
        assert pack_jobs_edf(simple_problem, {"early": 0, "late": 0}) is None

    def test_remaining_ratio_shortens_execution(self, simple_problem):
        half_done = simple_problem.job("late").with_remaining(0.5)
        problem = simple_problem.with_jobs([half_done])
        schedule = pack_jobs_edf(problem, {"late": 0})
        assert schedule.completion_time("late") == pytest.approx(5.0)


class TestSegmentStructure:
    def test_segment_split_when_job_finishes_inside(self, simple_problem):
        # "early" runs 6 s with the fast config; "late" with the slow config
        # shares the remaining core and continues after "early" finishes.
        table = ConfigTable(
            "app",
            [
                OperatingPoint(ResourceVector([1]), 10.0, 2.0),
                OperatingPoint(ResourceVector([1]), 6.0, 3.0),
            ],
        )
        jobs = [
            Job("early", "app", arrival=0.0, deadline=8.0),
            Job("late", "app", arrival=0.0, deadline=30.0),
        ]
        problem = SchedulingProblem(ResourceVector([2]), {"app": table}, jobs, now=0.0)
        schedule = pack_jobs_edf(problem, {"early": 1, "late": 0})
        assert schedule is not None
        # The packer first places "early" as one segment [0, 6), then "late"
        # splits it at its own completion... late runs 10 s total, so the
        # timeline is [0, 6) with both jobs and [6, 10) with late alone.
        assert len(schedule) == 2
        assert schedule.segments[0].job_names() == {"early", "late"}
        assert schedule.segments[1].job_names() == {"late"}
        assert schedule.end == pytest.approx(10.0)

    def test_schedule_is_contiguous_and_starts_at_now(self, simple_problem):
        schedule = pack_jobs_edf(simple_problem, {"early": 1, "late": 1})
        assert schedule.is_contiguous()
        assert schedule.start == pytest.approx(simple_problem.now)

    def test_packing_respects_activation_time(self, simple_problem):
        problem = simple_problem.with_now(2.0)
        schedule = pack_jobs_edf(problem, {"early": 1, "late": 1})
        assert schedule is not None
        assert schedule.start == pytest.approx(2.0)
        assert schedule.completion_time("early") == pytest.approx(8.0)


class TestMotivationalExample:
    def test_reproduces_the_adaptive_schedule_of_fig1c(self):
        problem = motivational_problem("S1")
        schedule = pack_jobs_edf(
            problem, {"sigma1": CONFIG_2L1B, "sigma2": CONFIG_2L1B}
        )
        assert schedule is not None
        # sigma2 (deadline 5) occupies 2L1B first; sigma1 is suspended and
        # resumes at t=4 finishing at 1 + 3 + 4.3 = 8.3 (cf. Fig. 1c).
        assert schedule.completion_time("sigma2") == pytest.approx(4.0)
        assert schedule.completion_time("sigma1") == pytest.approx(8.3, abs=1e-6)
        report = problem.validate(schedule)
        assert report.feasible, report.violations

    def test_validation_of_all_feasible_packings(self):
        problem = motivational_problem("S1")
        tables = problem.tables
        for config1 in range(len(tables["lambda1"])):
            for config2 in range(len(tables["lambda2"])):
                schedule = pack_jobs_edf(
                    problem, {"sigma1": config1, "sigma2": config2}
                )
                if schedule is None:
                    continue
                report = problem.validate(schedule)
                assert report.feasible, (config1, config2, report.violations)
