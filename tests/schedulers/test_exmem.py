"""Tests for the EX-MEM exhaustive reference scheduler."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.platforms.resources import ResourceVector
from repro.schedulers import ExMemScheduler, MMKPMDFScheduler, MMKPLRScheduler


class TestOptimality:
    def test_motivational_s1_optimum(self, mot_problem_s1):
        result = ExMemScheduler().schedule(mot_problem_s1)
        assert result.feasible
        # 12.95 J remaining energy corresponds to the 14.63 J total of Fig. 1c.
        assert result.energy == pytest.approx(12.951, abs=0.01)
        assert mot_problem_s1.validate(result.schedule).feasible

    def test_never_worse_than_the_heuristics(self, random_problems):
        reference = ExMemScheduler()
        heuristics = [MMKPMDFScheduler(), MMKPLRScheduler()]
        compared = 0
        for problem in random_problems:
            optimal = reference.schedule(problem)
            if not optimal.feasible:
                continue
            assert problem.validate(optimal.schedule).feasible
            for heuristic in heuristics:
                other = heuristic.schedule(problem)
                if other.feasible:
                    compared += 1
                    assert optimal.energy <= other.energy + 1e-6
        assert compared > 0

    def test_schedules_whatever_the_heuristics_schedule(self, random_problems):
        # EX-MEM explores a superset of the heuristics' schedules, so any test
        # case the heuristics can place must be schedulable for EX-MEM too.
        reference = ExMemScheduler()
        for problem in random_problems:
            mdf = MMKPMDFScheduler().schedule(problem)
            if mdf.feasible:
                assert reference.schedule(problem).feasible

    def test_exploits_reconfiguration_across_segments(self):
        # One big/little platform, one job whose deadline forces a fast start
        # but allows a cheap finish after a competing job departs.
        table_a = ConfigTable(
            "a",
            [
                OperatingPoint(ResourceVector([1, 0]), 10.0, 2.0),
                OperatingPoint(ResourceVector([0, 1]), 4.0, 6.0),
            ],
        )
        table_b = ConfigTable(
            "b",
            [OperatingPoint(ResourceVector([1, 0]), 2.0, 1.0)],
        )
        jobs = [
            Job("flexible", "a", arrival=0.0, deadline=11.0),
            Job("blocker", "b", arrival=0.0, deadline=2.0),
        ]
        problem = SchedulingProblem(
            ResourceVector([1, 1]), {"a": table_a, "b": table_b}, jobs
        )
        result = ExMemScheduler().schedule(problem)
        assert result.feasible
        report = problem.validate(result.schedule)
        assert report.feasible, report.violations
        # The optimum (5 J) requires "flexible" to start on the big core and
        # switch to the little core once "blocker" departs; a fixed assignment
        # would cost 7 J.
        assert result.energy == pytest.approx(5.0, abs=1e-6)
        assert result.schedule.configuration_changes("flexible") == 1


class TestPracticalKnobs:
    def test_max_configs_per_job_restricts_the_search(self, mot_problem_s1):
        unrestricted = ExMemScheduler().schedule(mot_problem_s1)
        restricted = ExMemScheduler(max_configs_per_job=2).schedule(mot_problem_s1)
        # Fewer options can only keep or worsen the optimal energy.
        if restricted.feasible:
            assert restricted.energy >= unrestricted.energy - 1e-9

    def test_state_budget_reports_exhaustion(self, mot_problem_s1):
        result = ExMemScheduler(max_states=1).schedule(mot_problem_s1)
        assert not result.feasible
        assert result.statistics["budget_exhausted"] == 1.0

    def test_statistics_contain_state_count(self, mot_problem_s1):
        result = ExMemScheduler().schedule(mot_problem_s1)
        assert result.statistics["states"] >= 1
        assert result.statistics["budget_exhausted"] == 0.0

    def test_infeasible_problem_is_rejected(self):
        table = ConfigTable("a", [OperatingPoint(ResourceVector([1]), 10.0, 1.0)])
        problem = SchedulingProblem(
            ResourceVector([1]), {"a": table}, [Job("late", "a", 0.0, 5.0)]
        )
        assert not ExMemScheduler().schedule(problem).feasible
