"""Byte-level backend contract: MemoryBackend and SQLiteBackend agree."""

import pytest

from repro.store.backend import MemoryBackend, SQLiteBackend


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    else:
        instance = SQLiteBackend(tmp_path / "store.db")
        yield instance
        instance.close()


class TestBackendContract:
    def test_get_missing(self, backend):
        assert backend.get("ns", "k") is None

    def test_put_get_roundtrip(self, backend):
        backend.put("ns", "k", b"value")
        assert backend.get("ns", "k") == b"value"

    def test_put_replaces(self, backend):
        backend.put("ns", "k", b"old")
        backend.put("ns", "k", b"new")
        assert backend.get("ns", "k") == b"new"

    def test_namespace_isolation(self, backend):
        backend.put("a", "k", b"1")
        backend.put("b", "k", b"2")
        assert backend.get("a", "k") == b"1"
        assert backend.get("b", "k") == b"2"

    def test_delete(self, backend):
        backend.put("ns", "k", b"value")
        backend.delete("ns", "k")
        assert backend.get("ns", "k") is None
        backend.delete("ns", "absent")  # not an error

    def test_namespaces_sorted(self, backend):
        backend.put("zeta", "k", b"1")
        backend.put("alpha", "k", b"1")
        assert backend.namespaces() == ["alpha", "zeta"]

    def test_count(self, backend):
        assert backend.count("ns") == (0, 0)
        backend.put("ns", "k1", b"12345")
        backend.put("ns", "k2", b"123")
        assert backend.count("ns") == (2, 8)

    def test_drop_namespace(self, backend):
        backend.put("ns", "k1", b"1")
        backend.put("ns", "k2", b"2")
        backend.put("other", "k", b"3")
        assert backend.drop_namespace("ns") == 2
        assert backend.count("ns") == (0, 0)
        assert backend.get("other", "k") == b"3"

    def test_trim_keeps_bound(self, backend):
        for index in range(6):
            backend.put("ns", f"k{index}", b"x")
        assert backend.trim("ns", 2) == 4
        assert backend.count("ns")[0] == 2
        assert backend.trim("ns", 2) == 0

    def test_clear(self, backend):
        backend.put("a", "k", b"1")
        backend.put("b", "k", b"2")
        backend.clear()
        assert backend.namespaces() == []


class TestSQLitePersistence:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "store.db"
        first = SQLiteBackend(path)
        first.put("ns", "k", b"durable")
        first.close()
        second = SQLiteBackend(path)
        assert second.get("ns", "k") == b"durable"
        second.close()

    def test_path_property(self, tmp_path):
        path = tmp_path / "sub" / "store.db"
        backend = SQLiteBackend(path)
        assert backend.path == str(path)
        assert MemoryBackend().path is None
        backend.close()
