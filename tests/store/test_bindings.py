"""Store-backed cache drop-ins: warm sharing through one ContentStore."""

from repro.kernel.caches import KernelCaches
from repro.optable import as_optable, bind_intern_store, clear_intern_pool
from repro.service.cache import ActivationCache
from repro.store import (
    ContentStore,
    StoreBackedActivationCache,
    StoreBackedKernelCaches,
    StoreBackedSolveCache,
    store_backed_activation_cache,
    store_backed_caches,
)
from repro.workload.motivational import motivational_tables


class TestStoreBackedSolveCache:
    def test_warm_across_instances(self):
        store = ContentStore.in_memory()
        first = StoreBackedSolveCache(store)
        first.put(("fp", 4.0), "solution")
        second = StoreBackedSolveCache(store)
        assert second.get(("fp", 4.0)) == "solution"
        assert second.hits == 1 and second.misses == 0

    def test_miss_counts(self):
        cache = StoreBackedSolveCache(ContentStore.in_memory())
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_local_eviction_falls_back_to_store(self):
        store = ContentStore.in_memory()
        cache = StoreBackedSolveCache(store, max_entries=2)
        for index in range(5):
            cache.put(index, index * 10)
        assert len(cache) <= 2
        assert cache.get(0) == 0  # evicted locally, recovered from the store


class TestStoreBackedActivationCache:
    def test_warm_across_instances(self):
        store = ContentStore.in_memory()
        first = StoreBackedActivationCache(store)
        first.put(("sig",), "canonical-result")
        second = StoreBackedActivationCache(store)
        assert second.get(("sig",)) == "canonical-result"
        assert second.hits == 1

    def test_interface_matches_parent(self):
        cache = StoreBackedActivationCache(ContentStore.in_memory())
        info = cache.info()
        assert set(info) == set(ActivationCache().info())


class TestStoreBackedKernelCaches:
    def test_solve_cache_is_store_backed(self):
        caches = StoreBackedKernelCaches(ContentStore.in_memory())
        assert isinstance(caches.solve_cache, StoreBackedSolveCache)

    def test_exmem_columns_warm_across_instances(self):
        store = ContentStore.in_memory()
        first = StoreBackedKernelCaches(store)
        first.store_exmem_columns("fp", 3, ("columns",))
        second = StoreBackedKernelCaches(store)
        assert second.exmem_columns("fp", 3) == ("columns",)
        assert second.exmem_columns("fp", 4) is None

    def test_info_includes_store_counters(self):
        caches = StoreBackedKernelCaches(ContentStore.in_memory())
        caches.store_exmem_columns("fp", None, ("c",))
        info = caches.info()
        assert info["store"]["exmem"]["puts"] == 1

    def test_factories_degrade_to_plain_without_store(self):
        assert type(store_backed_caches(None)) is KernelCaches
        assert type(store_backed_activation_cache(None)) is ActivationCache
        store = ContentStore.in_memory()
        assert isinstance(store_backed_caches(store), StoreBackedKernelCaches)
        assert isinstance(
            store_backed_activation_cache(store), StoreBackedActivationCache
        )


class TestInternStoreBinding:
    def test_intern_warm_through_store(self):
        store = ContentStore.in_memory()
        previous = bind_intern_store(store)
        try:
            clear_intern_pool()
            points = list(motivational_tables()["lambda1"])
            built = as_optable(points)
            assert store.counters()["optable"]["puts"] >= 1
            # A fresh process is simulated by clearing the intern pool: the
            # rebuild must come from the store, not from a new construction.
            clear_intern_pool()
            warmed = as_optable(points)
            assert warmed.fingerprint == built.fingerprint
            assert warmed.times == built.times
            assert store.counters()["optable"]["hits"] >= 1
        finally:
            bind_intern_store(previous)
            clear_intern_pool()

    def test_unbound_interning_untouched(self):
        previous = bind_intern_store(None)
        try:
            points = list(motivational_tables()["lambda1"])
            assert as_optable(points) is as_optable(points)
        finally:
            bind_intern_store(previous)
