"""Regression tests for cache eviction under concurrent access.

Satellite of the store PR: the in-process caches must survive many threads
evicting against each other, and one SQLite store must survive many
*processes* reading, writing and garbage-collecting at once (WAL mode,
busy timeouts and per-PID connections are what make this hold).
"""

import threading
from concurrent.futures import ProcessPoolExecutor

from repro.kernel.caches import KernelCaches
from repro.optable.view import SolveCache
from repro.service.cache import ActivationCache
from repro.store import ContentStore, StoreBackedSolveCache


def _hammer_store(path: str, worker: int) -> dict:
    """One worker process: interleave puts, gets, trims and gc on one file."""
    store = ContentStore.open(path, local_entries=8)
    try:
        for index in range(120):
            key = (worker % 2, index % 30)
            store.put("solve", key, {"worker": worker, "index": index})
            store.get("solve", key)
            store.get("solve", (1 - worker % 2, index % 30))
            if index % 40 == 39:
                store.gc(max_entries_per_kind=25)
        counters = store.counters()["solve"]
        return {"errors": counters["errors"], "corrupt": counters["corrupt"]}
    finally:
        store.close()


class TestMultiprocessStore:
    def test_n_processes_hammer_one_store(self, tmp_path):
        path = str(tmp_path / "hammer.db")
        workers = 4
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(_hammer_store, [path] * workers, range(workers))
            )
        assert all(o["errors"] == 0 for o in outcomes), outcomes
        assert all(o["corrupt"] == 0 for o in outcomes), outcomes
        # The store is intact and bounded after the storm.
        store = ContentStore.open(path)
        entries, size = store.backend.count(store.namespace("solve"))
        assert 0 < entries <= 60  # 2 key groups x 30 indices
        assert size > 0
        assert store.gc()["dropped"] == 0
        store.close()


def _thread_storm(cache_op, threads: int = 8, iterations: int = 200):
    """Run ``cache_op(thread_index, iteration)`` from many threads at once."""
    errors = []
    barrier = threading.Barrier(threads)

    def loop(thread_index: int) -> None:
        barrier.wait()
        try:
            for iteration in range(iterations):
                cache_op(thread_index, iteration)
        except Exception as error:  # noqa: BLE001 — recorded for the assert
            errors.append(error)

    pool = [threading.Thread(target=loop, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert errors == []


class TestConcurrentEviction:
    """Tiny capacities force eviction on nearly every put."""

    def test_solve_cache(self):
        cache = SolveCache(max_entries=4)
        _thread_storm(
            lambda t, i: (cache.put((t, i % 16), i), cache.get((t, (i + 1) % 16)))
        )
        assert len(cache) <= 4
        info = cache.info()
        assert info["hits"] + info["misses"] > 0

    def test_store_backed_solve_cache(self):
        cache = StoreBackedSolveCache(ContentStore.in_memory(), max_entries=4)
        _thread_storm(
            lambda t, i: (cache.put((t, i % 16), i), cache.get((t, (i + 1) % 16)))
        )
        assert len(cache) <= 4

    def test_activation_cache(self):
        cache = ActivationCache(maxsize=4)
        _thread_storm(
            lambda t, i: (cache.put((t, i % 16), i), cache.get((t, (i + 1) % 16)))
        )
        assert len(cache) <= 4

    def test_kernel_caches_exmem(self):
        caches = KernelCaches()
        caches.MAX_EXMEM_TABLES = 4

        def op(t, i):
            caches.store_exmem_columns(f"fp{(t + i) % 16}", None, (t, i))
            caches.exmem_columns(f"fp{i % 16}", None)

        _thread_storm(op)
        assert caches.info()["exmem_tables"] <= 4
