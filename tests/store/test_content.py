"""ContentStore semantics: versioned namespaces, local front, degraded misses."""

import pickle

import pytest

from repro.store.backend import MemoryBackend, SQLiteBackend
from repro.store.content import ContentStore, encode_key, resolve_store


class TestEncodeKey:
    def test_stable_and_distinct(self):
        key = ("fp", 4.0, 100, ("a", 0.5))
        assert encode_key(key) == encode_key(("fp", 4.0, 100, ("a", 0.5)))
        assert encode_key(key) != encode_key(("fp", 4.0, 101, ("a", 0.5)))

    def test_float_repr_precision(self):
        assert encode_key((0.1 + 0.2,)) != encode_key((0.3,))


class TestContentStore:
    def test_roundtrip(self):
        store = ContentStore.in_memory()
        store.put("solve", ("k", 1.5), {"answer": 42})
        assert store.get("solve", ("k", 1.5)) == {"answer": 42}

    def test_miss(self):
        store = ContentStore.in_memory()
        assert store.get("solve", "absent") is None
        assert store.counters()["solve"]["misses"] == 1

    def test_local_front_hit(self):
        store = ContentStore.in_memory()
        store.put("solve", "k", "v")
        store.get("solve", "k")
        counters = store.counters()["solve"]
        assert counters["local_hits"] == 1
        assert counters["hits"] == 1

    def test_backend_hit_after_cold_front(self):
        backend = MemoryBackend()
        writer = ContentStore(backend)
        writer.put("solve", "k", "v")
        reader = ContentStore(backend)  # fresh front, same backend
        assert reader.get("solve", "k") == "v"
        counters = reader.counters()["solve"]
        assert counters["hits"] == 1
        assert counters["local_hits"] == 0
        assert counters["bytes_read"] > 0

    def test_local_front_bound_and_evictions(self):
        store = ContentStore.in_memory(local_entries=2)
        for index in range(5):
            store.put("solve", index, index)
        counters = store.counters()["solve"]
        assert counters["evictions"] == 3
        # Evicted from the front, still served by the backend.
        assert store.get("solve", 0) == 0

    def test_version_namespaces_isolate(self):
        backend = MemoryBackend()
        old = ContentStore(backend, version="1.0.0")
        old.put("solve", "k", "v1")
        new = ContentStore(backend, version="2.0.0")
        assert new.get("solve", "k") is None
        assert new.namespace("solve") == "solve:2.0.0"

    def test_gc_drops_other_versions(self):
        backend = MemoryBackend()
        old = ContentStore(backend, version="1.0.0")
        old.put("solve", "k", "v1")
        new = ContentStore(backend, version="2.0.0")
        new.put("solve", "k", "v2")
        outcome = new.gc()
        assert outcome["dropped"] == 1
        assert backend.namespaces() == ["solve:2.0.0"]

    def test_gc_trims_oversize_kinds(self):
        store = ContentStore.in_memory()
        for index in range(10):
            store.put("solve", index, index)
        outcome = store.gc(max_entries_per_kind=4)
        assert outcome["trimmed"] == 6
        assert store.backend.count(store.namespace("solve"))[0] == 4

    def test_clear(self):
        store = ContentStore.in_memory()
        store.put("solve", "k", "v")
        store.clear()
        assert store.get("solve", "k") is None
        assert store.backend.namespaces() == []

    def test_stats_shape(self, tmp_path):
        store = ContentStore.open(tmp_path / "s.db")
        store.put("exmem", "k", (1, 2))
        stats = store.stats()
        assert stats["path"] == str(tmp_path / "s.db")
        assert stats["namespaces"][store.namespace("exmem")]["entries"] == 1
        assert stats["kinds"]["exmem"]["puts"] == 1
        store.close()


class TestDegradedMisses:
    """A warm store may never make a run fail — only make it faster."""

    def test_corrupted_entry_is_a_miss(self):
        backend = MemoryBackend()
        store = ContentStore(backend, local_entries=0)
        store.put("solve", "k", "value")
        backend.put(store.namespace("solve"), encode_key("k"), b"\x80garbage!")
        assert store.get("solve", "k") is None
        counters = store.counters()["solve"]
        assert counters["corrupt"] == 1
        # The bad row was dropped so the decode is never paid again.
        assert backend.get(store.namespace("solve"), encode_key("k")) is None

    def test_truncated_entry_is_a_miss(self):
        backend = MemoryBackend()
        store = ContentStore(backend, local_entries=0)
        payload = pickle.dumps({"big": list(range(100))})
        backend.put(store.namespace("solve"), encode_key("k"), payload[: len(payload) // 2])
        assert store.get("solve", "k") is None
        assert store.counters()["solve"]["corrupt"] == 1

    def test_failing_backend_get_is_a_miss(self):
        class FlakyBackend(MemoryBackend):
            def get(self, namespace, key):
                raise OSError("disk on fire")

        store = ContentStore(FlakyBackend())
        assert store.get("solve", "k") is None
        counters = store.counters()["solve"]
        assert counters["errors"] == 1
        assert counters["misses"] == 1

    def test_failing_backend_put_is_swallowed(self):
        class FlakyBackend(MemoryBackend):
            def put(self, namespace, key, value):
                raise OSError("read-only filesystem")

        store = ContentStore(FlakyBackend())
        store.put("solve", "k", "v")
        assert store.counters()["solve"]["errors"] == 1
        # The local front still serves the value in-process.
        assert store.get("solve", "k") == "v"


class TestResolveStore:
    def test_none_without_configuration(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert resolve_store(None) is None

    def test_explicit_store_passes_through(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        store = ContentStore.in_memory()
        assert resolve_store(store) is store

    def test_explicit_path_opens_sqlite(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        store = resolve_store(tmp_path / "s.db")
        assert isinstance(store.backend, SQLiteBackend)
        store.close()

    def test_env_path_opts_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.db"))
        store = resolve_store(None)
        assert store is not None
        assert store.path == str(tmp_path / "env.db")
        store.close()

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " 0 "])
    def test_escape_hatch_beats_everything(self, monkeypatch, value, tmp_path):
        monkeypatch.setenv("REPRO_STORE", value)
        assert resolve_store(None) is None
        assert resolve_store(ContentStore.in_memory()) is None
        assert resolve_store(tmp_path / "s.db") is None
