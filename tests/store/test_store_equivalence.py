"""Acceptance contract of the store + cluster PR: caching never changes answers.

Batch fingerprints must be *identical* — not merely close — across
``workers=1``, ``workers=N``, a cold store, a warm store and the cluster
executor, for all four schedulers on the motivational workload and for the
census-tractable schedulers on the (scaled) census.  A corrupted store may
only ever make a run slower, never wrong or failed.
"""

import sqlite3

import pytest

from repro.dse import paper_operating_points, reduced_tables
from repro.platforms import odroid_xu4
from repro.service import BatchSpec, SimulationService
from repro.store import ContentStore

#: All four scheduler families; the unbounded EX-MEM search is exponential,
#: so the batch jobs reference a bounded variant registered below (the same
#: ``max_configs_per_job=3`` bound the kernel equivalence tests use).
#: Census coverage is restricted to the tractable MMKP pair.
SCHEDULERS = ["mmkp-mdf", "mmkp-lr", "ex-mem-small", "fixed"]
CENSUS_SCHEDULERS = ["mmkp-mdf", "mmkp-lr"]


@pytest.fixture(autouse=True, scope="module")
def _bounded_exmem():
    from repro.api.registry import schedulers
    from repro.schedulers import ExMemScheduler

    schedulers.register(
        "ex-mem-small", lambda: ExMemScheduler(max_configs_per_job=3), replace=True
    )
    yield
    schedulers.unregister("ex-mem-small")


@pytest.fixture(autouse=True)
def _no_env_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)


def motivational_spec(scheduler):
    return BatchSpec.sweep(
        arrival_rates=[0.2, 0.5],
        schedulers=(scheduler,),
        traces_per_point=2,
        num_requests=5,
        base_seed=7,
        name=f"motivational-{scheduler}",
    )


@pytest.fixture(scope="module")
def census_setup():
    platform = odroid_xu4()
    tables = reduced_tables(paper_operating_points(platform), max_points=6)
    return platform, tables


def census_spec(scheduler, platform, tables):
    return BatchSpec.sweep(
        arrival_rates=[0.4],
        schedulers=(scheduler,),
        traces_per_point=2,
        num_requests=8,
        base_seed=11,
        platform=platform,
        tables=tables,
        name=f"census-{scheduler}",
    )


def run_fingerprint(spec, **service_kwargs):
    results = SimulationService(**service_kwargs).run_batch(spec)
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    return results.fingerprint()


class TestMotivationalEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_workers_and_store_never_change_fingerprints(self, scheduler, tmp_path):
        spec = motivational_spec(scheduler)
        path = str(tmp_path / "store.db")
        baseline = run_fingerprint(spec)  # workers=1, no store
        threaded = run_fingerprint(spec, workers=3, executor="thread")
        cold = run_fingerprint(spec, workers=3, executor="thread", store=path)
        warm = run_fingerprint(spec, store=path)  # rerun against the filled store
        assert threaded == baseline
        assert cold == baseline
        assert warm == baseline

    def test_warm_run_actually_hits_the_store(self, tmp_path):
        spec = motivational_spec("mmkp-mdf")
        path = str(tmp_path / "store.db")
        run_fingerprint(spec, store=path)
        warm = SimulationService(store=path)
        warm.run_batch(spec)
        # The activation store is keyed per scheduler activation, so a warm
        # rerun hits at least once per job (every job has >= 1 activation).
        counters = warm.store.counters()["activation"]
        assert counters["hits"] >= len(spec.jobs)
        assert counters["local_hits"] == 0  # all served by the backend


class TestProcessAndClusterEquivalence:
    @pytest.mark.parametrize("scheduler", ["mmkp-mdf", "mmkp-lr"])
    def test_process_and_cluster_match_serial(self, scheduler, tmp_path):
        spec = motivational_spec(scheduler)
        path = str(tmp_path / "store.db")
        baseline = run_fingerprint(spec)
        processed = run_fingerprint(spec, workers=2, executor="process", store=path)
        cluster_service = SimulationService(workers=2, executor="cluster", store=path)
        clustered = cluster_service.run_batch(spec)
        assert all(r.ok for r in clustered)
        assert processed == baseline
        assert clustered.fingerprint() == baseline
        assert cluster_service.cluster_stats.units > 0
        assert cluster_service.cluster_stats.failed_units == 0


class TestCensusEquivalence:
    @pytest.mark.parametrize("scheduler", CENSUS_SCHEDULERS)
    def test_census_fingerprints(self, scheduler, census_setup, tmp_path):
        platform, tables = census_setup
        spec = census_spec(scheduler, platform, tables)
        path = str(tmp_path / "store.db")
        baseline = run_fingerprint(spec)
        threaded = run_fingerprint(spec, workers=2, executor="thread")
        cold = run_fingerprint(spec, workers=2, executor="thread", store=path)
        warm = run_fingerprint(spec, store=path)
        assert threaded == baseline
        assert cold == baseline
        assert warm == baseline


class TestCorruptedStore:
    def test_corrupted_entries_never_fail_a_batch(self, tmp_path):
        spec = motivational_spec("mmkp-lr")
        path = str(tmp_path / "store.db")
        baseline = run_fingerprint(spec)
        run_fingerprint(spec, store=path)  # fill the store
        with sqlite3.connect(path) as conn:
            vandalised = conn.execute(
                "UPDATE entries SET value = X'00DEADBEEF'"
            ).rowcount
        assert vandalised > 0
        service = SimulationService(store=path)
        results = service.run_batch(spec)
        assert all(r.ok for r in results)
        assert results.fingerprint() == baseline
        corrupt = sum(k["corrupt"] for k in service.store.counters().values())
        assert corrupt > 0
        # The vandalised rows were dropped and the rerun rewrote good ones:
        # every distinct entry (activation or solve) missed once and was
        # re-put.
        total_puts = sum(k["puts"] for k in service.store.counters().values())
        assert total_puts == vandalised


class TestEscapeHatch:
    def test_env_zero_restores_store_free_behaviour(self, monkeypatch, tmp_path):
        spec = motivational_spec("mmkp-mdf")
        baseline = run_fingerprint(spec)
        monkeypatch.setenv("REPRO_STORE", "0")
        service = SimulationService(store=str(tmp_path / "ignored.db"))
        assert service.store is None
        assert service.run_batch(spec).fingerprint() == baseline
        assert not (tmp_path / "ignored.db").exists()

    def test_explicit_store_object_is_honoured(self, tmp_path):
        spec = motivational_spec("fixed")
        store = ContentStore.in_memory()
        baseline = run_fingerprint(spec)
        assert run_fingerprint(spec, store=store) == baseline
        assert run_fingerprint(spec, store=store) == baseline  # warm
        assert store.counters()["activation"]["hits"] >= len(spec.jobs)
