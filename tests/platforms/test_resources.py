"""Tests for :mod:`repro.platforms.resources`."""

import pytest

from repro.exceptions import PlatformError
from repro.platforms.resources import ResourceVector


class TestConstruction:
    def test_counts_are_stored_as_tuple(self):
        vector = ResourceVector([2, 3])
        assert vector.counts == (2, 3)

    def test_values_are_coerced_to_int(self):
        vector = ResourceVector([2.0, 3.0])
        assert vector.counts == (2, 3)

    def test_negative_counts_are_rejected(self):
        with pytest.raises(PlatformError):
            ResourceVector([1, -1])

    def test_zeros_constructor(self):
        assert ResourceVector.zeros(3).counts == (0, 0, 0)

    def test_empty_vector_is_allowed(self):
        assert len(ResourceVector([])) == 0


class TestContainerProtocol:
    def test_len_iter_getitem(self):
        vector = ResourceVector([1, 4, 2])
        assert len(vector) == 3
        assert list(vector) == [1, 4, 2]
        assert vector[1] == 4

    def test_equality_with_vector_and_tuple(self):
        assert ResourceVector([1, 2]) == ResourceVector([1, 2])
        assert ResourceVector([1, 2]) == (1, 2)
        assert ResourceVector([1, 2]) != ResourceVector([2, 1])

    def test_hashable(self):
        assert len({ResourceVector([1, 2]), ResourceVector([1, 2])}) == 1


class TestArithmetic:
    def test_addition(self):
        assert (ResourceVector([1, 2]) + ResourceVector([3, 0])).counts == (4, 2)

    def test_subtraction(self):
        assert (ResourceVector([3, 3]) - ResourceVector([1, 2])).counts == (2, 1)

    def test_subtraction_below_zero_raises(self):
        with pytest.raises(PlatformError):
            ResourceVector([1, 0]) - ResourceVector([0, 1])

    def test_saturating_subtraction_clamps(self):
        result = ResourceVector([1, 0]).saturating_sub(ResourceVector([0, 5]))
        assert result.counts == (1, 0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(PlatformError):
            ResourceVector([1]) + ResourceVector([1, 2])

    def test_scaled(self):
        assert ResourceVector([1, 2]).scaled(3).counts == (3, 6)

    def test_scaled_negative_raises(self):
        with pytest.raises(PlatformError):
            ResourceVector([1]).scaled(-1)

    def test_sum_of_vectors(self):
        total = ResourceVector.sum([ResourceVector([1, 0]), ResourceVector([2, 2])], 2)
        assert total.counts == (3, 2)

    def test_sum_of_empty_sequence_is_zero(self):
        assert ResourceVector.sum([], 2).counts == (0, 0)


class TestComparisons:
    def test_fits_into(self):
        assert ResourceVector([2, 1]).fits_into(ResourceVector([4, 4]))
        assert not ResourceVector([5, 0]).fits_into(ResourceVector([4, 4]))

    def test_dominates(self):
        assert ResourceVector([2, 2]).dominates(ResourceVector([1, 2]))
        assert not ResourceVector([2, 0]).dominates(ResourceVector([1, 2]))

    def test_is_zero_and_total(self):
        assert ResourceVector([0, 0]).is_zero()
        assert not ResourceVector([0, 1]).is_zero()
        assert ResourceVector([2, 3]).total == 5
