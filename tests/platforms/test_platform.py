"""Tests for :class:`repro.platforms.platform.Platform` and the builders."""

import pytest

from repro.exceptions import PlatformError
from repro.platforms import (
    Platform,
    ProcessorType,
    PowerModel,
    big_little,
    generic_heterogeneous,
    homogeneous,
    odroid_xu4,
)
from repro.platforms.resources import ResourceVector


def _types():
    little = ProcessorType("little", 1.5e9, 1.0, PowerModel(0.05, 0.3))
    big = ProcessorType("big", 1.8e9, 2.0, PowerModel(0.2, 1.4))
    return little, big


class TestPlatform:
    def test_basic_properties(self):
        platform = Platform("test", _types(), [2, 4])
        assert platform.num_resource_types == 2
        assert platform.capacity.counts == (2, 4)
        assert platform.total_cores == 6
        assert platform.type_names == ("little", "big")

    def test_type_lookup(self):
        platform = Platform("test", _types(), [2, 4])
        assert platform.type_index("big") == 1
        assert platform.processor_type("little").frequency_hz == pytest.approx(1.5e9)
        with pytest.raises(PlatformError):
            platform.type_index("gpu")

    def test_resource_vector_from_demand_mapping(self):
        platform = Platform("test", _types(), [2, 4])
        assert platform.resource_vector({"big": 3}).counts == (0, 3)
        with pytest.raises(PlatformError):
            platform.resource_vector({"big": 5})

    def test_fits(self):
        platform = Platform("test", _types(), [2, 4])
        assert platform.fits(ResourceVector([2, 4]))
        assert not platform.fits(ResourceVector([3, 0]))

    def test_busy_power_sums_core_power(self):
        platform = Platform("test", _types(), [2, 4])
        power = platform.busy_power(ResourceVector([1, 1]))
        assert power == pytest.approx(0.35 + 1.6)

    def test_allocations_enumeration_excludes_empty(self):
        platform = Platform("test", _types(), [2, 2])
        allocations = list(platform.allocations())
        assert ResourceVector([0, 0]) not in allocations
        assert len(allocations) == 3 * 3 - 1

    def test_allocations_respect_limit(self):
        platform = Platform("test", _types(), [2, 2])
        allocations = list(platform.allocations(ResourceVector([1, 1])))
        assert all(a.fits_into(ResourceVector([1, 1])) for a in allocations)

    def test_validation_errors(self):
        little, big = _types()
        with pytest.raises(PlatformError):
            Platform("", [little], [1])
        with pytest.raises(PlatformError):
            Platform("x", [], [])
        with pytest.raises(PlatformError):
            Platform("x", [little, big], [1])
        with pytest.raises(PlatformError):
            Platform("x", [little, big], [1, 0])
        with pytest.raises(PlatformError):
            Platform("x", [little, little], [1, 1])


class TestBuilders:
    def test_odroid_matches_paper_setup(self):
        odroid = odroid_xu4()
        assert odroid.capacity.counts == (4, 4)
        assert odroid.type_names == ("A7", "A15")
        a7 = odroid.processor_type("A7")
        a15 = odroid.processor_type("A15")
        assert a7.frequency_hz == pytest.approx(1.5e9)
        assert a15.frequency_hz == pytest.approx(1.8e9)
        # Big cores are faster and hungrier than little cores.
        assert a15.performance_factor > a7.performance_factor
        assert a15.power.power(1.0) > a7.power.power(1.0)

    def test_big_little_builder(self):
        platform = big_little(2, 3)
        assert platform.capacity.counts == (2, 3)
        with pytest.raises(PlatformError):
            big_little(0, 2)

    def test_homogeneous_builder(self):
        platform = homogeneous(6)
        assert platform.num_resource_types == 1
        assert platform.capacity.counts == (6,)
        with pytest.raises(PlatformError):
            homogeneous(0)

    def test_generic_heterogeneous_builder(self):
        platform = generic_heterogeneous([2, 2, 4])
        assert platform.num_resource_types == 3
        # Default performance factors increase per cluster.
        factors = [t.performance_factor for t in platform.processor_types]
        assert factors == sorted(factors)
        with pytest.raises(PlatformError):
            generic_heterogeneous([])
        with pytest.raises(PlatformError):
            generic_heterogeneous([2], performance_factors=[1.0, 2.0])
        with pytest.raises(PlatformError):
            generic_heterogeneous([0])
