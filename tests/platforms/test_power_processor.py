"""Tests for the power model and processor types."""

import pytest

from repro.exceptions import PlatformError
from repro.platforms.power import PowerModel
from repro.platforms.processor import ProcessorType


class TestPowerModel:
    def test_power_at_full_utilisation(self):
        model = PowerModel(static_watts=0.1, dynamic_watts=0.5)
        assert model.power(1.0) == pytest.approx(0.6)

    def test_power_at_idle(self):
        model = PowerModel(static_watts=0.1, dynamic_watts=0.5)
        assert model.power(0.0) == pytest.approx(0.1)

    def test_partial_utilisation_scales_dynamic_part(self):
        model = PowerModel(static_watts=0.1, dynamic_watts=0.5)
        assert model.power(0.5) == pytest.approx(0.35)

    def test_energy_is_power_times_duration(self):
        model = PowerModel(static_watts=0.2, dynamic_watts=0.8)
        assert model.energy(duration=10.0) == pytest.approx(10.0)

    def test_negative_components_rejected(self):
        with pytest.raises(PlatformError):
            PowerModel(-0.1, 0.5)
        with pytest.raises(PlatformError):
            PowerModel(0.1, -0.5)

    def test_invalid_utilisation_rejected(self):
        model = PowerModel(0.1, 0.5)
        with pytest.raises(PlatformError):
            model.power(1.5)
        with pytest.raises(PlatformError):
            model.power(-1e-6)

    def test_float_noise_utilisation_clamped(self):
        # Accumulated float arithmetic produces values a few ULP outside
        # [0, 1]; those are clamped instead of raising.
        model = PowerModel(0.1, 0.5)
        assert model.power(1.0000000000000002) == pytest.approx(0.6)
        assert model.power(-1e-12) == pytest.approx(0.1)

    def test_negative_duration_rejected(self):
        with pytest.raises(PlatformError):
            PowerModel(0.1, 0.5).energy(-1.0)

    def test_frequency_scaling_increases_dynamic_power(self):
        model = PowerModel(0.1, 0.5)
        faster = model.scaled_frequency(2.0)
        assert faster.static_watts == pytest.approx(0.1)
        assert faster.dynamic_watts == pytest.approx(0.5 * 8.0)

    def test_frequency_scaling_rejects_non_positive_factor(self):
        with pytest.raises(PlatformError):
            PowerModel(0.1, 0.5).scaled_frequency(0.0)


class TestProcessorType:
    def _core(self, performance=2.0):
        return ProcessorType("big", 2.0e9, performance, PowerModel(0.2, 1.0))

    def test_cycles_to_seconds_uses_frequency_and_performance(self):
        core = self._core(performance=2.0)
        # 4e9 reference cycles at 2 GHz and performance factor 2 -> 1 second.
        assert core.cycles_to_seconds(4.0e9) == pytest.approx(1.0)

    def test_faster_core_is_faster(self):
        slow = ProcessorType("little", 1.5e9, 1.0, PowerModel(0.05, 0.3))
        fast = self._core()
        assert fast.cycles_to_seconds(1e9) < slow.cycles_to_seconds(1e9)

    def test_busy_and_idle_energy(self):
        core = self._core()
        assert core.busy_energy(2.0) == pytest.approx(2.4)
        assert core.idle_energy(2.0) == pytest.approx(0.4)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PlatformError):
            ProcessorType("", 1e9, 1.0, PowerModel(0.1, 0.1))
        with pytest.raises(PlatformError):
            ProcessorType("x", -1e9, 1.0, PowerModel(0.1, 0.1))
        with pytest.raises(PlatformError):
            ProcessorType("x", 1e9, 0.0, PowerModel(0.1, 0.1))

    def test_negative_cycles_rejected(self):
        with pytest.raises(PlatformError):
            self._core().cycles_to_seconds(-1.0)
