"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.stats import BoxplotStats, geometric_mean, s_curve
from repro.core.config import ConfigTable, OperatingPoint, pareto_filter_points
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.dse.pareto import pareto_front
from repro.knapsack import MMKPItem, MMKPProblem, solve_exact, solve_greedy, solve_lagrangian
from repro.platforms.resources import ResourceVector
from repro.schedulers import MMKPMDFScheduler
from repro.schedulers.edf_packer import pack_jobs_edf

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
counts = st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=4)


def vector_pairs():
    """Two resource vectors of the same dimension."""
    return st.integers(min_value=1, max_value=4).flatmap(
        lambda dim: st.tuples(
            st.lists(st.integers(0, 6), min_size=dim, max_size=dim),
            st.lists(st.integers(0, 6), min_size=dim, max_size=dim),
        )
    )


@st.composite
def operating_points(draw, dimension=2, max_points=6):
    """A non-empty list of operating points of fixed dimension."""
    num = draw(st.integers(min_value=1, max_value=max_points))
    points = []
    for _ in range(num):
        resources = draw(
            st.lists(st.integers(0, 3), min_size=dimension, max_size=dimension).filter(
                lambda c: any(c)
            )
        )
        time = draw(st.floats(min_value=0.5, max_value=20.0, allow_nan=False))
        energy = draw(st.floats(min_value=0.1, max_value=30.0, allow_nan=False))
        points.append(OperatingPoint(ResourceVector(resources), time, energy))
    return points


@st.composite
def scheduling_problems(draw):
    """Small random scheduling problems on a 2-type platform."""
    capacity = ResourceVector(
        [draw(st.integers(1, 4)), draw(st.integers(1, 4))]
    )
    points = [
        point
        for point in draw(operating_points(dimension=2, max_points=5))
        if point.resources.fits_into(capacity)
    ]
    if not points:
        points = [OperatingPoint(ResourceVector([1, 0]), 5.0, 1.0)]
    table = ConfigTable("app", points)
    num_jobs = draw(st.integers(1, 3))
    jobs = []
    for index in range(num_jobs):
        remaining = draw(st.floats(min_value=0.1, max_value=1.0))
        slack = draw(st.floats(min_value=0.5, max_value=4.0))
        deadline = table.fastest().execution_time * remaining * slack
        jobs.append(
            Job(f"job{index}", "app", arrival=0.0, deadline=deadline, remaining_ratio=remaining)
        )
    return SchedulingProblem(capacity, {"app": table}, jobs, now=0.0)


# --------------------------------------------------------------------- #
# ResourceVector properties
# --------------------------------------------------------------------- #
class TestResourceVectorProperties:
    @given(vector_pairs())
    def test_addition_is_commutative(self, pair):
        a, b = ResourceVector(pair[0]), ResourceVector(pair[1])
        assert a + b == b + a

    @given(vector_pairs())
    def test_addition_then_subtraction_is_identity(self, pair):
        a, b = ResourceVector(pair[0]), ResourceVector(pair[1])
        assert (a + b) - b == a

    @given(vector_pairs())
    def test_fits_into_is_consistent_with_dominates(self, pair):
        a, b = ResourceVector(pair[0]), ResourceVector(pair[1])
        assert a.fits_into(b) == b.dominates(a)

    @given(counts)
    def test_sum_with_zero_is_identity(self, values):
        vector = ResourceVector(values)
        assert vector + ResourceVector.zeros(len(vector)) == vector


# --------------------------------------------------------------------- #
# Pareto filtering properties
# --------------------------------------------------------------------- #
class TestParetoProperties:
    @given(operating_points())
    def test_filtered_points_are_mutually_non_dominated(self, points):
        survivors = pareto_filter_points(points)
        assert survivors, "at least one point always survives"
        for a in survivors:
            for b in survivors:
                if a is not b:
                    assert not a.dominates(b)

    @given(operating_points())
    def test_every_dropped_point_is_dominated_or_duplicate(self, points):
        survivors = pareto_filter_points(points)
        for point in points:
            if point in survivors:
                continue
            dominated = any(other.dominates(point) for other in points)
            duplicate = any(
                other.resources == point.resources
                and other.execution_time == point.execution_time
                and other.energy == point.energy
                for other in survivors
            )
            assert dominated or duplicate

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=12))
    def test_front_never_grows(self, points):
        front = pareto_front(points, objectives=lambda p: p)
        assert len(front) <= len(points)
        assert all(p in points for p in front)

    @given(operating_points())
    def test_filter_is_idempotent(self, points):
        once = pareto_filter_points(points)
        twice = pareto_filter_points(once)
        assert once == twice


# --------------------------------------------------------------------- #
# Statistics properties
# --------------------------------------------------------------------- #
class TestStatisticsProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=30))
    def test_geometric_mean_is_bounded_by_extremes(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=30))
    def test_geometric_mean_scales_linearly(self, values):
        scaled = [2.0 * v for v in values]
        assert geometric_mean(scaled) == _approx(2.0 * geometric_mean(values))

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=30))
    def test_boxplot_ordering(self, values):
        stats = BoxplotStats.from_samples(values)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        # The mean is computed in floating point, so allow round-off slack.
        assert stats.minimum - 1e-9 <= stats.mean <= stats.maximum + 1e-9
        assert stats.count == len(values)

    @given(st.lists(st.floats(min_value=-10, max_value=10), max_size=20))
    def test_s_curve_is_sorted_permutation(self, values):
        curve = s_curve(values)
        assert curve == sorted(curve)
        assert len(curve) == len(values)


def _approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9)


# --------------------------------------------------------------------- #
# Knapsack properties
# --------------------------------------------------------------------- #
@st.composite
def mmkp_instances(draw):
    dims = draw(st.integers(1, 2))
    groups = []
    for _ in range(draw(st.integers(1, 3))):
        items = []
        for _ in range(draw(st.integers(1, 3))):
            items.append(
                MMKPItem(
                    value=draw(st.floats(min_value=0.0, max_value=10.0)),
                    weights=tuple(
                        draw(st.floats(min_value=0.0, max_value=3.0)) for _ in range(dims)
                    ),
                )
            )
        groups.append(items)
    capacities = [draw(st.floats(min_value=1.0, max_value=6.0)) for _ in range(dims)]
    return MMKPProblem(capacities, groups)


class TestKnapsackProperties:
    @given(mmkp_instances())
    @settings(max_examples=40, deadline=None)
    def test_heuristics_never_beat_the_exact_solver(self, problem):
        exact = solve_exact(problem)
        greedy = solve_greedy(problem)
        lagrangian = solve_lagrangian(problem, max_iterations=30)
        if greedy.feasible:
            assert exact.feasible
            assert greedy.value <= exact.value + 1e-6
        if lagrangian.solution.feasible:
            assert exact.feasible
            assert lagrangian.solution.value <= exact.value + 1e-6
            assert lagrangian.dual_bound >= exact.value - 1e-6

    @given(mmkp_instances())
    @settings(max_examples=40, deadline=None)
    def test_solutions_respect_capacities(self, problem):
        for solution in (solve_exact(problem), solve_greedy(problem)):
            if solution.feasible:
                assert problem.is_feasible(solution.selection)


# --------------------------------------------------------------------- #
# Scheduler properties
# --------------------------------------------------------------------- #
class TestSchedulerProperties:
    @given(scheduling_problems())
    @settings(max_examples=40, deadline=None)
    def test_edf_packing_of_arbitrary_assignments_is_valid_or_rejected(self, problem):
        table = problem.table_for("app")
        # Assign every job its most efficient configuration.
        cheapest = min(table.indices(), key=lambda i: table[i].energy)
        assignment = {job.name: cheapest for job in problem.jobs}
        schedule = pack_jobs_edf(problem, assignment)
        if schedule is None:
            return
        report = problem.validate(schedule)
        assert report.feasible, report.violations

    @given(scheduling_problems())
    @settings(max_examples=40, deadline=None)
    def test_mdf_schedules_are_always_valid(self, problem):
        result = MMKPMDFScheduler().schedule(problem)
        if not result.feasible:
            return
        report = problem.validate(result.schedule)
        assert report.feasible, report.violations
        assert math.isfinite(result.energy)
        assert result.energy >= 0.0
