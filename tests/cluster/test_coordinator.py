"""ShardCoordinator: unit splitting, stealing, retry and deterministic merge."""

import threading

import pytest

from repro.cluster import MODES, ShardCoordinator, WorkUnit, split_units
from repro.exceptions import WorkloadError
from repro.service import BatchSpec, SimulationResult, SimulationService


def sweep(name="batch", arrival_rates=(0.2, 0.5), traces_per_point=2):
    return BatchSpec.sweep(
        arrival_rates=list(arrival_rates),
        traces_per_point=traces_per_point,
        num_requests=5,
        base_seed=3,
        name=name,
    )


class TestSplitUnits:
    def test_covers_all_jobs_contiguously(self):
        jobs = sweep(traces_per_point=5).jobs  # 10 jobs
        units = split_units(jobs, workers=2)
        assert [unit.start for unit in units] == [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
        assert sum(len(unit) for unit in units) == len(jobs)

    def test_unit_size_override(self):
        jobs = sweep(traces_per_point=5).jobs
        units = split_units(jobs, workers=2, unit_size=4)
        assert [len(unit) for unit in units] == [4, 4, 2]
        assert units[1].start == 4
        assert units[2].jobs == tuple(jobs[8:])

    def test_default_targets_four_units_per_worker(self):
        jobs = sweep(traces_per_point=8).jobs  # 16 jobs
        assert len(split_units(jobs, workers=2)) == 8

    def test_more_workers_than_jobs(self):
        jobs = sweep(traces_per_point=1).jobs  # 2 jobs
        units = split_units(jobs, workers=8)
        assert [len(unit) for unit in units] == [1, 1]

    def test_invalid_unit_size(self):
        with pytest.raises(WorkloadError):
            split_units(sweep().jobs, workers=2, unit_size=0)


class TestCoordinatorValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(WorkloadError):
            ShardCoordinator(0)

    def test_rejects_bad_mode(self):
        with pytest.raises(WorkloadError):
            ShardCoordinator(2, mode="rocket")
        assert MODES == ("thread", "process")

    def test_rejects_negative_retries(self):
        with pytest.raises(WorkloadError):
            ShardCoordinator(2, max_retries=-1)


class TestThreadMode:
    def test_empty_batch(self):
        assert ShardCoordinator(2, mode="thread").run([]) == []

    def test_results_in_job_order(self):
        spec = sweep(traces_per_point=4)
        coordinator = ShardCoordinator(3, mode="thread", unit_size=2)
        results = coordinator.run_batch(spec)
        assert [r.job_name for r in results] == [j.name for j in spec.jobs]
        assert all(r.ok for r in results)
        stats = coordinator.stats
        assert stats.units == 4
        assert sum(stats.per_worker_units) == 4
        assert stats.failed_units == 0

    def test_fingerprint_independent_of_workers_and_unit_size(self):
        spec = sweep(traces_per_point=3)
        baseline = ShardCoordinator(1, mode="thread").run_batch(spec).fingerprint()
        for workers, unit_size in [(2, 1), (3, 2), (4, None)]:
            rerun = (
                ShardCoordinator(workers, mode="thread", unit_size=unit_size)
                .run_batch(spec)
                .fingerprint()
            )
            assert rerun == baseline

    def test_stealing_rebalances_skewed_queues(self):
        spec = sweep(traces_per_point=6)  # 12 jobs -> 12 units of one job
        release = threading.Event()
        done = []
        lock = threading.Lock()

        class SlowFirstUnit(ShardCoordinator):
            # Unit 0 stalls until every other unit has finished, so the
            # worker holding it cannot touch the rest of its own deque and
            # the other worker *must* steal to drain the batch.
            def _execute_unit(self, unit):
                if unit.index == 0:
                    release.wait(timeout=30)
                result = super()._execute_unit(unit)
                with lock:
                    done.append(unit.index)
                    if len(done) == 11 and 0 not in done:
                        release.set()
                return result

        coordinator = SlowFirstUnit(2, mode="thread", unit_size=1)
        results = coordinator.run_batch(spec)
        assert all(r.ok for r in results)
        assert coordinator.stats.steals > 0

    def test_progress_callback_sees_every_job(self):
        spec = sweep(traces_per_point=3)
        seen = {}
        coordinator = ShardCoordinator(2, mode="thread", unit_size=2)
        coordinator.run_batch(spec, progress=lambda i, r: seen.setdefault(i, r))
        assert sorted(seen) == list(range(len(spec.jobs)))
        assert all(isinstance(r, SimulationResult) for r in seen.values())


class TestFailureIsolation:
    def test_failed_unit_retries_then_errors_only_its_jobs(self):
        spec = sweep(traces_per_point=3)  # 6 jobs

        class FailsUnitOne(ShardCoordinator):
            def _execute_unit(self, unit):
                if unit.index == 1:
                    raise RuntimeError("worker shot in the head")
                return super()._execute_unit(unit)

        coordinator = FailsUnitOne(2, mode="thread", unit_size=2, max_retries=2)
        results = coordinator.run_batch(spec)
        assert coordinator.stats.retries == 2
        assert coordinator.stats.failed_units == 1
        failed = [r for r in results if not r.ok]
        assert [r.job_name for r in failed] == [j.name for j in spec.jobs[2:4]]
        assert all("worker shot in the head" in r.error for r in failed)
        assert all(r.ok for r in results[:2]) and all(r.ok for r in results[4:])

    def test_transient_failure_recovers_within_retry_budget(self):
        spec = sweep(traces_per_point=2)
        attempts = {}
        lock = threading.Lock()

        class FlakyOnce(ShardCoordinator):
            def _execute_unit(self, unit):
                with lock:
                    attempts[unit.index] = attempts.get(unit.index, 0) + 1
                    first = attempts[unit.index] == 1
                if first:
                    raise OSError("transient")
                return super()._execute_unit(unit)

        coordinator = FlakyOnce(2, mode="thread", unit_size=2, max_retries=1)
        results = coordinator.run_batch(spec)
        assert all(r.ok for r in results)
        assert coordinator.stats.failed_units == 0
        assert coordinator.stats.retries == len(attempts)


class TestProcessMode:
    def test_process_mode_matches_thread_mode(self, tmp_path):
        from repro.kernel.caches import KernelCaches
        from repro.service.cache import ActivationCache
        from repro.store import ContentStore

        spec = sweep(traces_per_point=2)
        # Process workers always carry activation/kernel caches, so the
        # thread-mode baseline must run the same cache configuration (the
        # seed's cached and uncached paths are *each* deterministic but pick
        # different canonical results).
        baseline = (
            ShardCoordinator(
                1, mode="thread", cache=ActivationCache(), kernel_caches=KernelCaches()
            )
            .run_batch(spec)
            .fingerprint()
        )
        store = ContentStore.open(tmp_path / "store.db")
        coordinator = ShardCoordinator(2, mode="process", store=store)
        assert coordinator.run_batch(spec).fingerprint() == baseline
        # Worker processes wrote through to the shared sqlite store.
        assert store.stats()["namespaces"]
        store.close()


class TestServiceClusterExecutor:
    def test_cluster_executor_reports_stats(self):
        spec = sweep(traces_per_point=2)
        service = SimulationService(workers=2, executor="cluster")
        baseline = SimulationService().run_batch(spec).fingerprint()
        assert service.run_batch(spec).fingerprint() == baseline
        assert service.cluster_stats is not None
        assert service.cluster_stats.units > 0

    def test_work_unit_len(self):
        unit = WorkUnit(index=0, start=3, jobs=tuple(sweep().jobs[:2]))
        assert len(unit) == 2
