"""Tests for Pareto filtering and the design-space explorer."""

import pytest

from repro.dataflow import audio_filter, pedestrian_recognition
from repro.dse import DesignSpaceExplorer, pareto_front, paper_operating_points, reduced_tables
from repro.exceptions import MappingError
from repro.platforms import big_little, odroid_xu4
from repro.platforms.resources import ResourceVector


class TestParetoFront:
    def test_drops_dominated_points(self):
        points = [(1, 5), (2, 2), (3, 3), (2, 6)]
        assert pareto_front(points, objectives=lambda p: p) == [(1, 5), (2, 2)]

    def test_keeps_everything_when_nothing_dominates(self):
        points = [(1, 3), (2, 2), (3, 1)]
        assert pareto_front(points, objectives=lambda p: p) == points

    def test_collapses_exact_duplicates(self):
        points = [(1, 1), (1, 1)]
        assert pareto_front(points, objectives=lambda p: p) == [(1, 1)]

    def test_works_with_custom_objectives(self):
        items = [{"cost": 4, "time": 1}, {"cost": 1, "time": 9}, {"cost": 5, "time": 5}]
        front = pareto_front(items, objectives=lambda d: (d["cost"], d["time"]))
        assert {f["cost"] for f in front} == {4, 1}

    def test_mixed_objective_lengths_rejected(self):
        with pytest.raises(ValueError):
            pareto_front([(1,), (1, 2)], objectives=lambda p: p)

    def test_empty_input(self):
        assert pareto_front([], objectives=lambda p: p) == []


class TestDesignSpaceExplorer:
    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer(odroid_xu4())

    def test_evaluate_single_allocation(self, explorer):
        result = explorer.evaluate_allocation(
            audio_filter().graph, ResourceVector([2, 1])
        )
        assert result.operating_point.execution_time == pytest.approx(
            result.simulation.execution_time
        )
        assert result.operating_point.resources.fits_into(ResourceVector([2, 1]))

    def test_explore_all_skips_oversized_allocations(self):
        explorer = DesignSpaceExplorer(odroid_xu4())
        graph = pedestrian_recognition().graph  # 6 processes
        results = explorer.explore_all(graph)
        assert all(r.allocation.total <= graph.num_processes for r in results)

    def test_explore_returns_pareto_optimal_table(self, explorer):
        table = explorer.explore(audio_filter().graph)
        assert len(table) > 4
        assert table.is_pareto_optimal()
        # The table must contain little-only and big-containing points.
        assert any(p.resources[1] == 0 for p in table)
        assert any(p.resources[1] > 0 for p in table)

    def test_allocation_limit_is_validated(self):
        with pytest.raises(MappingError):
            DesignSpaceExplorer(big_little(2, 2), max_cores_per_type=[4, 4])

    def test_allocation_limit_restricts_the_search(self):
        limited = DesignSpaceExplorer(odroid_xu4(), max_cores_per_type=[1, 1])
        table = limited.explore(audio_filter().graph)
        assert all(p.resources.fits_into(ResourceVector([1, 1])) for p in table)


class TestPaperTables:
    def test_tables_cover_all_applications_and_sizes(self, paper_tables):
        applications = {name.split("/")[0] for name in paper_tables}
        assert applications == {
            "speaker_recognition",
            "audio_filter",
            "pedestrian_recognition",
        }
        sizes = {name.split("/")[1] for name in paper_tables}
        assert sizes == {"small", "medium", "large"}

    def test_tables_have_realistic_sizes(self, paper_tables):
        # The paper reports 28-36 Pareto points per application (summed over
        # input sizes); our synthetic DSE should land in the same order of
        # magnitude: at least a handful of points per variant.
        for name, table in paper_tables.items():
            assert 4 <= len(table) <= 40, name

    def test_size_filter(self):
        tables = paper_operating_points(input_sizes=("medium",))
        assert all(name.endswith("/medium") for name in tables)

    def test_reduced_tables_keep_extremes(self, paper_tables):
        reduced = reduced_tables(paper_tables, max_points=5)
        for name, table in reduced.items():
            full = paper_tables[name]
            assert len(table) <= 5
            reduced_fastest = min(p.execution_time for p in table)
            reduced_cheapest = min(p.energy for p in table)
            assert reduced_fastest == pytest.approx(
                min(p.execution_time for p in full)
            )
            assert reduced_cheapest == pytest.approx(min(p.energy for p in full))

    def test_reduced_tables_validation(self, paper_tables):
        with pytest.raises(ValueError):
            reduced_tables(paper_tables, max_points=0)
