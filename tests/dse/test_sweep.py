"""Determinism and equivalence tests for the DSE sweep engine.

The contract under test: a sweep's frontier fingerprint and every point
summary are a pure function of the spec — independent of the executor, the
worker count, the store temperature and the solver backend — and bit-equal
to what the serial explorer produces.
"""

import json

import pytest

from repro.api import DSESpec, ExperimentSpec, Session, WorkloadSpec
from repro.dse import paper_operating_points
from repro.dse.sweep import (
    EXECUTORS,
    SweepScenario,
    SweepSpec,
    frontier_fingerprint,
    plan_sweep,
    run_sweep,
)
from repro.exceptions import WorkloadError
from repro.io import sweep_result_from_dict, sweep_result_to_dict
from repro.knapsack import HAVE_NUMPY, solver_numpy_override
from repro.platforms import odroid_xu4
from repro.schedulers import MMKPLRScheduler

#: A small but non-trivial sweep: two scenarios with different seeds on one
#: platform, small variants only, MMKP-LR points (the batching scheduler).
SPEC = SweepSpec(
    platforms=("odroid-xu4",),
    input_sizes=("small",),
    schedulers=("mmkp-lr",),
    scenarios=(
        SweepScenario("a", fraction=0.005, seed=2020),
        SweepScenario("b", fraction=0.005, seed=2021),
    ),
)


@pytest.fixture(scope="module")
def reference():
    return run_sweep(SPEC, executor="serial")


class TestPlan:
    def test_points_redemand_deduped_explorations(self):
        plan = plan_sweep(SPEC)
        variants = plan.stats["variants"]
        assert plan.stats["points"] == 2
        assert plan.stats["explorations_demanded"] == 2 * variants
        assert plan.stats["explorations_unique"] == variants
        assert plan.stats["explorations_deduped"] == variants

    def test_identical_platforms_share_tasks(self):
        twin = SweepSpec(
            platforms=("odroid-xu4", "odroid-xu4"),
            input_sizes=("small",),
            scenarios=(),
        )
        plan = plan_sweep(twin)
        assert plan.stats["platforms"] == 2
        assert plan.stats["explorations_unique"] == plan.stats["variants"]

    def test_unknown_sizes_are_rejected(self):
        with pytest.raises(WorkloadError):
            plan_sweep(SweepSpec(input_sizes=("colossal",)))


class TestDeterminismMatrix:
    def test_fingerprint_matches_the_serial_explorer(self, reference):
        tables = paper_operating_points(odroid_xu4(), input_sizes=("small",))
        assert reference.frontier_fingerprint == frontier_fingerprint(
            {"odroid-xu4": tables}
        )

    @pytest.mark.parametrize(
        "executor", [name for name in EXECUTORS if name != "serial"]
    )
    def test_every_executor_matches_serial(self, reference, executor):
        result = run_sweep(SPEC, executor=executor, workers=2)
        assert result.frontier_fingerprint == reference.frontier_fingerprint
        assert result.points == reference.points

    def test_solver_backend_does_not_change_answers(self, reference):
        with solver_numpy_override(False):
            pure = run_sweep(SPEC, executor="serial")
        assert pure.frontier_fingerprint == reference.frontier_fingerprint
        assert pure.points == reference.points
        if HAVE_NUMPY:
            with solver_numpy_override(True):
                dense = run_sweep(SPEC, executor="serial")
            assert dense.frontier_fingerprint == reference.frontier_fingerprint
            assert dense.points == reference.points

    def test_cold_then_warm_store_is_invisible_in_the_answers(
        self, reference, tmp_path
    ):
        path = str(tmp_path / "sweep-store.db")
        cold = run_sweep(SPEC, executor="serial", store=path)
        warm = run_sweep(SPEC, executor="serial", store=path)
        assert cold.stats["store_hits"] == 0
        assert warm.stats["store_hits"] == warm.stats["explorations_unique"]
        assert warm.stats["solver"]["solved"] == 0  # solves served by store
        for result in (cold, warm):
            assert result.frontier_fingerprint == reference.frontier_fingerprint
            assert result.points == reference.points

    def test_warm_store_warms_other_executors(self, reference, tmp_path):
        path = str(tmp_path / "shared-store.db")
        run_sweep(SPEC, executor="serial", store=path)
        clustered = run_sweep(SPEC, executor="cluster", workers=2, store=path)
        assert clustered.stats["store_hits"] == clustered.stats[
            "explorations_unique"
        ]
        assert clustered.frontier_fingerprint == reference.frontier_fingerprint
        assert clustered.points == reference.points


class TestCrossPointBatching:
    def test_sweep_shares_relaxations_across_points(self, reference):
        solver = reference.stats["solver"]
        assert solver["problems"] == sum(p["cases"] for p in reference.points)
        assert solver["cross_group_deduped"] > 0

    def test_schedule_many_validates_group_labels(self):
        with pytest.raises(ValueError):
            MMKPLRScheduler().schedule_many([], groups=["one-label-too-many"])


class TestSweepResultSerialization:
    def test_json_round_trip_is_exact(self, reference):
        wire = json.loads(json.dumps(sweep_result_to_dict(reference)))
        restored = sweep_result_from_dict(wire)
        assert restored.frontier_fingerprint == reference.frontier_fingerprint
        assert restored.points == reference.points
        assert restored.spec == reference.spec

    def test_tampered_archive_is_rejected(self, reference):
        wire = json.loads(json.dumps(sweep_result_to_dict(reference)))
        wire["frontier_fingerprint"] = "0" * 64
        from repro.exceptions import SerializationError

        with pytest.raises(SerializationError):
            sweep_result_from_dict(wire)

    def test_merge_unions_points_and_keeps_the_frontier(self, reference):
        halves = [
            run_sweep(
                SweepSpec(
                    platforms=SPEC.platforms,
                    input_sizes=SPEC.input_sizes,
                    schedulers=SPEC.schedulers,
                    scenarios=(scenario,),
                ),
                executor="serial",
            )
            for scenario in SPEC.scenarios
        ]
        merged = halves[0].merge(halves[1])
        assert merged.frontier_fingerprint == reference.frontier_fingerprint
        assert {p["point"] for p in merged.points} == {
            p["point"] for p in reference.points
        }


class TestSessionIntegration:
    def test_session_explore_executor_matches_the_serial_path(self):
        spec = ExperimentSpec(
            name="sweep-session",
            workload=WorkloadSpec.scenario("S1"),
            dse=DSESpec(input_sizes=("small",)),
            tables=None,
        )
        serial = Session.from_spec(spec).explore()
        swept = Session.from_spec(spec).explore(executor="serial")
        assert frontier_fingerprint({"p": swept}) == frontier_fingerprint(
            {"p": serial}
        )

    def test_session_explore_rejects_unknown_executor(self):
        spec = ExperimentSpec(
            name="sweep-session-bad",
            workload=WorkloadSpec.scenario("S1"),
            dse=DSESpec(input_sizes=("small",)),
            tables=None,
        )
        with pytest.raises(WorkloadError):
            Session.from_spec(spec).explore(executor="quantum")


class TestCoordinatorHooks:
    def test_failure_hook_replaces_default_simulation_error(self):
        from repro.cluster.coordinator import ShardCoordinator

        def boom(job):
            raise RuntimeError("shard exploded")

        coordinator = ShardCoordinator(
            1,
            mode="thread",
            max_retries=1,
            thread_runner=boom,
            failure=lambda job, error: ("failed", job, error),
        )
        results = coordinator.run(["j1", "j2"])
        assert [r[0] for r in results] == ["failed", "failed"]
        assert [r[1] for r in results] == ["j1", "j2"]
        assert all("shard exploded" in r[2] for r in results)
