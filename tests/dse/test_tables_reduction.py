"""Additional tests for table reduction and DSE determinism."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint
from repro.dse import DesignSpaceExplorer, reduced_tables
from repro.dataflow import audio_filter
from repro.platforms import odroid_xu4
from repro.platforms.resources import ResourceVector


def synthetic_table(num_points: int = 12) -> ConfigTable:
    """A synthetic Pareto-like front: time decreases, energy increases."""
    points = [
        OperatingPoint(
            ResourceVector([1 + i % 4, i % 3]),
            execution_time=20.0 - i,
            energy=1.0 + 0.5 * i,
        )
        for i in range(num_points)
    ]
    return ConfigTable("synthetic", points)


class TestReducedTables:
    def test_small_tables_pass_through_unchanged(self):
        table = synthetic_table(3)
        result = reduced_tables({"synthetic": table}, max_points=8)
        assert result["synthetic"] is table

    def test_cap_is_respected(self):
        table = synthetic_table(12)
        for cap in (1, 2, 3, 5, 8):
            reduced = reduced_tables({"synthetic": table}, max_points=cap)["synthetic"]
            assert len(reduced) <= cap + 1  # the cheapest point may be re-added
            assert len(reduced) >= min(cap, len(table))

    def test_reduction_keeps_fastest_and_cheapest(self):
        table = synthetic_table(12)
        reduced = reduced_tables({"synthetic": table}, max_points=4)["synthetic"]
        assert min(p.execution_time for p in reduced) == pytest.approx(
            min(p.execution_time for p in table)
        )
        assert min(p.energy for p in reduced) == pytest.approx(
            min(p.energy for p in table)
        )

    def test_selected_points_come_from_the_original_table(self):
        table = synthetic_table(12)
        reduced = reduced_tables({"synthetic": table}, max_points=5)["synthetic"]
        assert all(point in table.points for point in reduced)

    def test_cap_of_one_keeps_the_most_efficient_point(self):
        table = synthetic_table(6)
        reduced = reduced_tables({"synthetic": table}, max_points=1)["synthetic"]
        assert len(reduced) == 1
        assert reduced[0].energy == pytest.approx(min(p.energy for p in table))


class TestExplorerDeterminism:
    def test_exploring_twice_gives_identical_tables(self):
        graph = audio_filter().graph
        first = DesignSpaceExplorer(odroid_xu4()).explore(graph)
        second = DesignSpaceExplorer(odroid_xu4()).explore(graph)
        assert first == second

    def test_larger_inputs_shift_the_front_up(self):
        model = audio_filter()
        explorer = DesignSpaceExplorer(odroid_xu4())
        small = explorer.explore(model.variant("small"))
        large = explorer.explore(model.variant("large"))
        assert min(p.execution_time for p in large) > min(
            p.execution_time for p in small
        )
        assert min(p.energy for p in large) > min(p.energy for p in small)
