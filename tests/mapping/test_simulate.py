"""Tests for the trace-driven mapping simulator."""

import pytest

from repro.dataflow import TraceGenerator, audio_filter, speaker_recognition
from repro.exceptions import MappingError
from repro.mapping import MappingSimulator, allocation_cores, balance_processes
from repro.platforms import odroid_xu4


@pytest.fixture(scope="module")
def platform():
    return odroid_xu4()


def mapping_for(platform, allocation, graph=None):
    graph = graph or audio_filter().graph
    return balance_processes(graph, platform, allocation_cores(platform, allocation))


class TestSimulationBasics:
    def test_returns_positive_time_and_energy(self, platform):
        result = MappingSimulator().simulate(mapping_for(platform, [0, 2]))
        assert result.execution_time > 0
        assert result.energy > 0
        assert result.average_power > 0

    def test_simulation_is_deterministic(self, platform):
        simulator = MappingSimulator(TraceGenerator(seed=5))
        first = simulator.simulate(mapping_for(platform, [2, 1]))
        second = simulator.simulate(mapping_for(platform, [2, 1]))
        assert first.execution_time == pytest.approx(second.execution_time)
        assert first.energy == pytest.approx(second.energy)

    def test_missing_traces_detected(self, platform):
        mapping = mapping_for(platform, [1, 1])
        traces = TraceGenerator(seed=1).generate(speaker_recognition().graph)
        with pytest.raises(MappingError):
            MappingSimulator().simulate(mapping, traces=traces)

    def test_parameter_validation(self):
        with pytest.raises(MappingError):
            MappingSimulator(bandwidth_bytes_per_s=0.0)
        with pytest.raises(MappingError):
            MappingSimulator(energy_per_byte=-1.0)


class TestBigLittleTradeOffs:
    """The simulator must reproduce the qualitative shapes of Table II."""

    def test_more_cores_are_faster(self, platform):
        simulator = MappingSimulator(TraceGenerator(seed=3))
        one_little = simulator.simulate(mapping_for(platform, [1, 0]))
        four_little = simulator.simulate(mapping_for(platform, [4, 0]))
        assert four_little.execution_time < one_little.execution_time

    def test_big_cores_are_faster_but_less_efficient_than_little(self, platform):
        simulator = MappingSimulator(TraceGenerator(seed=3))
        little = simulator.simulate(mapping_for(platform, [2, 0]))
        big = simulator.simulate(mapping_for(platform, [0, 2]))
        assert big.execution_time < little.execution_time
        assert big.energy > little.energy

    def test_speedup_is_concave(self, platform):
        # Adding the fourth core helps less than adding the second one.
        simulator = MappingSimulator(TraceGenerator(seed=3))
        times = [
            simulator.simulate(mapping_for(platform, [n, 0])).execution_time
            for n in (1, 2, 4)
        ]
        speedup_2 = times[0] / times[1]
        speedup_4 = times[0] / times[2]
        assert speedup_2 > 1.0
        assert speedup_4 < 2 * speedup_2

    def test_communication_is_charged_for_split_mappings(self, platform):
        simulator = MappingSimulator(TraceGenerator(seed=3))
        single = simulator.simulate(mapping_for(platform, [1, 0]))
        split = simulator.simulate(mapping_for(platform, [4, 4]))
        assert single.communication_bytes == pytest.approx(0.0)
        assert split.communication_bytes > 0

    def test_core_busy_times_are_bounded_by_execution_time(self, platform):
        result = MappingSimulator(TraceGenerator(seed=3)).simulate(
            mapping_for(platform, [2, 2])
        )
        assert all(busy <= result.execution_time + 1e-9 for busy in result.core_busy_time.values())
