"""Tests for core allocation, process mappings and the LPT balancer."""

import pytest

from repro.dataflow import audio_filter, pedestrian_recognition
from repro.exceptions import MappingError
from repro.mapping import Core, ProcessMapping, allocation_cores, balance_processes
from repro.mapping.mapping import cores_of_platform
from repro.platforms import odroid_xu4
from repro.platforms.resources import ResourceVector


@pytest.fixture(scope="module")
def platform():
    return odroid_xu4()


@pytest.fixture(scope="module")
def graph():
    return audio_filter().graph


class TestCore:
    def test_name_and_validation(self, platform):
        core = Core(platform.processor_type("A15"), 2)
        assert core.name == "A15.2"
        with pytest.raises(MappingError):
            Core(platform.processor_type("A15"), -1)


class TestAllocationCores:
    def test_materialises_the_requested_cores(self, platform):
        cores = allocation_cores(platform, [2, 1])
        assert [c.name for c in cores] == ["A7.0", "A7.1", "A15.0"]

    def test_accepts_resource_vectors(self, platform):
        cores = allocation_cores(platform, ResourceVector([0, 2]))
        assert [c.name for c in cores] == ["A15.0", "A15.1"]

    def test_validation(self, platform):
        with pytest.raises(MappingError):
            allocation_cores(platform, [5, 0])
        with pytest.raises(MappingError):
            allocation_cores(platform, [1])

    def test_cores_of_platform_lists_every_core(self, platform):
        cores = cores_of_platform(platform)
        assert len(cores) == platform.total_cores
        assert len({c.name for c in cores}) == platform.total_cores


class TestBalanceProcesses:
    def test_every_process_is_assigned(self, platform, graph):
        cores = allocation_cores(platform, [2, 2])
        mapping = balance_processes(graph, platform, cores)
        assert set(mapping.assignment) == set(graph.process_names)
        assert mapping.demand.fits_into(ResourceVector([2, 2]))

    def test_single_core_mapping_uses_one_core(self, platform, graph):
        cores = allocation_cores(platform, [1, 0])
        mapping = balance_processes(graph, platform, cores)
        assert mapping.demand.counts == (1, 0)
        assert mapping.used_cores()[0].name == "A7.0"

    def test_heaviest_process_lands_on_a_fast_core(self, platform):
        graph = pedestrian_recognition().graph
        cores = allocation_cores(platform, [1, 1])
        mapping = balance_processes(graph, platform, cores)
        heaviest = max(graph.processes, key=lambda p: p.cycles)
        assert mapping.core_of(heaviest.name).processor_type.name == "A15"

    def test_balancing_spreads_load(self, platform, graph):
        cores = allocation_cores(platform, [0, 4])
        mapping = balance_processes(graph, platform, cores)
        per_core = [len(mapping.processes_on(core)) for core in mapping.used_cores()]
        assert max(per_core) - min(per_core) <= 2

    def test_empty_core_set_rejected(self, platform, graph):
        with pytest.raises(MappingError):
            balance_processes(graph, platform, [])


class TestProcessMapping:
    def test_validation(self, platform, graph):
        cores = allocation_cores(platform, [1, 1])
        good = balance_processes(graph, platform, cores)
        assignment = good.assignment

        with pytest.raises(MappingError):
            ProcessMapping(graph, platform, {})  # nothing assigned
        with pytest.raises(MappingError):
            bogus = dict(assignment)
            bogus["ghost"] = cores[0]
            ProcessMapping(graph, platform, bogus)
        with pytest.raises(MappingError):
            bogus = dict(assignment)
            bogus[graph.process_names[0]] = Core(platform.processor_type("A15"), 9)
            ProcessMapping(graph, platform, bogus)
        with pytest.raises(MappingError):
            good.core_of("ghost")

    def test_queries(self, platform, graph):
        cores = allocation_cores(platform, [1, 1])
        mapping = balance_processes(graph, platform, cores)
        used = mapping.used_cores()
        assert 1 <= len(used) <= 2
        total = sum(len(mapping.processes_on(core)) for core in used)
        assert total == graph.num_processes
