"""Tests for the Section VI.A test-case generator and the evaluation suite."""

import pytest

from repro.exceptions import WorkloadError
from repro.workload import EvaluationSuite, TestCaseGenerator, table_iii_census
from repro.workload.motivational import motivational_tables
from repro.workload.suite import TABLE_III, TOTAL_TEST_CASES, scaled_census
from repro.workload.testgen import (
    DeadlineLevel,
    INITIAL_STATE_SHARE,
    SINGLE_APPLICATION_SHARE,
    TIGHT_FACTOR_RANGE,
    WEAK_FACTOR_RANGE,
)


@pytest.fixture(scope="module")
def generator():
    return TestCaseGenerator(motivational_tables(), seed=42)


class TestDeadlineLevel:
    def test_factor_ranges_match_the_paper(self):
        assert DeadlineLevel.WEAK.factor_range == WEAK_FACTOR_RANGE == (2.0, 6.0)
        assert DeadlineLevel.TIGHT.factor_range == TIGHT_FACTOR_RANGE == (0.6, 2.0)


class TestTestCaseGenerator:
    def test_case_structure(self, generator):
        case = generator.generate_case(3, DeadlineLevel.WEAK)
        assert case.num_jobs == 3
        assert len(set(job.name for job in case.jobs)) == 3
        assert all(job.arrival == 0.0 for job in case.jobs)
        assert all(job.deadline > 0.0 for job in case.jobs)
        assert case.deadline_level is DeadlineLevel.WEAK

    def test_newly_arrived_job_is_in_initial_state(self, generator):
        for _ in range(20):
            case = generator.generate_case(3, DeadlineLevel.TIGHT)
            assert case.jobs[-1].remaining_ratio == pytest.approx(1.0)

    def test_progress_stays_within_the_paper_range(self, generator):
        for _ in range(50):
            case = generator.generate_case(4, DeadlineLevel.TIGHT)
            for job in case.jobs:
                assert 0.1 - 1e-9 <= job.remaining_ratio <= 1.0 + 1e-9

    def test_determinism_per_seed(self):
        tables = motivational_tables()
        first = TestCaseGenerator(tables, seed=5).generate_case(2, DeadlineLevel.WEAK)
        second = TestCaseGenerator(tables, seed=5).generate_case(2, DeadlineLevel.WEAK)
        assert [j.deadline for j in first.jobs] == [j.deadline for j in second.jobs]
        assert first.applications == second.applications

    def test_weak_deadlines_are_looser_than_tight_ones(self):
        tables = motivational_tables()
        weak_gen = TestCaseGenerator(tables, seed=1)
        tight_gen = TestCaseGenerator(tables, seed=1)
        weak = [
            weak_gen.generate_case(1, DeadlineLevel.WEAK).jobs[0].deadline
            for _ in range(100)
        ]
        tight = [
            tight_gen.generate_case(1, DeadlineLevel.TIGHT).jobs[0].deadline
            for _ in range(100)
        ]
        assert sum(weak) / len(weak) > sum(tight) / len(tight)

    def test_statistical_shares_roughly_match_the_paper(self):
        tables = motivational_tables()
        generator = TestCaseGenerator(tables, seed=123)
        cases = generator.generate_batch(600, 2, DeadlineLevel.WEAK)
        single = sum(1 for c in cases if c.single_application) / len(cases)
        initial = sum(
            1 for c in cases if all(not j.is_started() for j in c.jobs)
        ) / len(cases)
        assert single == pytest.approx(SINGLE_APPLICATION_SHARE, abs=0.12)
        # All-initial cases also arise by chance beyond the dedicated share.
        assert initial >= INITIAL_STATE_SHARE - 0.1

    def test_invalid_parameters(self, generator):
        with pytest.raises(WorkloadError):
            generator.generate_case(0, DeadlineLevel.WEAK)
        with pytest.raises(WorkloadError):
            TestCaseGenerator({}, seed=1)

    def test_generate_from_census(self, generator):
        census = {(DeadlineLevel.WEAK, 1): 3, (DeadlineLevel.TIGHT, 2): 2}
        cases = generator.generate_from_census(census)
        assert len(cases) == 5
        assert sum(1 for c in cases if c.num_jobs == 1) == 3


class TestTableIIICensus:
    def test_counts_match_the_paper(self):
        census = table_iii_census()
        assert census[(DeadlineLevel.WEAK, 2)] == 255
        assert census[(DeadlineLevel.TIGHT, 4)] == 206
        assert sum(census.values()) == TOTAL_TEST_CASES == 1676

    def test_scaled_census_keeps_all_buckets(self):
        scaled = scaled_census(0.01)
        assert set(scaled) == set(TABLE_III)
        assert all(count >= 1 for count in scaled.values())
        with pytest.raises(WorkloadError):
            scaled_census(0.0)


class TestEvaluationSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return EvaluationSuite.generate(
            motivational_tables(), scaled_census(0.02), seed=9
        )

    def test_census_reflects_the_requested_counts(self, suite):
        requested = scaled_census(0.02)
        assert suite.census() == requested
        assert len(suite) == sum(requested.values())

    def test_full_census_is_the_default(self):
        # Generating the complete 1676-case suite is cheap (no scheduling).
        suite = EvaluationSuite.generate(motivational_tables(), seed=1)
        assert len(suite) == TOTAL_TEST_CASES

    def test_filtering(self, suite):
        tight_three = suite.filtered(DeadlineLevel.TIGHT, 3)
        assert all(
            c.deadline_level is DeadlineLevel.TIGHT and c.num_jobs == 3
            for c in tight_three
        )
        assert len(suite.filtered(num_jobs=2)) == len(
            suite.filtered(DeadlineLevel.WEAK, 2)
        ) + len(suite.filtered(DeadlineLevel.TIGHT, 2))

    def test_problems_are_constructible(self, suite):
        from repro.platforms import big_little

        platform = big_little(2, 2)
        pairs = list(suite.problems(platform, motivational_tables(), num_jobs=1))
        assert pairs
        for case, problem in pairs:
            assert len(problem.jobs) == case.num_jobs

    def test_shares_are_reported(self, suite):
        assert 0.0 <= suite.single_application_share() <= 1.0
        assert 0.0 <= suite.initial_state_share() <= 1.0

    def test_empty_suite_rejected(self):
        with pytest.raises(WorkloadError):
            EvaluationSuite([])
