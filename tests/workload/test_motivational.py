"""Tests for the motivational example data (Tables I/II, Fig. 1)."""

import pytest

from repro.exceptions import WorkloadError
from repro.schedulers import (
    ExMemScheduler,
    FixedMinEnergyScheduler,
    MMKPMDFScheduler,
)
from repro.runtime import RequestEvent, RequestTrace, RuntimeManager
from repro.workload.motivational import (
    FIGURE1_ENERGIES,
    LAMBDA1_TABLE,
    LAMBDA2_TABLE,
    SIGMA1_PROGRESS_AT_T1,
    initial_problem,
    motivational_platform,
    motivational_problem,
    motivational_tables,
    scenario_s1,
    scenario_s2,
)


class TestTables:
    def test_table_ii_row_counts(self):
        assert len(LAMBDA1_TABLE) == 8
        assert len(LAMBDA2_TABLE) == 8
        tables = motivational_tables()
        assert len(tables["lambda1"]) == 8
        assert len(tables["lambda2"]) == 8

    def test_underlined_value_of_the_paper(self):
        # The energy-optimal deadline-meeting point of lambda1 is 2L1B @ 8.9 J.
        tables = motivational_tables()
        assert tables["lambda1"][6].energy == pytest.approx(8.9)
        assert tables["lambda1"][6].resources.counts == (2, 1)

    def test_platform_is_2l2b(self):
        assert motivational_platform().capacity.counts == (2, 2)


class TestScenarios:
    def test_scenario_jobs(self):
        s1 = scenario_s1()
        assert [job.name for job in s1] == ["sigma1", "sigma2"]
        assert s1[0].remaining_ratio == pytest.approx(1.0 - SIGMA1_PROGRESS_AT_T1)
        assert s1[1].deadline == 5.0
        s2 = scenario_s2()
        assert s2[1].deadline == 4.0

    def test_problem_construction(self):
        problem = motivational_problem("S2")
        assert problem.now == 1.0
        assert problem.capacity.counts == (2, 2)
        with pytest.raises(WorkloadError):
            motivational_problem("S3")

    def test_initial_problem_has_one_job(self):
        problem = initial_problem("S1")
        assert len(problem.jobs) == 1
        assert problem.now == 0.0
        with pytest.raises(WorkloadError):
            initial_problem("S9")


class TestFigure1Reproduction:
    """End-to-end reproduction of the three schedules of Fig. 1."""

    def _trace(self, scenario: str) -> RequestTrace:
        from repro.workload.motivational import SCENARIOS

        requests = SCENARIOS[scenario]
        return RequestTrace(
            [
                RequestEvent(
                    requests["sigma1"][0],
                    "lambda1",
                    requests["sigma1"][1] - requests["sigma1"][0],
                    "sigma1",
                ),
                RequestEvent(
                    requests["sigma2"][0],
                    "lambda2",
                    requests["sigma2"][1] - requests["sigma2"][0],
                    "sigma2",
                ),
            ]
        )

    def _run(self, scheduler, remap_on_finish: bool, scenario: str = "S1"):
        manager = RuntimeManager.from_components(
            motivational_platform(),
            motivational_tables(),
            scheduler,
            remap_on_finish=remap_on_finish,
        )
        return manager.run(self._trace(scenario))

    def test_fig1a_fixed_mapper_remap_at_start(self):
        log = self._run(FixedMinEnergyScheduler(), remap_on_finish=False)
        assert log.acceptance_rate == 1.0
        assert log.total_energy == pytest.approx(
            FIGURE1_ENERGIES["fixed_remap_at_start"], abs=0.01
        )

    def test_fig1b_fixed_mapper_remap_at_start_and_finish(self):
        log = self._run(FixedMinEnergyScheduler(), remap_on_finish=True)
        assert log.total_energy == pytest.approx(
            FIGURE1_ENERGIES["fixed_remap_at_start_and_finish"], abs=0.01
        )

    def test_fig1c_adaptive_mapper(self):
        log = self._run(MMKPMDFScheduler(), remap_on_finish=False)
        assert log.total_energy == pytest.approx(
            FIGURE1_ENERGIES["adaptive"], abs=0.01
        )

    def test_energy_ordering_of_the_three_variants(self):
        fixed = self._run(FixedMinEnergyScheduler(), False).total_energy
        fixed_refine = self._run(FixedMinEnergyScheduler(), True).total_energy
        adaptive = self._run(MMKPMDFScheduler(), False).total_energy
        assert adaptive < fixed_refine < fixed

    def test_scenario_s2_fixed_mapper_rejects_but_adaptive_admits(self):
        fixed_log = self._run(FixedMinEnergyScheduler(), False, scenario="S2")
        adaptive_log = self._run(MMKPMDFScheduler(), False, scenario="S2")
        assert fixed_log.acceptance_rate == pytest.approx(0.5)
        assert adaptive_log.acceptance_rate == pytest.approx(1.0)
        assert not adaptive_log.deadline_misses

    def test_exmem_matches_the_adaptive_energy(self, mot_problem_s1):
        result = ExMemScheduler().schedule(mot_problem_s1)
        pre_arrival = motivational_tables()["lambda1"][6].energy * SIGMA1_PROGRESS_AT_T1
        assert result.energy + pre_arrival == pytest.approx(
            FIGURE1_ENERGIES["adaptive"], abs=0.01
        )
