"""Pipeline behaviour: stages, prune gating, kernel events, warm starts."""

import pytest

from repro.api import ExperimentSpec, RunEventKind, Session, WorkloadSpec
from repro.kernel import kernel_disabled, kernel_override
from repro.runtime.manager import RuntimeManager
from repro.schedulers import MMKPLRScheduler, MMKPMDFScheduler
from repro.workload.motivational import (
    motivational_platform,
    motivational_tables,
    motivational_trace,
)

from tests.kernel.test_kernel_equivalence import log_key


def _manager(scheduler=None, **kwargs):
    return RuntimeManager.from_components(
        motivational_platform(),
        motivational_tables(),
        scheduler if scheduler is not None else MMKPMDFScheduler(),
        **kwargs,
    )


class TestKernelEvent:
    def test_stream_carries_one_kernel_summary(self):
        spec = ExperimentSpec(name="k", workload=WorkloadSpec.scenario("S1"))
        with kernel_override(True):
            events = list(Session.from_spec(spec).stream())
        kinds = [event.kind for event in events]
        assert kinds.count(RunEventKind.KERNEL) == 1
        assert kinds[-2] is RunEventKind.KERNEL
        assert kinds[-1] is RunEventKind.END
        summary = events[-2].data
        for key in (
            "activations",
            "packs",
            "resumed_steps",
            "replayed_steps",
            "prunes_skipped",
            "prune_scans",
            "commits",
            "delta_share",
        ):
            assert key in summary
        assert summary["activations"] == 2
        assert summary["commits"] >= 2

    def test_seed_path_emits_no_kernel_event(self):
        spec = ExperimentSpec(name="k0", workload=WorkloadSpec.scenario("S1"))
        with kernel_disabled():
            events = list(Session.from_spec(spec).stream())
        assert RunEventKind.KERNEL not in [event.kind for event in events]


class TestDoublePruneBoundary:
    """Regression: a segment finishing exactly at a reschedule timestamp.

    The seed prunes twice at that instant — once in ``_collect_finished``
    against the committed schedule and once more inside ``_plan`` against
    the freshly solved one, where the scan is the identity by construction
    (every mapped job is active).  The kernel skips both redundant scans via
    the ledger gate and the ``fresh`` flag; behaviour at the exact boundary
    time must be bit-identical either way.
    """

    @staticmethod
    def _count_prune_scans(kernel_on: bool):
        manager = _manager(remap_on_finish=True)
        calls = []
        seed_prune = manager._without_finished

        def counting(schedule, active, now):
            calls.append(now)
            return seed_prune(schedule, active, now)

        manager._without_finished = counting
        with kernel_override(kernel_on):
            log = manager.run(motivational_trace("S2"))
        return calls, log

    def test_boundary_prune_runs_once_under_the_kernel(self):
        seed_calls, seed_log = self._count_prune_scans(False)
        kernel_calls, kernel_log = self._count_prune_scans(True)
        # S2 has finishes that trigger remap-on-finish reschedules exactly
        # at committed segment ends; the seed rescans per arrival plan and
        # per reschedule plan on top of the finish prunes.
        assert len(seed_calls) > len(kernel_calls)
        # The kernel only ever scans when the scan will change the schedule
        # (ghost segments present); the identity scans are gated out.
        finish_times = {o.completion_time for o in kernel_log.outcomes}
        assert all(any(abs(c - t) < 1e-9 for t in finish_times) for c in kernel_calls)
        # And the boundary-time behaviour is unchanged, bit for bit.
        assert log_key(kernel_log) == log_key(seed_log)

    def test_segment_ending_exactly_at_prune_time_is_kept_as_history(self):
        from repro.core.request import Job
        from repro.core.segment import JobMapping, MappingSegment, Schedule

        manager = _manager()
        ghost = Job(name="ghost", application="lambda1", arrival=0.0, deadline=99.0)
        live = Job(name="live", application="lambda1", arrival=0.0, deadline=99.0)
        active = {"live": live}
        boundary = MappingSegment(0.0, 2.0, [JobMapping(ghost, 0), JobMapping(live, 0)])
        future = MappingSegment(2.0, 3.0, [JobMapping(ghost, 0), JobMapping(live, 0)])
        schedule = Schedule([boundary, future])

        # Prune exactly at the segment boundary: the segment ending at the
        # reschedule timestamp is history (kept verbatim, ghost included);
        # only the strictly-future segment loses the ghost mapping.
        once = manager._without_finished(schedule, active, 2.0)
        assert once[0] is boundary
        assert [m.job_name for m in once[1]] == ["live"]
        assert once[1].start == 2.0 and once[1].end == 3.0

        # Applying the prune a second time at the same timestamp must be the
        # identity — double-pruning may not drop or rewrite anything.
        twice = manager._without_finished(once, active, 2.0)
        assert twice is once

        # Epsilon boundary: a ghost sliver ending within the time tolerance
        # of the prune timestamp counts as history and is kept; the same
        # sliver seen from a timestamp more than epsilon earlier is future
        # and is stripped.
        sliver = MappingSegment(2.0, 2.0 + 2e-9, [JobMapping(ghost, 0)])
        kept = manager._without_finished(Schedule([boundary, sliver]), active, 2.0 + 2e-9)
        assert kept[1] is sliver
        stripped = manager._without_finished(Schedule([boundary, sliver]), active, 2.0)
        assert list(stripped) == [boundary]


class TestWarmStarts:
    def test_service_batch_shares_lr_relaxations(self):
        from repro.service import SimulationJob, SimulationService, TraceSpec

        jobs = [
            SimulationJob(
                f"warm-{i}",
                scheduler="mmkp-lr",
                platform="motivational",
                tables="motivational",
                trace_spec=TraceSpec(arrival_rate=0.4, num_requests=6, seed=9),
            )
            for i in range(3)
        ]
        service = SimulationService(use_cache=False)
        with kernel_override(True):
            results = service.run_batch(jobs)
        assert results.failures == []
        info = service.kernel_caches.solve_cache.info()
        # Identical jobs pose identical relaxations: jobs 2 and 3 replay
        # job 1's solves from the shared warm-start cache.
        assert info["hits"] > 0

    def test_session_managers_share_one_cache_store(self):
        spec = ExperimentSpec(name="warm", workload=WorkloadSpec.scenario("S1"))
        session = Session.from_spec(spec)
        with kernel_override(True):
            first = session.run()
            second = session.run()
        assert log_key(first) == log_key(second)
        assert session.kernel_caches.info()["slice_sets"] == 1

    def test_lr_keeps_an_injected_cache(self):
        from repro.kernel import KernelCaches
        from repro.optable import SolveCache

        injected = SolveCache()
        scheduler = MMKPLRScheduler(solve_cache=injected)
        manager = _manager(scheduler)
        with kernel_override(True):
            manager.run(motivational_trace("S1"))
        assert scheduler.solve_cache is injected

        adopted = MMKPLRScheduler()
        own = adopted.solve_cache
        manager = _manager(adopted)
        with kernel_override(True):
            manager.run(motivational_trace("S1"))
        # The shared store was adopted for the run (it holds the run's
        # relaxations) and released afterwards, so a later REPRO_KERNEL=0
        # run on the same instance starts cold again.
        assert adopted.solve_cache is own
        assert len(manager._kernel_caches.solve_cache) > 0


class TestPruneGateStatistics:
    def test_no_ghosts_means_no_scans(self):
        events = []
        with kernel_override(True):
            _manager().run(motivational_trace("S1"), observer=events.append)
        summary = next(e for e in events if e.kind is RunEventKind.KERNEL).data
        assert summary["prune_scans"] == 0
