"""Units for the kernel's explicit state: ledger, schedule state, pack memo."""

from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.kernel import KernelCaches, LoadLedger, PackMemo, ScheduleState
from repro.optable.adapters import optables_for, segment_busy_counts
from repro.workload.motivational import motivational_problem, motivational_tables


def _schedule_and_tables():
    problem = motivational_problem("S1")
    from repro.schedulers import MMKPMDFScheduler

    schedule = MMKPMDFScheduler().schedule(problem).schedule
    return schedule, problem.tables


class TestLoadLedger:
    def test_rows_match_the_segment_rescan(self):
        schedule, tables = _schedule_and_tables()
        optables = optables_for(tables)
        dimension = 2
        ledger = LoadLedger(optables, dimension)
        for segment in schedule:
            assert ledger.busy_counts(segment) == segment_busy_counts(
                segment, tables, dimension
            )

    def test_rows_are_cached_per_segment_identity(self):
        schedule, tables = _schedule_and_tables()
        ledger = LoadLedger(optables_for(tables), 2)
        segment = schedule[0]
        assert ledger.busy_counts(segment) is ledger.busy_counts(segment)


class TestScheduleState:
    def test_completion_time_matches_schedule_scan(self):
        schedule, tables = _schedule_and_tables()
        state = ScheduleState()
        state.rebind(schedule)
        for name in schedule.job_names():
            assert state.completion_time(name) == schedule.completion_time(name)
        assert state.completion_time("nope") is None

    def test_needs_prune_mirrors_the_scan_boundary(self):
        job = Job(name="x", application="lambda1", arrival=0.0, deadline=100.0)
        other = Job(name="y", application="lambda1", arrival=0.0, deadline=100.0)
        schedule = Schedule(
            [
                MappingSegment(0.0, 2.0, [JobMapping(job, 0), JobMapping(other, 0)]),
                MappingSegment(2.0, 4.0, [JobMapping(job, 0)]),
            ]
        )
        state = ScheduleState()
        state.rebind(schedule)
        # x's last committed segment ends at 4.0: pruning at any earlier
        # timestamp would strip it, pruning at/after is a no-op — with the
        # same epsilon boundary the scan uses (end <= now + 1e-9 is history).
        assert state.needs_prune(["x"], 2.0)
        assert state.needs_prune(["x"], 4.0 - 1e-6)
        assert not state.needs_prune(["x"], 4.0)
        assert not state.needs_prune(["x"], 4.0 - 1e-10)  # within epsilon
        # y's last segment ends at 2.0.
        assert not state.needs_prune(["y"], 2.0)
        assert state.needs_prune(["y"], 1.0)
        assert not state.needs_prune(["gone"], 0.0)

    def test_dirty_set_tracks_and_clears(self):
        state = ScheduleState()
        state.dirty.update(["a", "b"])
        assert state.dirty == {"a", "b"}
        state.dirty.clear()
        assert not state.dirty


class TestPackMemo:
    def test_prefix_resume_counts(self):
        from repro.schedulers.edf_packer import pack_jobs_edf

        problem = motivational_problem("S1")
        memo = problem.view().pack_memo()
        # EDF order of S1 is (sigma2: deadline 4, sigma1: deadline 9), so a
        # pack extending a sigma2-only assignment shares the sigma2 prefix.
        first = pack_jobs_edf(problem, {"sigma2": 6})
        assert first is not None
        assert memo.packs == 1 and memo.resumed_steps == 0
        assert memo.replayed_steps == 1

        second = pack_jobs_edf(problem, {"sigma1": 6, "sigma2": 6})
        assert second is not None
        assert memo.packs == 2
        # sigma2's placement was resumed; only sigma1 was replayed.
        assert memo.resumed_steps == 1
        assert memo.replayed_steps == 2

    def test_resumed_pack_is_bit_identical_to_fresh(self):
        from repro.schedulers.edf_packer import pack_jobs_edf

        problem = motivational_problem("S2")
        assignments = [
            {"sigma1": 0},
            {"sigma1": 0, "sigma2": 3},
            {"sigma1": 1, "sigma2": 3},
            {"sigma1": 1, "sigma2": 3, "sigma3": 2},
        ]
        resumed = [pack_jobs_edf(problem, a) for a in assignments]
        for assignment, schedule in zip(assignments, resumed):
            fresh_problem = motivational_problem("S2")
            fresh = pack_jobs_edf(fresh_problem, assignment)
            assert (schedule is None) == (fresh is None)
            if schedule is not None:
                assert schedule == fresh
                for a, b in zip(schedule, fresh):
                    assert a.start == b.start and a.end == b.end
                    assert [
                        (m.job_name, m.config_index) for m in a.mappings
                    ] == [(m.job_name, m.config_index) for m in b.mappings]


class TestKernelCaches:
    def test_shared_slices_are_content_keyed(self):
        caches = KernelCaches()
        tables = motivational_tables()
        capacity = (2, 2)
        first = caches.shared_slices(capacity, tables)
        again = caches.shared_slices(capacity, dict(tables))
        assert first is again
        other_capacity = caches.shared_slices((4, 4), tables)
        assert other_capacity is not first

    def test_exmem_columns_roundtrip(self):
        caches = KernelCaches()
        assert caches.exmem_columns("fp", 4) is None
        caches.store_exmem_columns("fp", 4, ("pairs", "columns"))
        assert caches.exmem_columns("fp", 4) == ("pairs", "columns")
        assert caches.exmem_columns("fp", None) is None
        info = caches.info()
        assert info["exmem_tables"] == 1
