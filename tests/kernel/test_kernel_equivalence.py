"""Bit-identity of the incremental kernel against the seed full re-solves.

Acceptance contract of the ``repro.kernel`` refactor: schedules, batch
fingerprints and energy totals must be *identical* — not merely close —
between the delta-based admission pipeline (``REPRO_KERNEL=1``) and the seed
full-re-solve path (``REPRO_KERNEL=0``), on the motivational workload and
the (scaled) census, for all four schedulers (MMKP-MDF, MMKP-LR, EX-MEM and
the EDF-packer-backed fixed mapper).
"""

import pytest

from repro.dse import paper_operating_points, reduced_tables
from repro.energy import EnergyBudget
from repro.kernel import kernel_disabled, kernel_override
from repro.platforms import odroid_xu4
from repro.runtime.manager import RuntimeManager
from repro.runtime.trace import poisson_trace
from repro.schedulers import (
    ExMemScheduler,
    FixedMinEnergyScheduler,
    MMKPLRScheduler,
    MMKPMDFScheduler,
)
from repro.workload.motivational import (
    motivational_platform,
    motivational_problem,
    motivational_tables,
    motivational_trace,
)

#: scheduler factory → is it census-tractable (EX-MEM is exponential).
SCHEDULERS = [
    ("mmkp-mdf", MMKPMDFScheduler, True),
    ("mmkp-lr", MMKPLRScheduler, True),
    ("ex-mem", lambda: ExMemScheduler(max_configs_per_job=3), False),
    ("fixed", FixedMinEnergyScheduler, False),
]


def log_key(log):
    """Every deterministic field of an execution log, floats kept exact."""
    return (
        repr(log.total_energy),
        log.activations,
        log.budget_rejections,
        tuple(
            (o.name, o.accepted, repr(o.completion_time), repr(o.energy))
            for o in log.outcomes
        ),
        tuple(
            (repr(i.start), repr(i.end), repr(i.energy), i.job_configs)
            for i in log.timeline
        ),
        tuple(sorted((name, repr(value)) for name, value in log.job_energy.items())),
        tuple(
            (name, repr(entry["busy"]), repr(entry["idle"]))
            for name, entry in sorted(log.cluster_energy.items())
        ),
    )


@pytest.fixture(scope="module")
def census_setup():
    platform = odroid_xu4()
    tables = reduced_tables(paper_operating_points(platform), max_points=6)
    trace = poisson_trace(tables, arrival_rate=0.8, num_requests=30, seed=2020)
    return platform, tables, trace


class TestSchedulerActivationEquivalence:
    @pytest.mark.parametrize("name,factory,_", SCHEDULERS)
    @pytest.mark.parametrize("scenario", ["S1", "S2"])
    def test_motivational_activation(self, name, factory, _, scenario):
        with kernel_override(True):
            fast = factory().schedule(motivational_problem(scenario))
        with kernel_disabled():
            seed = factory().schedule(motivational_problem(scenario))
        assert (fast.schedule is None) == (seed.schedule is None)
        if fast.schedule is not None:
            assert fast.schedule == seed.schedule
            for a, b in zip(fast.schedule, seed.schedule):
                assert a.start == b.start and a.end == b.end
            assert fast.energy == seed.energy
        assert fast.assignment == seed.assignment
        assert dict(fast.statistics) == dict(seed.statistics)


class TestRuntimeManagerEquivalence:
    @pytest.mark.parametrize("name,factory,_", SCHEDULERS)
    @pytest.mark.parametrize("scenario", ["S1", "S2"])
    @pytest.mark.parametrize("engine", ["events", "linear"])
    def test_motivational_runs(self, name, factory, _, scenario, engine):
        def run():
            manager = RuntimeManager.from_components(
                motivational_platform(),
                motivational_tables(),
                factory(),
                engine=engine,
            )
            return manager.run(motivational_trace(scenario))

        with kernel_override(True):
            fast = log_key(run())
        with kernel_disabled():
            seed = log_key(run())
        assert fast == seed

    @pytest.mark.parametrize(
        "name,factory",
        [(n, f) for n, f, tractable in SCHEDULERS if tractable],
    )
    def test_census_runs(self, name, factory, census_setup):
        platform, tables, trace = census_setup

        def run():
            manager = RuntimeManager.from_components(platform, tables, factory())
            return manager.run(trace)

        with kernel_override(True):
            fast = log_key(run())
        with kernel_disabled():
            seed = log_key(run())
        assert fast == seed

    def test_census_run_exmem_sample(self, census_setup):
        platform, tables, _ = census_setup
        trace = poisson_trace(tables, arrival_rate=0.25, num_requests=8, seed=11)

        def run():
            manager = RuntimeManager.from_components(
                platform, tables, ExMemScheduler(max_configs_per_job=3)
            )
            return manager.run(trace)

        with kernel_override(True):
            fast = log_key(run())
        with kernel_disabled():
            seed = log_key(run())
        assert fast == seed

    @pytest.mark.parametrize("governor", ["schedule-aware", "ondemand", "powersave"])
    def test_governor_energy_totals(self, governor, census_setup):
        platform, tables, trace = census_setup
        from repro.api.registry import governors

        def run():
            manager = RuntimeManager.from_components(
                platform,
                tables,
                MMKPMDFScheduler(),
                governor=governors.build(governor),
            )
            return manager.run(trace)

        with kernel_override(True):
            fast = log_key(run())
        with kernel_disabled():
            seed = log_key(run())
        assert fast == seed

    @pytest.mark.parametrize(
        "budget",
        [
            EnergyBudget(power_cap_watts=6.0),
            EnergyBudget(energy_budget_joules=150.0),
            EnergyBudget(power_cap_watts=7.5, energy_budget_joules=400.0),
        ],
    )
    def test_budget_admission_equivalence(self, budget, census_setup):
        platform, tables, trace = census_setup

        def run():
            manager = RuntimeManager.from_components(
                platform, tables, MMKPMDFScheduler(), budget=budget
            )
            return manager.run(trace)

        with kernel_override(True):
            fast = run()
        with kernel_disabled():
            seed = run()
        assert fast.budget_rejections == seed.budget_rejections
        assert log_key(fast) == log_key(seed)

    @pytest.mark.parametrize("name,factory,_", SCHEDULERS)
    def test_remap_on_finish_equivalence(self, name, factory, _):
        def run():
            manager = RuntimeManager.from_components(
                motivational_platform(),
                motivational_tables(),
                factory(),
                remap_on_finish=True,
            )
            return manager.run(motivational_trace("S2"))

        with kernel_override(True):
            fast = log_key(run())
        with kernel_disabled():
            seed = log_key(run())
        assert fast == seed


class TestBatchFingerprintEquivalence:
    def test_service_batch_fingerprints_match(self):
        from repro.service import SimulationJob, SimulationService, TraceSpec

        jobs = [
            SimulationJob(
                f"job-{i}",
                scheduler=scheduler,
                trace_spec=TraceSpec(arrival_rate=0.3, num_requests=8, seed=50 + i),
                governor="schedule-aware" if i == 1 else None,
                power_cap_watts=8.0 if i == 2 else None,
            )
            for i, scheduler in enumerate(["mmkp-mdf", "mmkp-lr", "mmkp-mdf"])
        ]

        def fingerprint():
            return SimulationService().run_batch(jobs).fingerprint()

        with kernel_override(True):
            fast = fingerprint()
        with kernel_disabled():
            seed = fingerprint()
        assert fast == seed

    def test_worker_count_is_immaterial_under_the_kernel(self):
        from repro.service import BatchSpec, SimulationService

        spec = BatchSpec.sweep(
            arrival_rates=[0.2, 0.4], traces_per_point=2, num_requests=6
        )
        with kernel_override(True):
            serial = SimulationService(workers=1).run_batch(spec).fingerprint()
            threaded = (
                SimulationService(workers=4, executor="thread")
                .run_batch(spec)
                .fingerprint()
            )
        assert serial == threaded
