"""Gate pinning for the kernel suite.

The incremental engine sits on top of the columnar OpTable stack, so these
tests pin both runtime gates ON for their duration: the suite must exercise
(and equivalence-test) the kernel even when the ambient environment runs
with ``REPRO_KERNEL=0`` or ``REPRO_OPTABLE=0``.  Tests that compare against
the seed path flip the kernel off locally via ``kernel_disabled()``; the
nested overrides restore the pinned state on exit.
"""

import pytest

from repro.kernel.runtime import kernel_override
from repro.optable.runtime import columnar_override


@pytest.fixture(autouse=True)
def _kernel_stack_on():
    with columnar_override(True):
        with kernel_override(True):
            yield
