"""Tests for request traces and execution logs."""

import pytest

from repro.exceptions import WorkloadError
from repro.runtime import RequestEvent, RequestTrace, poisson_trace
from repro.runtime.log import ExecutedInterval, ExecutionLog, RequestOutcome
from repro.workload.motivational import motivational_tables


class TestRequestEvent:
    def test_absolute_deadline(self):
        event = RequestEvent(2.0, "app", 5.0, "r0")
        assert event.absolute_deadline == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RequestEvent(-1.0, "app", 5.0, "r0")
        with pytest.raises(WorkloadError):
            RequestEvent(0.0, "app", 0.0, "r0")
        with pytest.raises(WorkloadError):
            RequestEvent(0.0, "app", 5.0, "")


class TestRequestTrace:
    def test_events_are_sorted_by_time(self):
        trace = RequestTrace(
            [RequestEvent(5.0, "a", 1.0, "late"), RequestEvent(1.0, "a", 1.0, "early")]
        )
        assert [e.name for e in trace] == ["early", "late"]
        assert trace.end_time == 5.0
        assert trace.applications() == {"a"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(WorkloadError):
            RequestTrace(
                [RequestEvent(0.0, "a", 1.0, "x"), RequestEvent(1.0, "a", 1.0, "x")]
            )

    def test_indexing(self):
        trace = RequestTrace([RequestEvent(0.0, "a", 1.0, "x")])
        assert trace[0].name == "x"
        assert len(trace) == 1


class TestPoissonTrace:
    def test_generates_the_requested_number_of_events(self):
        trace = poisson_trace(motivational_tables(), arrival_rate=0.5, num_requests=20, seed=1)
        assert len(trace) == 20
        assert trace.applications() <= {"lambda1", "lambda2"}
        # Arrival times must be strictly increasing on average.
        times = [e.time for e in trace]
        assert times == sorted(times)

    def test_deadlines_follow_the_factor_range(self):
        tables = motivational_tables()
        trace = poisson_trace(tables, 1.0, 50, deadline_factor_range=(2.0, 3.0), seed=2)
        slowest = max(
            point.execution_time for table in tables.values() for point in table
        )
        for event in trace:
            assert event.relative_deadline <= 3.0 * slowest + 1e-9

    def test_determinism(self):
        first = poisson_trace(motivational_tables(), 1.0, 10, seed=7)
        second = poisson_trace(motivational_tables(), 1.0, 10, seed=7)
        assert [e.time for e in first] == [e.time for e in second]

    def test_validation(self):
        tables = motivational_tables()
        with pytest.raises(WorkloadError):
            poisson_trace(tables, 0.0, 5)
        with pytest.raises(WorkloadError):
            poisson_trace(tables, 1.0, 0)
        with pytest.raises(WorkloadError):
            poisson_trace(tables, 1.0, 5, deadline_factor_range=(0.0, 1.0))


class TestExecutionLog:
    def _log(self):
        log = ExecutionLog()
        log.outcomes = [
            RequestOutcome("a", "app", 0.0, 10.0, accepted=True, completion_time=8.0),
            RequestOutcome("b", "app", 1.0, 12.0, accepted=True, completion_time=13.0),
            RequestOutcome("c", "app", 2.0, 9.0, accepted=False),
        ]
        log.timeline = [
            ExecutedInterval(0.0, 4.0, (("a", 0),), energy=2.0),
            ExecutedInterval(4.0, 8.0, (("a", 0), ("b", 1)), energy=6.0),
        ]
        log.total_energy = 8.0
        return log

    def test_acceptance_and_misses(self):
        log = self._log()
        assert log.acceptance_rate == pytest.approx(2 / 3)
        assert [o.name for o in log.rejected] == ["c"]
        assert [o.name for o in log.deadline_misses] == ["b"]
        assert log.completion_of("a") == 8.0
        assert log.completion_of("c") is None
        assert log.completion_of("ghost") is None

    def test_timeline_queries(self):
        log = self._log()
        assert log.makespan == pytest.approx(8.0)
        # Half of the first interval plus half of the second interval.
        assert log.energy_between(2.0, 6.0) == pytest.approx(1.0 + 3.0)

    def test_empty_log_defaults(self):
        log = ExecutionLog()
        assert log.acceptance_rate == 1.0
        assert log.makespan == 0.0
        assert log.energy_between(0.0, 10.0) == 0.0
