"""Tests for the online runtime manager."""

import threading

import pytest

from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.exceptions import AdmissionError, SchedulingError
from repro.runtime import RequestEvent, RequestTrace, RuntimeManager, poisson_trace
from repro.schedulers import FixedMinEnergyScheduler, MMKPMDFScheduler
from repro.schedulers.base import Scheduler, SchedulingResult
from repro.workload.motivational import motivational_platform, motivational_tables


def assert_logs_equivalent(first, second):
    """Two logs describe the same simulation (modulo wall-clock timings)."""
    deterministic = lambda o: (  # noqa: E731
        o.name, o.application, o.arrival, o.deadline, o.accepted, o.completion_time
    )
    assert [deterministic(o) for o in first.outcomes] == [
        deterministic(o) for o in second.outcomes
    ]
    assert first.timeline == second.timeline
    assert first.total_energy == second.total_energy
    assert first.activations == second.activations


@pytest.fixture()
def manager():
    return RuntimeManager.from_components(
        motivational_platform(), motivational_tables(), MMKPMDFScheduler()
    )


def two_request_trace(second_deadline: float = 4.0) -> RequestTrace:
    return RequestTrace(
        [
            RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
            RequestEvent(1.0, "lambda2", second_deadline, "sigma2"),
        ]
    )


class TestAdmission:
    def test_both_requests_admitted_and_completed(self, manager):
        log = manager.run(two_request_trace())
        assert log.acceptance_rate == 1.0
        assert not log.deadline_misses
        assert log.completion_of("sigma1") is not None
        assert log.completion_of("sigma2") is not None
        assert log.activations == 2

    def test_infeasible_request_is_rejected_without_harming_admitted_jobs(self, manager):
        # A deadline of 1 s cannot be met by any lambda2 configuration.
        log = manager.run(two_request_trace(second_deadline=1.0))
        outcomes = {o.name: o for o in log.outcomes}
        assert outcomes["sigma1"].accepted
        assert not outcomes["sigma2"].accepted
        # The previously admitted job still completes before its deadline.
        assert outcomes["sigma1"].met_deadline

    def test_unknown_application_raises(self, manager):
        trace = RequestTrace([RequestEvent(0.0, "ghost", 5.0, "r0")])
        with pytest.raises(AdmissionError):
            manager.run(trace)


class TestAccounting:
    def test_energy_matches_the_committed_schedules(self, manager):
        log = manager.run(two_request_trace())
        # Fig. 1(c): the adaptive mapper consumes 14.63 J in total.
        assert log.total_energy == pytest.approx(14.63, abs=0.01)
        assert log.makespan == pytest.approx(8.3, abs=1e-6)

    def test_timeline_is_ordered_and_gap_free(self, manager):
        log = manager.run(two_request_trace())
        intervals = log.timeline
        assert all(a.end <= b.start + 1e-9 for a, b in zip(intervals, intervals[1:]))
        assert log.total_energy == pytest.approx(
            sum(interval.energy for interval in intervals)
        )

    def test_completion_times_respect_deadlines(self, manager):
        log = manager.run(two_request_trace())
        for outcome in log.accepted:
            assert outcome.met_deadline

    def test_remap_on_finish_reduces_fixed_mapper_energy(self):
        fixed = RuntimeManager.from_components(
            motivational_platform(), motivational_tables(), FixedMinEnergyScheduler()
        )
        refined = RuntimeManager.from_components(
            motivational_platform(),
            motivational_tables(),
            FixedMinEnergyScheduler(),
            remap_on_finish=True,
        )
        trace = RequestTrace(
            [
                RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
                RequestEvent(1.0, "lambda2", 4.0, "sigma2"),
            ]
        )
        assert refined.run(trace).total_energy < fixed.run(trace).total_energy
        assert refined.run(trace).activations > fixed.run(trace).activations


class TestRejectionPath:
    def overloaded_trace(self, count=6):
        """Many simultaneous tight requests — the platform cannot serve all."""
        return RequestTrace(
            [
                RequestEvent(0.1 * index, "lambda2", 4.0, f"req{index}")
                for index in range(count)
            ]
        )

    def test_overload_rejects_but_admitted_jobs_meet_deadlines(self, manager):
        log = manager.run(self.overloaded_trace())
        assert log.rejected, "expected at least one rejection under overload"
        assert log.accepted, "expected at least one admission"
        for outcome in log.accepted:
            assert outcome.completion_time is not None
            assert outcome.met_deadline
        for outcome in log.rejected:
            assert outcome.completion_time is None

    def test_rejection_leaves_prior_schedule_in_force(self):
        """An infeasible arrival must not perturb the committed schedule."""
        tables = motivational_tables()
        base = RequestTrace([RequestEvent(0.0, "lambda1", 9.0, "sigma1")])
        with_rejection = RequestTrace(
            [
                RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
                # 1 s is below every lambda2 execution time: always rejected.
                RequestEvent(1.0, "lambda2", 1.0, "sigma2"),
            ]
        )
        manager = RuntimeManager.from_components(
            motivational_platform(), tables, MMKPMDFScheduler()
        )
        alone = manager.run(base)
        disturbed = manager.run(with_rejection)
        assert not disturbed.completion_of("sigma2")
        assert disturbed.completion_of("sigma1") == alone.completion_of("sigma1")
        assert disturbed.total_energy == pytest.approx(alone.total_energy)

    def test_rejection_path_with_remap_on_finish(self):
        """remap_on_finish must coexist with rejections (Fig. 1(b) mapper)."""
        manager = RuntimeManager.from_components(
            motivational_platform(),
            motivational_tables(),
            FixedMinEnergyScheduler(),
            remap_on_finish=True,
        )
        log = manager.run(self.overloaded_trace())
        assert log.rejected
        for outcome in log.accepted:
            assert outcome.met_deadline
        # Finish-triggered activations happened on top of the per-arrival ones.
        assert log.activations > len(log.outcomes) - len(log.rejected)


class _OvercoveringScheduler(Scheduler):
    """Returns a schedule with a ghost segment after the job completes.

    The single lambda2 job finishes exactly at t=10 (configuration 0 takes
    10 s), yet the schedule keeps mapping it during [10, 12).  The runtime
    manager must prune that ghost segment instead of logging an empty
    executed interval for it.
    """

    name = "overcovering-stub"

    def _solve(self, problem):
        job = problem.jobs[0]
        segments = [
            MappingSegment(0.0, 10.0, [JobMapping(job, 0)]),
            MappingSegment(10.0, 12.0, [JobMapping(job, 0)]),
        ]
        schedule = Schedule(segments)
        return SchedulingResult(schedule=schedule, assignment={job.name: 0})


class TestGhostEntryPruning:
    @pytest.mark.parametrize("engine", ["events", "linear"])
    def test_ghost_segments_never_reach_the_timeline(self, engine):
        manager = RuntimeManager.from_components(
            motivational_platform(),
            motivational_tables(),
            _OvercoveringScheduler(),
            engine=engine,
        )
        trace = RequestTrace([RequestEvent(0.0, "lambda2", 100.0, "sigma1")])
        log = manager.run(trace)
        assert log.completion_of("sigma1") == pytest.approx(10.0)
        # Exactly one executed interval, and no empty ghost entries.
        assert len(log.timeline) == 1
        assert all(interval.job_configs for interval in log.timeline)
        assert log.makespan == pytest.approx(10.0)


class TestEngineEquivalence:
    """The event engine must reproduce the seed (linear) execution exactly."""

    def test_motivational_workload(self):
        for scheduler_factory, remap in [
            (MMKPMDFScheduler, False),
            (FixedMinEnergyScheduler, False),
            (FixedMinEnergyScheduler, True),
        ]:
            for second_deadline in (4.0, 1.0):
                trace = two_request_trace(second_deadline)
                linear = RuntimeManager.from_components(
                    motivational_platform(),
                    motivational_tables(),
                    scheduler_factory(),
                    remap_on_finish=remap,
                    engine="linear",
                ).run(trace)
                events = RuntimeManager.from_components(
                    motivational_platform(),
                    motivational_tables(),
                    scheduler_factory(),
                    remap_on_finish=remap,
                    engine="events",
                ).run(trace)
                assert_logs_equivalent(events, linear)

    def test_random_traces(self):
        tables = motivational_tables()
        for seed in range(4):
            trace = poisson_trace(tables, 0.3, 12, seed=seed)
            manager = RuntimeManager.from_components(
                motivational_platform(), tables, MMKPMDFScheduler()
            )
            assert_logs_equivalent(
                manager.run(trace, engine="events"),
                manager.run(trace, engine="linear"),
            )

    def test_unknown_engine_rejected(self, manager):
        with pytest.raises(SchedulingError):
            manager.run(two_request_trace(), engine="spiral")
        with pytest.raises(SchedulingError):
            RuntimeManager.from_components(
                motivational_platform(),
                motivational_tables(),
                MMKPMDFScheduler(),
                engine="spiral",
            )


class TestReentrancy:
    def test_shared_manager_across_threads(self):
        """Run state lives in a per-run context, so one instance is shareable."""
        tables = motivational_tables()
        manager = RuntimeManager.from_components(
            motivational_platform(), tables, MMKPMDFScheduler()
        )
        trace = poisson_trace(tables, 0.25, 10, seed=7)
        reference = manager.run(trace)
        logs = [None] * 4
        errors = []

        def worker(slot):
            try:
                logs[slot] = manager.run(trace)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for log in logs:
            assert_logs_equivalent(log, reference)


class TestRandomOnlineWorkload:
    def test_long_trace_executes_without_violations(self):
        tables = motivational_tables()
        manager = RuntimeManager.from_components(motivational_platform(), tables, MMKPMDFScheduler())
        trace = poisson_trace(
            tables, arrival_rate=0.1, num_requests=15, deadline_factor_range=(2.0, 4.0), seed=5
        )
        log = manager.run(trace)
        assert len(log.outcomes) == 15
        # Every admitted request must have completed and met its deadline:
        # the manager only admits requests with a feasible schedule.
        for outcome in log.accepted:
            assert outcome.completion_time is not None
            assert outcome.met_deadline
        assert log.total_energy > 0
