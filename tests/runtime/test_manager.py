"""Tests for the online runtime manager."""

import pytest

from repro.exceptions import AdmissionError
from repro.runtime import RequestEvent, RequestTrace, RuntimeManager, poisson_trace
from repro.schedulers import FixedMinEnergyScheduler, MMKPMDFScheduler
from repro.workload.motivational import motivational_platform, motivational_tables


@pytest.fixture()
def manager():
    return RuntimeManager(
        motivational_platform(), motivational_tables(), MMKPMDFScheduler()
    )


def two_request_trace(second_deadline: float = 4.0) -> RequestTrace:
    return RequestTrace(
        [
            RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
            RequestEvent(1.0, "lambda2", second_deadline, "sigma2"),
        ]
    )


class TestAdmission:
    def test_both_requests_admitted_and_completed(self, manager):
        log = manager.run(two_request_trace())
        assert log.acceptance_rate == 1.0
        assert not log.deadline_misses
        assert log.completion_of("sigma1") is not None
        assert log.completion_of("sigma2") is not None
        assert log.activations == 2

    def test_infeasible_request_is_rejected_without_harming_admitted_jobs(self, manager):
        # A deadline of 1 s cannot be met by any lambda2 configuration.
        log = manager.run(two_request_trace(second_deadline=1.0))
        outcomes = {o.name: o for o in log.outcomes}
        assert outcomes["sigma1"].accepted
        assert not outcomes["sigma2"].accepted
        # The previously admitted job still completes before its deadline.
        assert outcomes["sigma1"].met_deadline

    def test_unknown_application_raises(self, manager):
        trace = RequestTrace([RequestEvent(0.0, "ghost", 5.0, "r0")])
        with pytest.raises(AdmissionError):
            manager.run(trace)


class TestAccounting:
    def test_energy_matches_the_committed_schedules(self, manager):
        log = manager.run(two_request_trace())
        # Fig. 1(c): the adaptive mapper consumes 14.63 J in total.
        assert log.total_energy == pytest.approx(14.63, abs=0.01)
        assert log.makespan == pytest.approx(8.3, abs=1e-6)

    def test_timeline_is_ordered_and_gap_free(self, manager):
        log = manager.run(two_request_trace())
        intervals = log.timeline
        assert all(a.end <= b.start + 1e-9 for a, b in zip(intervals, intervals[1:]))
        assert log.total_energy == pytest.approx(
            sum(interval.energy for interval in intervals)
        )

    def test_completion_times_respect_deadlines(self, manager):
        log = manager.run(two_request_trace())
        for outcome in log.accepted:
            assert outcome.met_deadline

    def test_remap_on_finish_reduces_fixed_mapper_energy(self):
        fixed = RuntimeManager(
            motivational_platform(), motivational_tables(), FixedMinEnergyScheduler()
        )
        refined = RuntimeManager(
            motivational_platform(),
            motivational_tables(),
            FixedMinEnergyScheduler(),
            remap_on_finish=True,
        )
        trace = RequestTrace(
            [
                RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
                RequestEvent(1.0, "lambda2", 4.0, "sigma2"),
            ]
        )
        assert refined.run(trace).total_energy < fixed.run(trace).total_energy
        assert refined.run(trace).activations > fixed.run(trace).activations


class TestRandomOnlineWorkload:
    def test_long_trace_executes_without_violations(self):
        tables = motivational_tables()
        manager = RuntimeManager(motivational_platform(), tables, MMKPMDFScheduler())
        trace = poisson_trace(
            tables, arrival_rate=0.1, num_requests=15, deadline_factor_range=(2.0, 4.0), seed=5
        )
        log = manager.run(trace)
        assert len(log.outcomes) == 15
        # Every admitted request must have completed and met its deadline:
        # the manager only admits requests with a feasible schedule.
        for outcome in log.accepted:
            assert outcome.completion_time is not None
            assert outcome.met_deadline
        assert log.total_energy > 0
