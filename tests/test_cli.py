"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import save_json, tables_to_dict
from repro.io import test_case_to_dict as case_to_dict
from repro.workload.motivational import motivational_tables
from repro.workload.testgen import DeadlineLevel, TestCaseGenerator


class TestMotivationalCommand:
    def test_prints_the_three_variants(self, capsys):
        assert main(["motivational"]) == 0
        output = capsys.readouterr().out
        assert "Scenario S1" in output
        assert "Scenario S2" in output
        assert "adaptive mapper (MMKP-MDF)" in output


class TestDseCommand:
    def test_writes_tables(self, tmp_path, capsys):
        output = tmp_path / "points.json"
        assert main(["dse", "--output", str(output), "--sizes", "medium"]) == 0
        data = json.loads(output.read_text())
        assert any(name.endswith("/medium") for name in data)
        assert "Pareto points" in capsys.readouterr().out


class TestWorkloadCommand:
    def test_writes_test_cases(self, tmp_path, capsys):
        tables_path = tmp_path / "tables.json"
        save_json(tables_to_dict(motivational_tables()), tables_path)
        output = tmp_path / "workload.json"
        code = main(
            [
                "workload",
                "--tables",
                str(tables_path),
                "--output",
                str(output),
                "--fraction",
                "0.01",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert len(data["cases"]) >= 8
        assert "Table III" in capsys.readouterr().out


class TestScheduleCommand:
    def test_schedules_an_exported_case(self, tmp_path, capsys):
        tables = motivational_tables()
        tables_path = tmp_path / "tables.json"
        save_json(tables_to_dict(tables), tables_path)
        case = TestCaseGenerator(tables, seed=8).generate_case(2, DeadlineLevel.WEAK)
        case_path = tmp_path / "case.json"
        save_json(case_to_dict(case), case_path)

        code = main(
            [
                "schedule",
                str(case_path),
                "--tables",
                str(tables_path),
                "--scheduler",
                "mmkp-mdf",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "energy" in output
        assert "[" in output  # at least one printed segment


class TestBatchCommand:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        from repro.service import BatchSpec

        spec = BatchSpec.sweep(
            arrival_rates=[0.2],
            traces_per_point=4,
            num_requests=3,
            name="cli-smoke",
        )
        path = tmp_path / "batch.json"
        spec.save(path)
        return path

    def test_runs_a_batch_and_prints_metrics(self, spec_path, capsys):
        assert main(["batch", str(spec_path), "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "batch cli-smoke: 4 traces" in output
        assert "service metrics" in output
        assert "cache_hit_rate" in output

    def test_writes_result_summaries(self, spec_path, tmp_path, capsys):
        output_path = tmp_path / "results.json"
        code = main(
            ["batch", str(spec_path), "--output", str(output_path), "--quiet"]
        )
        assert code == 0
        data = json.loads(output_path.read_text())
        assert data["aggregate"]["traces"] == 4
        assert len(data["results"]) == 4
        assert "service metrics" not in capsys.readouterr().out

    def test_shard_selects_a_subset(self, spec_path, capsys):
        assert main(["batch", str(spec_path), "--shard", "0/2", "--quiet"]) == 0
        assert "2 traces" in capsys.readouterr().out

    def test_invalid_shard_is_reported(self, spec_path):
        assert main(["batch", str(spec_path), "--shard", "bogus"]) == 2

    def test_failing_jobs_set_exit_code(self, tmp_path, capsys):
        from repro.runtime import RequestEvent, RequestTrace
        from repro.service import BatchSpec, SimulationJob

        ghost = RequestTrace([RequestEvent(0.0, "ghost-app", 5.0, "r0")])
        spec = BatchSpec("failing", (SimulationJob("bad", trace=ghost),))
        path = tmp_path / "failing.json"
        spec.save(path)
        assert main(["batch", str(path), "--quiet"]) == 1
        assert "FAILED bad" in capsys.readouterr().out


class TestArgumentParsing:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_scheduler_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["schedule", "case.json", "--tables", "t.json", "--scheduler", "magic"])


class TestRunCommand:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        from repro.api import ExperimentSpec, WorkloadSpec

        spec = ExperimentSpec(
            name="cli-run",
            workload=WorkloadSpec.poisson(arrival_rate=0.25, num_requests=4, seed=2),
        )
        path = tmp_path / "experiment.json"
        spec.save(path)
        return path

    def test_runs_a_single_experiment(self, spec_path, capsys):
        assert main(["run", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "experiment cli-run" in output
        assert "acceptance" in output

    def test_stream_prints_run_events(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--stream"]) == 0
        output = capsys.readouterr().out
        assert "arrival" in output
        assert "commit" in output

    def test_writes_the_summary_json(self, spec_path, tmp_path, capsys):
        output_path = tmp_path / "summary.json"
        assert main(["run", str(spec_path), "--output", str(output_path)]) == 0
        data = json.loads(output_path.read_text())
        assert data["name"] == "cli-run"
        assert data["requests"] == 4
        assert data["accepted"] + data["rejected"] == 4

    def test_trials_fan_out_through_the_service(self, spec_path, tmp_path, capsys):
        output_path = tmp_path / "trials.json"
        code = main(
            [
                "run",
                str(spec_path),
                "--trials",
                "3",
                "--workers",
                "2",
                "--output",
                str(output_path),
            ]
        )
        assert code == 0
        assert "batch cli-run: 3 traces" in capsys.readouterr().out
        data = json.loads(output_path.read_text())
        assert data["aggregate"]["traces"] == 3
        assert {entry["job_name"] for entry in data["results"]} == {
            "cli-run-t000",
            "cli-run-t001",
            "cli-run-t002",
        }

    def test_engine_override(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--engine", "linear"]) == 0
        assert "experiment cli-run" in capsys.readouterr().out

    def test_invalid_spec_file_reports_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"engine\": \"quantum\"}")
        assert main(["run", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_file_reports_an_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_streamed_run_matches_plain_run(self, spec_path, tmp_path):
        plain = tmp_path / "plain.json"
        streamed = tmp_path / "streamed.json"
        assert main(["run", str(spec_path), "--output", str(plain)]) == 0
        assert main(["run", str(spec_path), "--stream", "--output", str(streamed)]) == 0
        assert json.loads(plain.read_text()) == json.loads(streamed.read_text())

    def test_stream_with_trials_is_rejected(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--trials", "2", "--stream"]) == 2
        assert "--stream" in capsys.readouterr().err

    def test_engine_override_applies_to_trials(self, spec_path, tmp_path):
        output_path = tmp_path / "linear.json"
        code = main(
            ["run", str(spec_path), "--trials", "2", "--engine", "linear",
             "--output", str(output_path)]
        )
        assert code == 0
        data = json.loads(output_path.read_text())
        assert all(entry["engine"] == "linear" for entry in data["results"])


class TestBatchShardErrors:
    def test_out_of_range_shard_reports_the_real_error(self, tmp_path, capsys):
        from repro.service import BatchSpec

        spec = BatchSpec.sweep(
            arrival_rates=[0.2], traces_per_point=2, num_requests=2, name="s"
        )
        path = tmp_path / "batch.json"
        spec.save(path)
        assert main(["batch", str(path), "--shard", "3/2"]) == 2
        err = capsys.readouterr().err
        assert "invalid shard 3/2" in err
        assert "expected I/N" not in err
