"""The benchmark baseline gate must actually fail the run.

``benchmarks/run_all.py --check-baseline`` is the CI perf gate: a recorded
regression that still exits 0 is a green build with a red artifact.  These
tests pin the contract — ``check_baseline`` flags every gated metric family,
and ``main`` propagates a non-zero exit code when any failure is recorded —
without paying for a real benchmark run (the heavy measurement functions are
monkeypatched out).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import run_all  # noqa: E402


def _passing_metrics() -> dict:
    """Synthetic metrics that satisfy every gate of the checked-in baseline."""
    return {
        "scheduling_rate/mmkp-mdf": {
            "throughput_columnar_per_s": 100.0,
            "throughput_list_per_s": 10.0,
            "columnar_speedup": 10.0,
        },
        "scheduling_rate/mmkp-lr": {
            "throughput_columnar_per_s": 100.0,
            "throughput_list_per_s": 50.0,
            "columnar_speedup": 2.0,
        },
        "kernel_incremental": {
            "speedup": 2.0,
            "arrivals_per_s_kernel": 100.0,
            "arrivals_per_s_seed": 50.0,
        },
        "gateway_throughput": {
            "runs_per_s_warm": 100.0,
            "clients": 4,
            "gateway_efficiency": 0.9,
        },
        "store_warm": {
            "speedup": 10.0,
            "warm_s": 0.1,
            "cold_s": 1.0,
            "warm_store_hits": 10,
        },
        "cluster_scaling": {
            "core_efficiency": 0.9,
            "speedup": 1.8,
            "available_parallelism": 2,
            "workers": 2,
            "cpus": 2,
        },
        "dse_sweep": {
            "speedup": 3.5,
            "points": 3,
            "explorations_deduped": 6,
            "cross_point_deduped_solves": 2,
            "baseline_s": 0.5,
            "sweep_s": 0.14,
        },
        "tracing_overhead": {
            "enabled_overhead": 0.01,
            "enabled_ms": 101.0,
            "disabled_ms": 100.0,
            "spans": 1000,
        },
        "pareto_front": {
            "points": 100,
            "front_size": 10,
            "engine_s": 0.01,
            "reference_s": 0.1,
            "speedup": 10.0,
        },
        "lr_vectorised": {
            "numpy": True,
            "activations": 87,
            "throughput_pure_per_s": 300.0,
            "throughput_numpy_per_s": 330.0,
            "throughput_batched_per_s": 1800.0,
            "activation_speedup": 6.0,
            "sequential_speedup": 1.1,
            "solver_batch": 48,
            "solver_batch_speedup": 25.0,
        },
    }


def test_passing_metrics_produce_no_failures():
    failures = run_all.check_baseline({"metrics": _passing_metrics()}, 0.25)
    assert failures == []


@pytest.mark.parametrize(
    ("metric", "field", "bad_value", "needle"),
    [
        ("scheduling_rate/mmkp-mdf", "columnar_speedup", 0.5, "scheduling_rate"),
        ("kernel_incremental", "speedup", 0.5, "kernel_incremental"),
        ("tracing_overhead", "enabled_overhead", 0.2, "tracing_overhead"),
        ("lr_vectorised", "activation_speedup", 1.5, "lr_vectorised"),
        ("lr_vectorised", "solver_batch_speedup", 1.0, "stacked solver"),
        ("dse_sweep", "speedup", 1.5, "dse_sweep"),
        ("dse_sweep", "cross_point_deduped_solves", 0, "cross-point"),
    ],
)
def test_each_gate_flags_its_regression(metric, field, bad_value, needle):
    metrics = _passing_metrics()
    metrics[metric][field] = bad_value
    failures = run_all.check_baseline({"metrics": metrics}, 0.25)
    assert any(needle in failure for failure in failures), failures


def test_lr_gate_skipped_without_numpy():
    metrics = _passing_metrics()
    metrics["lr_vectorised"] = {"numpy": False, "activation_speedup": 0.9}
    failures = run_all.check_baseline({"metrics": metrics}, 0.25)
    assert failures == []


def test_main_exits_nonzero_on_baseline_failure(monkeypatch, tmp_path, capsys):
    """A recorded regression must propagate to the process exit code."""
    metrics = _passing_metrics()
    metrics["lr_vectorised"]["activation_speedup"] = 1.0  # below the 3x floor
    monkeypatch.setattr(run_all, "measure_kernel_metrics", lambda repeats: metrics)
    output = tmp_path / "results.json"

    code = run_all.main(
        ["--skip-pytest", "--check-baseline", "--output", str(output)]
    )

    assert code != 0
    recorded = json.loads(output.read_text())
    assert recorded["baseline_check"]["failures"], recorded["baseline_check"]
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.err


def test_main_exits_zero_when_gates_pass(monkeypatch, tmp_path):
    monkeypatch.setattr(
        run_all, "measure_kernel_metrics", lambda repeats: _passing_metrics()
    )
    output = tmp_path / "results.json"
    code = run_all.main(
        ["--skip-pytest", "--check-baseline", "--output", str(output)]
    )
    assert code == 0
    recorded = json.loads(output.read_text())
    assert recorded["baseline_check"]["failures"] == []
