"""Equivalence tests for the incremental energy meter.

The meter must (a) reproduce the post-hoc timeline scan exactly, (b) agree
with the design-time :mod:`repro.mapping.simulate` energy estimate when a
job runs one operating point to completion, and (c) report identical energy
under the linear and event time-advance engines.
"""

import pytest

from repro.dataflow import audio_filter
from repro.dse import DesignSpaceExplorer
from repro.energy import EnergyMeter, PerformanceGovernor, ScheduleAwareGovernor
from repro.platforms import odroid_xu4
from repro.runtime import RequestEvent, RequestTrace, RuntimeManager
from repro.schedulers import FixedMinEnergyScheduler, MMKPMDFScheduler
from repro.workload.motivational import (
    motivational_platform,
    motivational_tables,
    motivational_trace,
)


def _motivational_trace():
    return motivational_trace("S1")


class TestMeterMatchesPostHocScan:
    """Incremental accounting == a post-hoc scan over the executed timeline."""

    @pytest.mark.parametrize("engine", ["events", "linear"])
    def test_totals_and_job_energy(self, engine):
        manager = RuntimeManager.from_components(
            motivational_platform(), motivational_tables(), MMKPMDFScheduler()
        )
        log = manager.run(_motivational_trace(), engine=engine)
        # Post-hoc: scan the timeline the way the seed would have.
        scanned = sum(interval.energy for interval in log.timeline)
        assert log.total_energy == scanned  # exact float equality
        assert sum(log.job_energy.values()) == pytest.approx(scanned, rel=1e-12)
        cluster_total = sum(e["total"] for e in log.cluster_energy.values())
        assert cluster_total == pytest.approx(scanned, rel=1e-12)
        # Table mode is bit-identical to the seed's accounting; the meter
        # only attributes, so outcomes carry per-request energies too.
        for outcome in log.outcomes:
            if outcome.accepted:
                assert outcome.energy == pytest.approx(
                    log.job_energy[outcome.name], rel=1e-12
                )

    def test_accounting_can_be_disabled(self):
        manager = RuntimeManager.from_components(
            motivational_platform(),
            motivational_tables(),
            MMKPMDFScheduler(),
            account_energy=False,
        )
        log = manager.run(_motivational_trace())
        assert log.total_energy > 0  # the scalar total is free and stays
        assert log.cluster_energy == {}
        assert log.job_energy == {}


class TestMeterMatchesMappingSimulator:
    """One job running one operating point end-to-end costs exactly what the
    design-time trace-driven simulator estimated for that mapping."""

    def test_single_job_energy_equals_simulate_estimate(self):
        platform = odroid_xu4()
        graph = audio_filter().graph
        explorer = DesignSpaceExplorer(platform)
        table = explorer.explore(graph, application_name="audio")
        # Rebuild the most efficient point's allocation to recover the raw
        # simulate.py estimate it was generated from.
        best = table.most_efficient()
        result = explorer.evaluate_allocation(graph, best.resources)
        assert result.operating_point.energy == best.energy

        trace = RequestTrace(
            [RequestEvent(0.0, "audio", best.execution_time * 10, "job")]
        )
        manager = RuntimeManager.from_components(
            platform, {"audio": table}, FixedMinEnergyScheduler()
        )
        log = manager.run(trace)
        assert log.acceptance_rate == 1.0
        assert log.total_energy == pytest.approx(result.simulation.energy, rel=1e-9)
        assert log.job_energy["job"] == pytest.approx(result.simulation.energy, rel=1e-9)


class TestEnginesAgreeOnEnergy:
    @pytest.mark.parametrize(
        "governor_factory", [None, PerformanceGovernor, ScheduleAwareGovernor]
    )
    def test_linear_and_events_identical(self, governor_factory):
        def run(engine):
            manager = RuntimeManager.from_components(
                motivational_platform(),
                motivational_tables(),
                MMKPMDFScheduler(),
                governor=governor_factory() if governor_factory else None,
            )
            return manager.run(_motivational_trace(), engine=engine)

        events, linear = run("events"), run("linear")
        assert events.total_energy == linear.total_energy
        assert events.cluster_energy == linear.cluster_energy
        assert events.job_energy == linear.job_energy
        assert len(events.timeline) == len(linear.timeline)


class TestMeterUnit:
    def test_bare_capacity_platform_tracks_jobs_only(self):
        meter = EnergyMeter(None)
        assert meter.cluster_breakdown() == {}

    def test_analytical_requires_platform(self):
        meter = EnergyMeter(None)
        with pytest.raises(ValueError):
            meter.record_analytical(1.0, [], None)
