"""Energy policy through the batch service, the DSE sweep and the CLI."""

import json

import pytest

from repro.cli import main
from repro.dataflow import audio_filter
from repro.dse import DesignSpaceExplorer
from repro.energy import available_scales
from repro.exceptions import WorkloadError
from repro.platforms import odroid_xu4
from repro.service import BatchSpec, SimulationService
from repro.service.jobs import SimulationJob, TraceSpec


def _sweep(**overrides) -> BatchSpec:
    parameters = dict(
        arrival_rates=[0.25], traces_per_point=3, num_requests=4, name="energy-test"
    )
    parameters.update(overrides)
    return BatchSpec.sweep(**parameters)


class TestSimulationJobEnergyFields:
    def test_round_trip_and_defaults(self):
        job = SimulationJob(
            "demo",
            trace_spec=TraceSpec(0.2, 5, seed=7),
            governor="schedule-aware",
            power_cap_watts=5.0,
            energy_budget_joules=100.0,
        )
        assert SimulationJob.from_dict(job.to_dict()) == job
        # Unset fields stay out of the serialised form (seed specs unchanged).
        plain = SimulationJob("plain", trace_spec=TraceSpec(0.2, 5))
        payload = plain.to_dict()
        assert "governor" not in payload
        assert "power_cap_watts" not in payload
        assert SimulationJob.from_dict(payload).governor is None

    def test_unknown_governor_rejected(self):
        with pytest.raises(WorkloadError):
            SimulationJob("bad", trace_spec=TraceSpec(0.2, 5), governor="turbo")


class TestServiceEnergy:
    def test_batch_results_carry_cluster_energy(self):
        results = SimulationService().run_batch(_sweep())
        assert not results.failures
        clusters = results.cluster_energy()
        assert set(clusters) == {"little", "big"}
        assert all(entry["total"] > 0 for entry in clusters.values())
        payload = results.to_dict()
        assert payload["results"][0]["cluster_energy"]["big"]["total"] > 0
        assert payload["aggregate"]["budget_rejections"] == 0
        json.dumps(payload)  # stays JSON-ready

    def test_governor_reduces_batch_energy_deterministically(self):
        fixed = SimulationService().run_batch(
            _sweep().with_energy_policy(governor="performance")
        )
        aware = SimulationService().run_batch(
            _sweep().with_energy_policy(governor="schedule-aware")
        )
        assert not fixed.failures and not aware.failures
        assert (
            aware.aggregate()["total_energy"] < fixed.aggregate()["total_energy"]
        )
        # Determinism holds with governors too: any worker count agrees.
        again = SimulationService(workers=3, executor="thread").run_batch(
            _sweep().with_energy_policy(governor="schedule-aware")
        )
        assert again.fingerprint() == aware.fingerprint()

    def test_power_cap_surfaces_budget_rejections(self):
        results = SimulationService().run_batch(
            _sweep().with_energy_policy(power_cap_watts=0.5)
        )
        assert results.aggregate()["budget_rejections"] > 0
        # Metrics registry counts them when observed through a service run.
        service = SimulationService()
        service.run_batch(_sweep().with_energy_policy(power_cap_watts=0.5))
        assert service.metrics.budget_rejections.value > 0
        assert service.metrics.snapshot()["counters"]["budget_rejections"] > 0

    def test_request_energy_histogram_populated(self):
        service = SimulationService()
        service.run_batch(_sweep())
        histogram = service.metrics.request_energy
        assert histogram.count > 0
        assert histogram.total == pytest.approx(
            service.metrics.trace_energy.total, rel=1e-9
        )


class TestDSESweepColumn:
    def test_swept_table_serialises_frequency_column(self, tmp_path):
        from repro.io import load_json, save_json, tables_from_dict, tables_to_dict

        platform = odroid_xu4()
        explorer = DesignSpaceExplorer(platform)
        graph = audio_filter().graph
        table = explorer.explore(
            graph, application_name="audio", opp_scales=available_scales(platform)
        )
        scales = {point.frequency_scale for point in table}
        assert len(scales) > 1  # the frequency column is populated
        assert any(point.frequency_scale < 1.0 for point in table)
        assert table.is_pareto_optimal()

        path = tmp_path / "tables.json"
        save_json(tables_to_dict({"audio": table}), path)
        restored = tables_from_dict(load_json(path))["audio"]
        assert restored == table


class TestInlinePlatformRoundTrip:
    def test_opp_ladders_survive_serialization(self):
        from repro.io import platform_from_dict, platform_to_dict

        platform = odroid_xu4()
        restored = platform_from_dict(platform_to_dict(platform))
        assert restored == platform
        for base, back in zip(platform.processor_types, restored.processor_types):
            assert back.has_opps
            assert back.opps.scales() == base.opps.scales()
            assert back.opps.nominal.power == base.opps.nominal.power
        # A ladder-less platform serialises without the opps key (seed form).
        from repro.platforms import big_little

        payload = platform_to_dict(big_little(2, 2))
        assert all("opps" not in entry for entry in payload["processor_types"])

    def test_malformed_opps_raise_serialization_error(self):
        from repro.exceptions import SerializationError
        from repro.io import platform_from_dict, platform_to_dict

        payload = platform_to_dict(odroid_xu4())
        # Drop the nominal point: the ladder becomes invalid.
        payload["processor_types"][0]["opps"] = [
            point
            for point in payload["processor_types"][0]["opps"]
            if point["speed"] != 1.0
        ]
        with pytest.raises(SerializationError):
            platform_from_dict(payload)

    def test_inline_platform_governor_fingerprint_survives_process_executor(self):
        job = SimulationJob(
            "inline",
            platform=odroid_xu4(),
            tables="motivational",
            trace_spec=TraceSpec(0.2, 3, seed=1),
            governor="schedule-aware",
        )
        # The worker-process path round-trips the job through to_dict; the
        # restored job must make the same governor decisions.
        restored = SimulationJob.from_dict(job.to_dict())
        ladders = [t.opps for t in restored.resolve_platform().processor_types]
        assert all(ladder is not None for ladder in ladders)


class TestGovernorRejectsSweptTables:
    def test_manager_refuses_dvfs_swept_tables_under_governor(self):
        from repro.runtime import RuntimeManager
        from repro.schedulers import MMKPMDFScheduler

        platform = odroid_xu4()
        explorer = DesignSpaceExplorer(platform)
        table = explorer.explore(
            audio_filter().graph,
            application_name="audio",
            opp_scales=available_scales(platform),
        )
        from repro.energy import PerformanceGovernor
        from repro.exceptions import SchedulingError

        with pytest.raises(SchedulingError):
            RuntimeManager.from_components(
                platform,
                {"audio": table},
                MMKPMDFScheduler(),
                governor=PerformanceGovernor(),
            )
        # Without a governor the swept table is fine (picking a slow point
        # is the DVFS decision).
        RuntimeManager.from_components(platform, {"audio": table}, MMKPMDFScheduler())


class TestEnergyCLI:
    def test_motivational_energy_report(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            ["energy", "--governor", "schedule-aware", "--compare", "--output", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "energy breakdown (schedule-aware governor)" in captured
        assert "total energy by governor:" in captured
        report = json.loads(out.read_text())
        assert report["clusters"]
        assert all(entry["total"] > 0 for entry in report["clusters"].values())
        assert (
            report["totals"]["schedule-aware"] <= report["totals"]["performance"]
        )

    def test_batch_energy_report(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        _sweep().save(spec_path)
        out = tmp_path / "report.json"
        code = main(
            ["energy", "--spec", str(spec_path), "--governor", "ondemand",
             "--output", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert set(report["clusters"]) == {"little", "big"}
        assert report["aggregate"]["traces"] == 3
