"""Tests for OPP ladders, platform attachment and uniform scales."""

import pytest

from repro.energy.opp import (
    DEFAULT_SCALES,
    OPP,
    OPPLadder,
    attach_opps,
    available_scales,
    decide,
    default_ladder,
    ensure_opps,
    exynos5422_ladders,
    ladder_from_frequencies,
    scaled_platform,
)
from repro.exceptions import EnergyError
from repro.platforms import PowerModel, ProcessorType, big_little, odroid_xu4


def _core(frequency=2.0e9, performance=2.0):
    return ProcessorType("big", frequency, performance, PowerModel(0.2, 1.0))


class TestOPPLadder:
    def test_points_sorted_and_nominal_found(self):
        base = _core()
        ladder = ladder_from_frequencies(base, [2.0e9, 1.0e9, 1.5e9])
        assert [p.frequency_hz for p in ladder] == [1.0e9, 1.5e9, 2.0e9]
        assert ladder.nominal.frequency_hz == 2.0e9
        assert ladder.slowest.speed == pytest.approx(0.5)
        assert ladder.fastest is ladder.nominal

    def test_scaled_frequency_wired_into_ladder_power(self):
        base = _core()
        ladder = ladder_from_frequencies(base, [1.0e9, 2.0e9])
        half = ladder.slowest
        # Dynamic power scales cubically (PowerModel.scaled_frequency).
        assert half.power.dynamic_watts == pytest.approx(1.0 * 0.5**3)
        assert half.power.static_watts == pytest.approx(0.2)
        # The nominal point keeps the exact base model.
        assert ladder.nominal.power is base.power

    def test_nominal_frequency_required(self):
        with pytest.raises(EnergyError):
            ladder_from_frequencies(_core(), [1.0e9, 1.5e9])

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(EnergyError):
            OPPLadder([OPP(1e9, 0.5, PowerModel(0.1, 0.1)),
                       OPP(1e9, 0.5, PowerModel(0.1, 0.1)),
                       OPP(2e9, 1.0, PowerModel(0.1, 0.1))])

    def test_empty_ladder_rejected(self):
        with pytest.raises(EnergyError):
            OPPLadder([])

    def test_at_scale_picks_slowest_sufficient_point(self):
        ladder = ladder_from_frequencies(_core(), [1.0e9, 1.5e9, 2.0e9])
        assert ladder.at_scale(0.4).speed == pytest.approx(0.5)
        assert ladder.at_scale(0.5).speed == pytest.approx(0.5)
        assert ladder.at_scale(0.6).speed == pytest.approx(0.75)
        assert ladder.at_scale(1.0).speed == pytest.approx(1.0)
        # Above the fastest point: clamp.
        assert ladder.at_scale(2.0) is ladder.fastest
        with pytest.raises(EnergyError):
            ladder.at_scale(0.0)


class TestExynosLadders:
    def test_ladders_match_odroid_nominal_frequencies(self):
        ladders = exynos5422_ladders()
        assert ladders["A7"].nominal.frequency_hz == pytest.approx(1.5e9)
        assert ladders["A15"].nominal.frequency_hz == pytest.approx(1.8e9)
        # The A15 ladder has a boost point above nominal.
        assert ladders["A15"].fastest.frequency_hz == pytest.approx(2.0e9)

    def test_odroid_platform_carries_ladders(self):
        platform = odroid_xu4()
        assert all(ptype.has_opps for ptype in platform.processor_types)
        # ... without perturbing the nominal model the seed relies on.
        bare = odroid_xu4(dvfs=False)
        assert bare.processor_types == platform.processor_types  # opps: compare=False
        assert not any(ptype.has_opps for ptype in bare.processor_types)


class TestPlatformScales:
    def test_attach_and_ensure(self):
        platform = big_little(2, 2)
        assert not any(t.has_opps for t in platform.processor_types)
        ready = ensure_opps(platform)
        assert all(t.has_opps for t in ready.processor_types)
        assert ensure_opps(ready) is ready  # idempotent / identity
        assert available_scales(ready) == DEFAULT_SCALES

    def test_attach_unknown_type_rejected(self):
        platform = big_little(2, 2)
        ladder = default_ladder(platform.processor_types[0])
        with pytest.raises(EnergyError):
            attach_opps(platform, {"no-such-cluster": ladder})

    def test_available_scales_sorted_capped_at_nominal(self):
        scales = available_scales(odroid_xu4())
        assert scales == tuple(sorted(scales))
        assert scales[-1] == 1.0
        assert scales[0] == pytest.approx(0.4)  # 600 MHz / 1.5 GHz

    def test_decide_guarantees_speed_per_cluster(self):
        platform = odroid_xu4()
        decision = decide(platform, 0.6)
        assert decision.scale == pytest.approx(0.6)
        for opp in decision.cluster_opps:
            assert opp.speed >= 0.6 - 1e-9

    def test_scaled_platform_slows_execution_and_power(self):
        platform = odroid_xu4()
        slowed = scaled_platform(platform, 0.5)
        for base, scaled in zip(platform.processor_types, slowed.processor_types):
            assert scaled.frequency_hz < base.frequency_hz
            assert scaled.performance_factor == base.performance_factor
            assert scaled.cycles_to_seconds(1e9) > base.cycles_to_seconds(1e9)
            assert scaled.power.dynamic_watts < base.power.dynamic_watts
            assert scaled.power.static_watts == base.power.static_watts
        assert scaled_platform(platform, 1.0) is platform

    def test_at_opp_preserves_ladder(self):
        platform = odroid_xu4()
        big = platform.processor_type("A15")
        repinned = big.at_opp(big.opps.slowest)
        assert repinned.opps is big.opps
        assert repinned.frequency_hz == big.opps.slowest.frequency_hz
