"""Tests for power-cap / energy-budget admission control."""

import pytest

from repro.energy import EnergyBudget, PerformanceGovernor
from repro.exceptions import EnergyError
from repro.runtime import RuntimeManager
from repro.schedulers import MMKPMDFScheduler
from repro.workload.motivational import (
    motivational_platform,
    motivational_tables,
    motivational_trace,
)


def _trace():
    return motivational_trace("S1")


def _run(budget=None, governor=None):
    manager = RuntimeManager.from_components(
        motivational_platform(),
        motivational_tables(),
        MMKPMDFScheduler(),
        governor=governor,
        budget=budget,
    )
    return manager.run(_trace())


class TestValidation:
    def test_non_positive_limits_rejected(self):
        with pytest.raises(EnergyError):
            EnergyBudget(power_cap_watts=0.0)
        with pytest.raises(EnergyError):
            EnergyBudget(energy_budget_joules=-1.0)

    def test_unconstrained_budget_is_a_no_op(self):
        unconstrained = _run(budget=EnergyBudget())
        baseline = _run()
        assert unconstrained.total_energy == baseline.total_energy
        assert unconstrained.budget_rejections == 0


class TestPowerCap:
    def test_generous_cap_changes_nothing(self):
        baseline = _run()
        capped = _run(budget=EnergyBudget(power_cap_watts=1000.0))
        assert capped.total_energy == baseline.total_energy
        assert capped.acceptance_rate == 1.0
        assert capped.budget_rejections == 0

    def test_tight_cap_rejects_the_second_request(self):
        # sigma1 runs 2L1B at 8.9 J / 5.3 s ~ 1.68 W; admitting sigma2 needs
        # a segment at ~1.91 W (2L1B of lambda2), so a 1.85 W cap admits the
        # first request and rejects the second.
        baseline = _run()
        capped = _run(budget=EnergyBudget(power_cap_watts=1.85))
        assert capped.budget_rejections == 1
        assert capped.acceptance_rate < baseline.acceptance_rate
        # The first schedule stays in force: sigma1 still completes.
        assert capped.completion_of("sigma1") is not None
        assert not capped.deadline_misses

    def test_impossible_cap_rejects_everything(self):
        capped = _run(budget=EnergyBudget(power_cap_watts=0.1))
        assert capped.acceptance_rate == 0.0
        assert capped.budget_rejections == 2
        assert capped.total_energy == 0.0


class TestEnergyBudgetJoules:
    def test_budget_admits_until_exhausted(self):
        baseline = _run()
        assert baseline.total_energy == pytest.approx(14.63, abs=0.01)
        # Enough for sigma1's cheapest full run but not for both jobs.
        budgeted = _run(budget=EnergyBudget(energy_budget_joules=10.0))
        assert budgeted.budget_rejections >= 1
        assert budgeted.total_energy <= 10.0 + 1e-9
        generous = _run(budget=EnergyBudget(energy_budget_joules=100.0))
        assert generous.total_energy == baseline.total_energy
        assert generous.budget_rejections == 0

    def test_budget_checked_against_analytical_plan_in_governor_mode(self):
        fixed = _run(governor=PerformanceGovernor())
        # Analytical accounting charges the whole platform during segments,
        # so the same 10 J budget is even tighter under a governor.
        budgeted = _run(
            governor=PerformanceGovernor(),
            budget=EnergyBudget(energy_budget_joules=10.0),
        )
        assert budgeted.budget_rejections >= 1
        assert budgeted.total_energy < fixed.total_energy


def _run_engine(engine, budget=None, governor=None, trace=None):
    manager = RuntimeManager.from_components(
        motivational_platform(),
        motivational_tables(),
        MMKPMDFScheduler(),
        governor=governor,
        budget=budget,
        engine=engine,
    )
    return manager.run(trace if trace is not None else _trace())


def _log_key(log):
    return (
        repr(log.total_energy),
        log.budget_rejections,
        [(o.name, o.accepted, repr(o.completion_time)) for o in log.outcomes],
        [(repr(i.start), repr(i.end), i.job_configs, repr(i.energy))
         for i in log.timeline],
        sorted((k, repr(v)) for k, v in log.job_energy.items()),
    )


class TestEventEngineAdmission:
    """Governor + budget admission under the heap :class:`EventQueue` engine.

    The budget/governor combination was previously only pinned on the
    linear engine; these tests drive the same envelopes through the event
    engine — including a budget rejection that arrives *mid-interval*,
    while a committed segment is still executing — and assert the two
    engines stay bit-identical.
    """

    def _mid_interval_trace(self):
        # sigma1 commits [0, 5.3); the second request arrives at t=2.0,
        # strictly inside that executing segment.
        from repro.runtime.trace import RequestEvent, RequestTrace

        return RequestTrace(
            [
                RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
                RequestEvent(2.0, "lambda2", 6.0, "sigma2"),
            ]
        )

    @pytest.mark.parametrize(
        "budget",
        [
            EnergyBudget(power_cap_watts=1.85),
            EnergyBudget(energy_budget_joules=10.0),
            EnergyBudget(power_cap_watts=1.85, energy_budget_joules=10.0),
        ],
    )
    def test_engines_agree_on_budget_rejections(self, budget):
        events = _run_engine("events", budget=budget)
        linear = _run_engine("linear", budget=budget)
        assert events.budget_rejections == linear.budget_rejections >= 1
        assert _log_key(events) == _log_key(linear)

    @pytest.mark.parametrize("governor_name", ["schedule-aware", "ondemand"])
    def test_engines_agree_under_governor_plus_budget(self, governor_name):
        from repro.api.registry import governors

        budget = EnergyBudget(power_cap_watts=6.0, energy_budget_joules=40.0)
        events = _run_engine(
            "events", budget=budget, governor=governors.build(governor_name)
        )
        linear = _run_engine(
            "linear", budget=budget, governor=governors.build(governor_name)
        )
        assert _log_key(events) == _log_key(linear)

    def test_mid_interval_budget_rejection_splits_the_interval(self):
        trace = self._mid_interval_trace()
        open_run = _run_engine("events", trace=trace)
        assert open_run.acceptance_rate == 1.0

        tight = EnergyBudget(energy_budget_joules=9.0)
        log = _run_engine("events", budget=tight, trace=trace)
        # The arrival at t=2.0 interrupts the executing segment, is checked
        # against the envelope (consumed + planned joules) and rejected; the
        # committed schedule stays in force and sigma1 still completes on
        # its original timeline.
        assert log.budget_rejections == 1
        assert [o.accepted for o in log.outcomes] == [True, False]
        boundaries = [(i.start, i.end) for i in log.timeline]
        assert any(end == 2.0 for _, end in boundaries)
        assert any(start == 2.0 for start, _ in boundaries)
        # With sigma2 rejected the committed plan is exactly the solo run.
        from repro.runtime.trace import RequestEvent, RequestTrace

        solo = _run_engine(
            "events",
            trace=RequestTrace([RequestEvent(0.0, "lambda1", 9.0, "sigma1")]),
        )
        assert log.completion_of("sigma1") == solo.completion_of("sigma1")
        # Exactly one job ever executed, so the mid-interval check charged
        # only the consumed prefix plus the committed remainder.
        assert log.total_energy < open_run.total_energy

    def test_mid_interval_rejection_agrees_across_engines_and_kernel(self):
        from repro.kernel import kernel_disabled

        trace = self._mid_interval_trace()
        tight = EnergyBudget(energy_budget_joules=9.0)
        events = _run_engine("events", budget=tight, trace=trace)
        linear = _run_engine("linear", budget=tight, trace=trace)
        assert _log_key(events) == _log_key(linear)
        with kernel_disabled():
            seed_events = _run_engine("events", budget=tight, trace=trace)
        assert _log_key(events) == _log_key(seed_events)

    def test_governor_budget_rejection_mid_interval_on_event_engine(self):
        from repro.api.registry import governors

        trace = self._mid_interval_trace()
        # 15 J covers sigma1's analytical plan but not sigma2's admission at
        # t=2.0 (the governor-mode check integrates whole-platform power).
        budget = EnergyBudget(energy_budget_joules=15.0)
        log = _run_engine(
            "events", budget=budget, governor=governors.build("schedule-aware"), trace=trace
        )
        linear = _run_engine(
            "linear", budget=budget, governor=governors.build("schedule-aware"), trace=trace
        )
        assert _log_key(log) == _log_key(linear)
        assert log.budget_rejections == 1
        assert log.completion_of("sigma1") is not None
