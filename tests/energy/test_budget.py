"""Tests for power-cap / energy-budget admission control."""

import pytest

from repro.energy import EnergyBudget, PerformanceGovernor
from repro.exceptions import EnergyError
from repro.runtime import RuntimeManager
from repro.schedulers import MMKPMDFScheduler
from repro.workload.motivational import (
    motivational_platform,
    motivational_tables,
    motivational_trace,
)


def _trace():
    return motivational_trace("S1")


def _run(budget=None, governor=None):
    manager = RuntimeManager.from_components(
        motivational_platform(),
        motivational_tables(),
        MMKPMDFScheduler(),
        governor=governor,
        budget=budget,
    )
    return manager.run(_trace())


class TestValidation:
    def test_non_positive_limits_rejected(self):
        with pytest.raises(EnergyError):
            EnergyBudget(power_cap_watts=0.0)
        with pytest.raises(EnergyError):
            EnergyBudget(energy_budget_joules=-1.0)

    def test_unconstrained_budget_is_a_no_op(self):
        unconstrained = _run(budget=EnergyBudget())
        baseline = _run()
        assert unconstrained.total_energy == baseline.total_energy
        assert unconstrained.budget_rejections == 0


class TestPowerCap:
    def test_generous_cap_changes_nothing(self):
        baseline = _run()
        capped = _run(budget=EnergyBudget(power_cap_watts=1000.0))
        assert capped.total_energy == baseline.total_energy
        assert capped.acceptance_rate == 1.0
        assert capped.budget_rejections == 0

    def test_tight_cap_rejects_the_second_request(self):
        # sigma1 runs 2L1B at 8.9 J / 5.3 s ~ 1.68 W; admitting sigma2 needs
        # a segment at ~1.91 W (2L1B of lambda2), so a 1.85 W cap admits the
        # first request and rejects the second.
        baseline = _run()
        capped = _run(budget=EnergyBudget(power_cap_watts=1.85))
        assert capped.budget_rejections == 1
        assert capped.acceptance_rate < baseline.acceptance_rate
        # The first schedule stays in force: sigma1 still completes.
        assert capped.completion_of("sigma1") is not None
        assert not capped.deadline_misses

    def test_impossible_cap_rejects_everything(self):
        capped = _run(budget=EnergyBudget(power_cap_watts=0.1))
        assert capped.acceptance_rate == 0.0
        assert capped.budget_rejections == 2
        assert capped.total_energy == 0.0


class TestEnergyBudgetJoules:
    def test_budget_admits_until_exhausted(self):
        baseline = _run()
        assert baseline.total_energy == pytest.approx(14.63, abs=0.01)
        # Enough for sigma1's cheapest full run but not for both jobs.
        budgeted = _run(budget=EnergyBudget(energy_budget_joules=10.0))
        assert budgeted.budget_rejections >= 1
        assert budgeted.total_energy <= 10.0 + 1e-9
        generous = _run(budget=EnergyBudget(energy_budget_joules=100.0))
        assert generous.total_energy == baseline.total_energy
        assert generous.budget_rejections == 0

    def test_budget_checked_against_analytical_plan_in_governor_mode(self):
        fixed = _run(governor=PerformanceGovernor())
        # Analytical accounting charges the whole platform during segments,
        # so the same 10 J budget is even tighter under a governor.
        budgeted = _run(
            governor=PerformanceGovernor(),
            budget=EnergyBudget(energy_budget_joules=10.0),
        )
        assert budgeted.budget_rejections >= 1
        assert budgeted.total_energy < fixed.total_energy
