"""Tests for frequency governors and schedule stretching."""

import pytest

from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.energy import (
    GOVERNORS,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    ScheduleAwareGovernor,
    available_scales,
    build_governor,
    ensure_opps,
    required_scale,
    stretch_schedule,
)
from repro.exceptions import EnergyError
from repro.runtime import RequestEvent, RequestTrace, RuntimeManager
from repro.schedulers import MMKPMDFScheduler
from repro.workload.motivational import (
    CONFIG_2L1B,
    motivational_platform,
    motivational_tables,
    motivational_trace,
)


def _schedule(jobs):
    """A single-segment schedule [1, 6.3) running both jobs in 2L1B."""
    mappings = [JobMapping(job, CONFIG_2L1B) for job in jobs]
    return Schedule([MappingSegment(1.0, 6.3, mappings)])


class TestStretchSchedule:
    def test_future_segments_stretch_past_segments_stay(self):
        job = Job("j", "lambda1", arrival=0.0, deadline=20.0)
        schedule = Schedule(
            [
                MappingSegment(0.0, 1.0, [JobMapping(job, 0)]),
                MappingSegment(2.0, 4.0, [JobMapping(job, 1)]),
            ]
        )
        stretched = stretch_schedule(schedule, now=1.0, scale=0.5)
        first, second = stretched.segments
        assert (first.start, first.end) == (0.0, 1.0)
        assert second.start == pytest.approx(1.0 + (2.0 - 1.0) / 0.5)
        assert second.end == pytest.approx(1.0 + (4.0 - 1.0) / 0.5)

    def test_straddling_segment_stretches_only_the_future_part(self):
        job = Job("j", "lambda1", arrival=0.0, deadline=20.0)
        schedule = Schedule([MappingSegment(0.0, 4.0, [JobMapping(job, 0)])])
        stretched = stretch_schedule(schedule, now=2.0, scale=0.5)
        (segment,) = stretched.segments
        assert segment.start == 0.0
        assert segment.end == pytest.approx(2.0 + (4.0 - 2.0) / 0.5)

    def test_identity_at_nominal_scale(self):
        job = Job("j", "lambda1", arrival=0.0, deadline=20.0)
        schedule = Schedule([MappingSegment(0.0, 4.0, [JobMapping(job, 0)])])
        assert stretch_schedule(schedule, 0.0, 1.0) is schedule
        with pytest.raises(EnergyError):
            stretch_schedule(schedule, 0.0, 0.0)


class TestRequiredScale:
    def test_slack_determines_floor(self):
        jobs = {
            "sigma1": Job("sigma1", "lambda1", arrival=0.0, deadline=9.0),
            "sigma2": Job("sigma2", "lambda2", arrival=1.0, deadline=11.6),
        }
        schedule = _schedule(list(jobs.values()))
        # Completion 6.3 at now=1: sigma1 needs (6.3-1)/(9-1) = 0.6625.
        floor = required_scale(schedule, jobs, now=1.0)
        assert floor == pytest.approx((6.3 - 1.0) / 8.0)

    def test_no_future_completions_means_any_speed(self):
        jobs = {"j": Job("j", "lambda1", arrival=0.0, deadline=9.0)}
        assert required_scale(Schedule(), jobs, now=1.0) == 0.0

    def test_zero_slack_pins_nominal(self):
        jobs = {"j": Job("j", "lambda1", arrival=0.0, deadline=5.3)}
        schedule = _schedule(list(jobs.values()))
        # The deadline window is empty while the completion is still ahead.
        assert required_scale(schedule, jobs, now=5.3) == 1.0


class TestGovernors:
    def setup_method(self):
        self.platform = ensure_opps(motivational_platform())
        self.tables = motivational_tables()

    def test_registry_and_builder(self):
        assert set(GOVERNORS) == {
            "performance", "powersave", "ondemand", "schedule-aware"
        }
        assert build_governor("performance").name == "performance"
        with pytest.raises(EnergyError):
            build_governor("turbo")

    def test_performance_always_nominal(self):
        governor = PerformanceGovernor()
        assert governor.select_scale(Schedule(), {}, 0.0, self.platform, self.tables) == 1.0

    def test_powersave_always_slowest(self):
        governor = PowersaveGovernor()
        scale = governor.select_scale(Schedule(), {}, 0.0, self.platform, self.tables)
        assert scale == available_scales(self.platform)[0]

    def test_ondemand_tracks_utilisation(self):
        governor = OndemandGovernor(up_threshold=0.8)
        jobs = {
            "sigma1": Job("sigma1", "lambda1", arrival=0.0, deadline=30.0),
            "sigma2": Job("sigma2", "lambda2", arrival=1.0, deadline=30.0),
        }
        # 2L1B + 2L1B does not fit; use a single job on 2L1B: 3 of 4 cores.
        schedule = _schedule([jobs["sigma1"]])
        scale = governor.select_scale(schedule, jobs, 1.0, self.platform, self.tables)
        # Utilisation 0.75 / threshold 0.8 = 0.9375 -> next available scale.
        assert scale >= 0.9375 - 1e-9
        assert scale < 1.0 + 1e-9
        # Empty upcoming schedule idles at the slowest point.
        idle_scale = governor.select_scale(Schedule(), jobs, 10.0, self.platform, self.tables)
        assert idle_scale == available_scales(self.platform)[0]
        with pytest.raises(EnergyError):
            OndemandGovernor(up_threshold=0.0)

    def test_schedule_aware_meets_deadlines(self):
        governor = ScheduleAwareGovernor()
        jobs = {
            "sigma1": Job("sigma1", "lambda1", arrival=0.0, deadline=9.0),
            "sigma2": Job("sigma2", "lambda2", arrival=1.0, deadline=11.6),
        }
        schedule = _schedule(list(jobs.values()))
        scale = governor.select_scale(schedule, jobs, 1.0, self.platform, self.tables)
        assert scale >= required_scale(schedule, jobs, 1.0) - 1e-9
        assert scale < 1.0  # there is slack, so the governor slows down
        stretched = stretch_schedule(schedule, 1.0, scale)
        for name, job in jobs.items():
            assert stretched.completion_time(name) <= job.deadline + 1e-6


class TestGovernorRuns:
    """End-to-end governor behaviour through the runtime manager."""

    def _run(self, governor, engine="events"):
        manager = RuntimeManager.from_components(
            motivational_platform(),
            motivational_tables(),
            MMKPMDFScheduler(),
            governor=governor,
        )
        return manager.run(motivational_trace("S1"), engine=engine)

    def test_schedule_aware_saves_energy_without_misses(self):
        fixed = self._run(PerformanceGovernor())
        aware = self._run(ScheduleAwareGovernor())
        assert not fixed.deadline_misses
        assert not aware.deadline_misses
        assert aware.acceptance_rate == fixed.acceptance_rate
        assert aware.total_energy < fixed.total_energy

    def test_powersave_misses_deadlines_but_saves_energy(self):
        fixed = self._run(PerformanceGovernor())
        powersave = self._run(PowersaveGovernor())
        assert powersave.total_energy < fixed.total_energy
        assert powersave.deadline_misses

    def test_overdue_job_does_not_doom_new_arrivals(self):
        # Under powersave, sigma1 (deadline exactly its nominal 2L1B time)
        # is still running, overdue, when sigma2 arrives with ample slack
        # and free capacity.  The overdue job's deadline is relaxed to its
        # committed completion, so sigma2 must still be admitted.
        trace = RequestTrace(
            [
                RequestEvent(0.0, "lambda2", 3.0, "sigma1"),
                RequestEvent(4.0, "lambda2", 16.0, "sigma2"),
            ]
        )
        manager = RuntimeManager.from_components(
            motivational_platform(),
            motivational_tables(),
            MMKPMDFScheduler(),
            governor=PowersaveGovernor(),
        )
        log = manager.run(trace)
        assert log.acceptance_rate == 1.0
        assert log.completion_of("sigma1") is not None
        assert log.completion_of("sigma2") is not None
        # sigma1 misses (powersave semantics); sigma2 had slack to spare.
        assert any(o.name == "sigma1" for o in log.deadline_misses)

    def test_governor_requires_full_platform(self):
        with pytest.raises(Exception):
            RuntimeManager.from_components(
                motivational_platform().capacity,
                motivational_tables(),
                MMKPMDFScheduler(),
                governor=PerformanceGovernor(),
            )
