"""Acceptance check: the schedule-aware governor on the census workload.

For every MMKP-MDF schedule of a down-scaled Table III/IV census, applying
the schedule-aware governor (slowest deadline-feasible OPPs, energy-checked)
must never cost energy relative to the fixed-frequency plan under the same
analytical accounting, and must introduce zero new deadline misses.
"""

import pytest

from repro.energy import (
    ScheduleAwareGovernor,
    analytical_schedule_energy,
    decide,
    stretch_schedule,
)
from repro.schedulers import MMKPMDFScheduler


@pytest.fixture(scope="module")
def census_schedules(tiny_suite, odroid, small_tables):
    """(problem, schedule) for every census case MMKP-MDF can schedule."""
    scheduler = MMKPMDFScheduler()
    scheduled = []
    for case in tiny_suite:
        problem = case.problem(odroid, small_tables)
        result = scheduler.schedule(problem)
        if result.feasible:
            scheduled.append((problem, result.schedule))
    assert scheduled, "census produced no feasible schedules"
    return scheduled


def test_schedule_aware_never_costs_energy_and_never_misses(
    census_schedules, odroid, small_tables
):
    governor = ScheduleAwareGovernor()
    fixed_decision = decide(odroid, 1.0)
    total_fixed = total_scaled = 0.0
    slowed_cases = 0
    for problem, schedule in census_schedules:
        jobs = {job.name: job for job in problem.jobs}
        scale = governor.select_scale(
            schedule, jobs, problem.now, odroid, small_tables
        )
        stretched = stretch_schedule(schedule, problem.now, scale)
        fixed = analytical_schedule_energy(
            schedule, small_tables, odroid, fixed_decision
        )
        scaled = analytical_schedule_energy(
            stretched, small_tables, odroid, decide(odroid, scale)
        )
        # Nominal speed is always a candidate, so the governor never loses.
        assert scaled <= fixed + 1e-9
        # Zero new deadline misses: every stretched completion holds.
        for name, job in jobs.items():
            completion = stretched.completion_time(name)
            if completion is not None:
                assert completion <= job.deadline + 1e-6
        total_fixed += fixed
        total_scaled += scaled
        if scale < 1.0:
            slowed_cases += 1
    # The census has slack somewhere: the governor actually reduces energy.
    assert slowed_cases > 0
    assert total_scaled < total_fixed
