"""ProblemView slicing and the memoised solve cache."""

import pytest

from repro.optable import SolveCache, columnar_disabled, columnar_override
from repro.schedulers import MMKPLRScheduler
from repro.workload.motivational import motivational_problem


class TestSolveCache:
    def test_lru_eviction(self):
        cache = SolveCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_statistics(self):
        cache = SolveCache()
        assert cache.get("missing") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["entries"] == 1
        cache.clear()
        assert cache.info() == {"entries": 0, "hits": 0, "misses": 0}

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SolveCache(max_entries=0)


class TestProblemView:
    def test_view_is_cached_per_problem(self):
        problem = motivational_problem("S1")
        assert problem.view() is problem.view()

    def test_optable_accessor_matches_tables(self):
        problem = motivational_problem("S1")
        view = problem.view()
        for job in problem.jobs:
            assert view.optable(job.application) is problem.optable_for(job)

    def test_unknown_application_raises_scheduling_error(self):
        from repro.exceptions import SchedulingError

        view = motivational_problem("S1").view()
        with pytest.raises(SchedulingError):
            view.optable("nope")

    def test_fitting_indices_and_weight_rows_are_consistent(self):
        problem = motivational_problem("S1")
        view = problem.view()
        application = problem.jobs[0].application
        fitting = view.fitting_indices(application)
        rows = view.mmkp_weight_rows(application)
        assert len(fitting) == len(rows)
        table = view.optable(application)
        capacity = view.capacity
        for index, row in zip(fitting, rows):
            assert row == tuple(float(c) for c in table.resources[index])
            assert all(r <= c for r, c in zip(table.resources[index], capacity))

    def test_signature_is_content_based(self):
        a = motivational_problem("S1")
        b = motivational_problem("S1")
        assert a.view().signature() == b.view().signature()
        c = motivational_problem("S2")
        assert a.view().signature() != c.view().signature()


class TestLagrangianMemo:
    def test_repeated_activations_hit_the_cache(self):
        scheduler = MMKPLRScheduler()
        with columnar_override(True):
            first = scheduler.schedule(motivational_problem("S1"))
            misses_after_first = scheduler.solve_cache.misses
            assert misses_after_first > 0
            second = scheduler.schedule(motivational_problem("S1"))
            assert scheduler.solve_cache.hits > 0
            assert scheduler.solve_cache.misses == misses_after_first
        # Cached relaxations replay bit-identically.
        assert first.schedule == second.schedule
        assert first.energy == second.energy
        assert dict(first.statistics) == dict(second.statistics)

    def test_cache_is_per_scheduler_instance(self):
        # Independent schedulers must not contaminate each other's wall-time
        # (the seed tier-1 suite compares LR vs MDF timings).
        with columnar_override(True):
            warm = MMKPLRScheduler()
            warm.schedule(motivational_problem("S1"))
            fresh = MMKPLRScheduler()
            assert fresh.solve_cache.info() == {"entries": 0, "hits": 0, "misses": 0}

    def test_shared_cache_can_be_injected(self):
        shared = SolveCache()
        with columnar_override(True):
            MMKPLRScheduler(solve_cache=shared).schedule(motivational_problem("S1"))
            populated = len(shared)
            assert populated > 0
            second = MMKPLRScheduler(solve_cache=shared)
            second.schedule(motivational_problem("S1"))
            assert shared.hits > 0

    def test_cached_path_matches_seed_path(self):
        problem = motivational_problem("S2")
        with columnar_override(True):
            scheduler = MMKPLRScheduler()
            columnar = scheduler.schedule(problem)
            cached = scheduler.schedule(motivational_problem("S2"))
        with columnar_disabled():
            seed = MMKPLRScheduler().schedule(motivational_problem("S2"))
        for result in (columnar, cached):
            assert result.schedule == seed.schedule
            assert result.energy == seed.energy
            assert dict(result.statistics) == dict(seed.statistics)
            assert result.assignment == seed.assignment
