"""The incremental Pareto frontier vs the seed's pairwise reference."""

import random

import pytest

from repro.dse.pareto import (
    DEFAULT_TOLERANCE,
    pareto_front,
    pareto_front_reference,
)
from repro.optable import ParetoFrontier, pareto_select


def reference_select(vectors, tolerance):
    """Index-level reimplementation of the seed's pairwise filter."""

    def dominates(a, b):
        return all(x <= y + tolerance for x, y in zip(a, b)) and any(
            x < y - tolerance for x, y in zip(a, b)
        )

    survivors = []
    seen = []
    for index, vector in enumerate(vectors):
        if any(
            dominates(other, vector)
            for j, other in enumerate(vectors)
            if j != index
        ):
            continue
        if vector in seen:
            continue
        seen.append(vector)
        survivors.append(index)
    return survivors


class TestParetoSelect:
    def test_simple_front(self):
        assert pareto_select([(1, 5), (2, 2), (3, 3)]) == [0, 1]

    def test_duplicates_collapse_to_first_occurrence(self):
        assert pareto_select([(2, 2), (1, 5), (2, 2)]) == [0, 1]

    def test_matches_reference_on_random_instances(self):
        rng = random.Random(2020)
        for _ in range(300):
            n = rng.randrange(1, 50)
            dim = rng.randrange(1, 4)
            vectors = [
                tuple(float(rng.randrange(0, 7)) for _ in range(dim))
                for _ in range(n)
            ]
            for tolerance in (0.0, DEFAULT_TOLERANCE):
                assert pareto_select(vectors, tolerance) == reference_select(
                    vectors, tolerance
                ), vectors

    def test_mixed_lengths_raise(self):
        with pytest.raises(ValueError):
            pareto_select([(1.0, 2.0), (1.0,)])

    def test_per_dimension_tolerances(self):
        # The second vector beats the first on dim 2 but is 1e-13 worse on
        # dim 1: with an exact first dimension it does not dominate; with
        # slack on both dimensions it does.
        vectors = [(1.0, 2.0), (1.0 + 1e-13, 1.0)]
        assert pareto_select(vectors, (0.0, 1e-12)) == [0, 1]
        assert pareto_select(vectors, (1e-12, 1e-12)) == [1]


class TestParetoFrontier:
    def test_incremental_eviction(self):
        frontier = ParetoFrontier(2)
        assert frontier.add("a", (3.0, 3.0))
        assert frontier.add("b", (1.0, 4.0))
        assert len(frontier) == 2
        # Dominates "a" but not "b".
        assert frontier.add("c", (2.0, 2.0))
        assert frontier.survivors() == ["b", "c"]

    def test_dominated_candidate_rejected(self):
        frontier = ParetoFrontier(2)
        frontier.add("a", (1.0, 1.0))
        assert not frontier.add("b", (2.0, 2.0))
        assert frontier.survivors() == ["a"]

    def test_near_tie_chain_with_tolerance_matches_reference(self):
        # y dominates x, z dominates y, but z does *not* dominate x under the
        # tolerance (z is over-slack worse than x on dim 2): the verification
        # pass must still drop x (the reference drops it because y —
        # dominated itself — dominates x).
        tol = 0.5
        x, y, z = (2.0, 0.0), (1.4, 0.4), (0.8, 0.9)
        for order in ([x, y, z], [z, y, x], [y, z, x]):
            frontier = ParetoFrontier(2, tol)
            for vector in order:
                frontier.add(vector, vector)
            assert frontier.survivors() == [z], order

    def test_dimension_mismatch_raises(self):
        frontier = ParetoFrontier(2)
        with pytest.raises(ValueError):
            frontier.add("a", (1.0,))


class TestParetoFrontFunction:
    def test_behaves_like_reference(self):
        rng = random.Random(7)
        for _ in range(100):
            items = [
                (rng.randrange(0, 5), rng.randrange(0, 5)) for _ in range(rng.randrange(1, 30))
            ]
            assert pareto_front(items, objectives=lambda p: p) == pareto_front_reference(
                items, objectives=lambda p: p
            )

    def test_exposed_tolerance_constant(self):
        assert DEFAULT_TOLERANCE == 1e-12

    def test_tie_key_makes_representative_order_independent(self):
        # Two items with identical costs but different payloads: without a
        # tie_key the input order picks the survivor; with one, the smallest
        # key wins regardless of shuffling.
        a = {"name": "a", "cost": (1.0, 1.0)}
        b = {"name": "b", "cost": (1.0, 1.0)}
        cost = lambda item: item["cost"]  # noqa: E731
        assert pareto_front([a, b], objectives=cost) == [a]
        assert pareto_front([b, a], objectives=cost) == [b]
        key = lambda item: item["name"]  # noqa: E731
        assert pareto_front([a, b], objectives=cost, tie_key=key) == [a]
        assert pareto_front([b, a], objectives=cost, tie_key=key) == [a]

    def test_mixed_lengths_raise(self):
        with pytest.raises(ValueError):
            pareto_front([(1, 2), (1,)], objectives=lambda p: p)
