"""Bit-identity of the columnar kernel against the seed list paths.

Acceptance contract of the ``repro.optable`` refactor: schedules, batch
fingerprints and energy accounting must be *identical* — not merely close —
between the columnar fast paths and the seed ``list[OperatingPoint]`` paths,
on both the motivational workload and the (scaled) Table III census.
"""

import pytest

from repro.dse import paper_operating_points, reduced_tables
from repro.optable import columnar_disabled
from repro.platforms import odroid_xu4
from repro.runtime.manager import RuntimeManager
from repro.schedulers import ExMemScheduler, MMKPLRScheduler, MMKPMDFScheduler
from repro.workload import EvaluationSuite
from repro.workload.motivational import (
    motivational_platform,
    motivational_problem,
    motivational_tables,
    motivational_trace,
)
from repro.workload.suite import scaled_census

SCHEDULERS = [MMKPMDFScheduler, MMKPLRScheduler, ExMemScheduler]


@pytest.fixture(scope="module")
def census_problems():
    platform = odroid_xu4()
    tables = reduced_tables(paper_operating_points(platform), max_points=6)
    suite = EvaluationSuite.generate(tables, scaled_census(0.03), seed=2020)
    return [case.problem(platform, tables) for case in suite.cases]


def assert_results_identical(columnar, seed):
    assert (columnar.schedule is None) == (seed.schedule is None)
    if columnar.schedule is not None:
        assert columnar.schedule == seed.schedule
        segments = list(zip(columnar.schedule, seed.schedule))
        for fast_segment, seed_segment in segments:
            # Schedule equality is tolerance-based; the refactor promises the
            # exact same floats, so compare boundaries bit-for-bit too.
            assert fast_segment.start == seed_segment.start
            assert fast_segment.end == seed_segment.end
        assert columnar.energy == seed.energy
    assert columnar.assignment == seed.assignment
    assert dict(columnar.statistics) == dict(seed.statistics)


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    @pytest.mark.parametrize("scenario", ["S1", "S2"])
    def test_motivational_scenarios(self, scheduler_cls, scenario):
        columnar = scheduler_cls().schedule(motivational_problem(scenario))
        with columnar_disabled():
            seed = scheduler_cls().schedule(motivational_problem(scenario))
        assert_results_identical(columnar, seed)

    @pytest.mark.parametrize("scheduler_cls", [MMKPMDFScheduler, MMKPLRScheduler])
    def test_census_workload(self, scheduler_cls, census_problems):
        scheduler = scheduler_cls()
        columnar = [scheduler.schedule(p) for p in census_problems]
        with columnar_disabled():
            seed = [scheduler.schedule(p) for p in census_problems]
        for fast, slow in zip(columnar, seed):
            assert_results_identical(fast, slow)

    def test_census_workload_exmem_sample(self, census_problems):
        # EX-MEM is exponential; a sample keeps the equivalence suite fast.
        # Note: EX-MEM's internals were columnarised unconditionally (the
        # toggle does not switch it back to seed code), so this asserts
        # determinism across modes — its behaviour vs the seed is pinned by
        # tests/schedulers/test_exmem.py and the cross-scheduler suite.
        scheduler = ExMemScheduler(max_configs_per_job=4)
        for problem in census_problems[:10]:
            columnar = scheduler.schedule(problem)
            with columnar_disabled():
                seed = scheduler.schedule(problem)
            assert_results_identical(columnar, seed)


class TestPackerBaseScheduleParity:
    def test_duplicate_mapping_in_base_schedule_raises_in_both_modes(self):
        from repro.core.segment import JobMapping, MappingSegment, Schedule
        from repro.exceptions import SchedulingError
        from repro.schedulers.edf_packer import pack_jobs_edf

        problem = motivational_problem("S1")
        job = problem.jobs[0]
        base = Schedule([MappingSegment(problem.now, problem.now + 1.0, [JobMapping(job, 0)])])
        for mode in (True, False):
            from repro.optable import columnar_override

            with columnar_override(mode):
                with pytest.raises(SchedulingError, match="already mapped"):
                    pack_jobs_edf(problem, {job.name: 0}, base_schedule=base)


class TestRuntimeManagerEquivalence:
    @pytest.mark.parametrize("scenario", ["S1", "S2"])
    @pytest.mark.parametrize("engine", ["events", "linear"])
    def test_motivational_runs(self, scenario, engine):
        def run():
            manager = RuntimeManager.from_components(
                motivational_platform(),
                motivational_tables(),
                MMKPMDFScheduler(),
                engine=engine,
            )
            return manager.run(motivational_trace(scenario))

        columnar = run()
        with columnar_disabled():
            seed = run()
        assert columnar.total_energy == seed.total_energy
        assert len(columnar.timeline) == len(seed.timeline)
        for fast, slow in zip(columnar.timeline, seed.timeline):
            assert fast.start == slow.start
            assert fast.end == slow.end
            assert fast.energy == slow.energy
            assert fast.job_configs == slow.job_configs
        assert columnar.job_energy == seed.job_energy
        assert columnar.cluster_energy == seed.cluster_energy
        assert [o.accepted for o in columnar.outcomes] == [
            o.accepted for o in seed.outcomes
        ]
        assert [o.completion_time for o in columnar.outcomes] == [
            o.completion_time for o in seed.outcomes
        ]


class TestBatchFingerprintEquivalence:
    def test_service_batch_fingerprints_match(self):
        from repro.service import SimulationJob, SimulationService, TraceSpec

        jobs = [
            SimulationJob(
                f"job-{i}",
                scheduler=scheduler,
                trace_spec=TraceSpec(arrival_rate=0.25, num_requests=6, seed=40 + i),
            )
            for i, scheduler in enumerate(["mmkp-mdf", "mmkp-lr", "mmkp-mdf"])
        ]

        def fingerprint():
            service = SimulationService()
            return service.run_batch(jobs).fingerprint()

        columnar = fingerprint()
        with columnar_disabled():
            seed = fingerprint()
        assert columnar == seed
