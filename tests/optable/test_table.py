"""OpTable columns, aggregates, fingerprinting and interning."""

import pytest

from repro.core.config import ConfigTable, OperatingPoint
from repro.optable import (
    OpTable,
    as_optable,
    fingerprint_points,
    intern_info,
    iter_point_rows,
    optables_for,
    to_config_table,
)
from repro.platforms.resources import ResourceVector


def points_fixture():
    return [
        OperatingPoint(ResourceVector([2, 0]), 10.0, 4.0),
        OperatingPoint(ResourceVector([0, 1]), 5.0, 7.5),
        OperatingPoint(ResourceVector([2, 1]), 4.0, 9.0),
        OperatingPoint(ResourceVector([1, 1]), 5.0, 7.5),
    ]


class TestColumns:
    def test_columns_mirror_the_rows(self):
        table = as_optable(points_fixture())
        assert table.times == (10.0, 5.0, 4.0, 5.0)
        assert table.energies == (4.0, 7.5, 9.0, 7.5)
        assert table.resources == ((2, 0), (0, 1), (2, 1), (1, 1))
        assert table.scales == (1.0, 1.0, 1.0, 1.0)
        assert table.powers[0] == 4.0 / 10.0
        assert table.dimension == 2
        assert table.demand_columns == ((2, 0, 2, 1), (0, 1, 1, 1))

    def test_container_protocol(self):
        points = points_fixture()
        table = as_optable(points)
        assert len(table) == 4
        assert list(table) == list(points)
        assert table[2] is table.points[2]


class TestAggregates:
    def test_orders_and_minima(self):
        table = as_optable(points_fixture())
        # Stable energy order: the two 7.5-J points keep index order.
        assert table.order_by_energy == (0, 1, 3, 2)
        # Makespan order breaks the 5.0-s tie by energy, then index.
        assert table.order_by_makespan == (2, 1, 3, 0)
        assert table.argmin_time == 2
        assert table.argmin_energy == 0
        assert table.min_time == 4.0
        assert table.min_energy == 4.0
        assert table.max_demand == (2, 1)

    def test_pareto_index_drops_dominated_points(self):
        # Index 3 ((1,1) @ 5.0s/7.5J) is dominated by index 1 ((0,1) with the
        # same time and energy); the appended index 4 is a slower twin of
        # index 2.  Both must drop out of the Pareto index.
        points = points_fixture() + [
            OperatingPoint(ResourceVector([2, 1]), 5.0, 9.0)
        ]
        table = as_optable(points)
        assert table.pareto_index == (0, 1, 2)

    def test_fitting_indices(self):
        table = as_optable(points_fixture())
        assert table.fitting_indices((2, 0)) == (0,)
        assert table.fitting_indices((2, 1)) == (0, 1, 2, 3)
        assert table.fitting_indices((0, 0)) == ()


class TestInterning:
    def test_identical_point_lists_share_one_instance(self):
        first = as_optable(points_fixture())
        second = as_optable(points_fixture())
        assert first is second

    def test_interning_ignores_application_names(self):
        a = ConfigTable("app-a", points_fixture())
        b = ConfigTable("app-b", points_fixture())
        assert a.optable is b.optable

    def test_config_table_optable_is_cached(self):
        table = ConfigTable("app", points_fixture())
        assert table.optable is table.optable

    def test_fingerprint_distinguishes_content(self):
        base = points_fixture()
        changed = list(base)
        changed[0] = OperatingPoint(ResourceVector([2, 0]), 10.0, 4.0001)
        assert fingerprint_points(base) != fingerprint_points(changed)
        scale = list(base)
        scale[0] = OperatingPoint(ResourceVector([2, 0]), 10.0, 4.0, frequency_scale=0.8)
        assert fingerprint_points(base) != fingerprint_points(scale)

    def test_intern_info_counts(self):
        before = intern_info()
        as_optable(points_fixture())
        after = intern_info()
        assert after["tables"] >= before["tables"]
        assert after["hits"] + after["misses"] > before["hits"] + before["misses"]

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            as_optable([])


class TestAdapters:
    def test_round_trip_through_config_table(self):
        table = as_optable(points_fixture())
        config = to_config_table(table, "app")
        assert isinstance(config, ConfigTable)
        assert config.points == table.points
        assert config.optable is table

    def test_optables_for_mapping(self):
        tables = {
            "a": ConfigTable("a", points_fixture()),
            "b": ConfigTable("b", points_fixture()[:2]),
        }
        columnar = optables_for(tables)
        assert set(columnar) == {"a", "b"}
        assert all(isinstance(t, OpTable) for t in columnar.values())

    def test_iter_point_rows(self):
        rows = list(iter_point_rows(points_fixture()))
        assert rows[0] == (0, (2, 0), 10.0, 4.0)
        assert len(rows) == 4
