"""End-to-end tests of the gateway daemon over real sockets.

Every test talks to an :class:`InProcessGateway` (daemon thread, ephemeral
port) through the blocking :class:`GatewayClient` — the same path
``repro-rm submit`` takes.
"""

import threading

import pytest

from repro.api import (
    ExperimentSpec,
    RunEvent,
    RunEventKind,
    SchedulerSpec,
    Session,
    WorkloadSpec,
)
from repro.gateway.client import GatewayClient, GatewayError
from repro.gateway.protocol import canonical_events
from repro.gateway.server import GatewayConfig, InProcessGateway

#: The four paper schedulers, each run on the motivational workload.
ALL_SCHEDULERS = ("fixed", "mmkp-mdf", "mmkp-lr", "ex-mem")


def _scenario_spec(scheduler: str = "mmkp-mdf", name: str | None = None):
    return ExperimentSpec(
        name=name or f"gw-{scheduler}",
        workload=WorkloadSpec.scenario("S1"),
        scheduler=SchedulerSpec(name=scheduler),
    )


def _slow_spec(name: str = "gw-slow", requests: int = 400):
    return ExperimentSpec(
        name=name,
        workload=WorkloadSpec.poisson(
            arrival_rate=0.5, num_requests=requests, seed=1
        ),
    )


@pytest.fixture(scope="module")
def gateway():
    with InProcessGateway(GatewayConfig(port=0)) as gw:
        yield gw


@pytest.fixture(scope="module")
def client(gateway):
    return GatewayClient(gateway.base_url)


class TestEquivalence:
    """Remote execution is an equivalence, not an approximation."""

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_gateway_run_matches_in_process_for_every_scheduler(
        self, client, scheduler
    ):
        spec = _scenario_spec(scheduler)

        reference_events = []
        reference_log = Session.from_spec(spec).run(
            on_event=reference_events.append
        )
        reference_wire = canonical_events(
            event.to_dict() for event in reference_events
        )

        status = client.run(spec)
        remote_wire = canonical_events(client.events(status["id"]))

        # Same ordered event sequence (wall-clock search times excluded)...
        assert remote_wire == reference_wire
        # ...and the same deterministic result fingerprint.
        assert status["result"]["fingerprint"] == reference_log.fingerprint()
        assert status["result"] == reference_log.summary()

    def test_batch_fingerprint_matches_in_process(self, client):
        # Trials reseed the workload, so the batch spec must be seedable
        # (the motivational scenarios are fixed traces).
        spec = ExperimentSpec(
            name="gw-batch",
            workload=WorkloadSpec.poisson(
                arrival_rate=0.25, num_requests=8, seed=5
            ),
        )
        reference = Session.from_spec(spec).run_batch(trials=3)
        record = client.submit_batch(spec, trials=3)
        status = client.wait_batch(record["id"])
        assert status["state"] == "done"
        assert status["result"]["fingerprint"] == reference.fingerprint()

    def test_warm_named_session_reproduces_the_cold_result(self, client):
        spec = _scenario_spec("mmkp-mdf", name="gw-warm")
        cold = client.run(spec, session="warm-0")
        warm = client.run(spec, session="warm-0")
        assert warm["result"]["fingerprint"] == cold["result"]["fingerprint"]
        assert canonical_events(client.events(warm["id"]))[:-1] == \
            canonical_events(client.events(cold["id"]))[:-1]
        # END differs only in the (stripped) wall-clock-free summary, which
        # must be identical too:
        assert client.run_status(warm["id"])["result"] == \
            client.run_status(cold["id"])["result"]

    def test_remote_events_rebuild_as_typed_run_events(self, client):
        spec = _scenario_spec("fixed", name="gw-typed")
        status = client.run(spec)
        events = [RunEvent.from_dict(p) for p in client.events(status["id"])]
        assert events[0].kind is RunEventKind.ARRIVAL
        assert events[-1].kind is RunEventKind.END
        times = [event.time for event in events]
        assert times == sorted(times)


class TestStreaming:
    def test_sse_replay_supports_resume_offsets(self, client):
        status = client.run(_scenario_spec("fixed", name="gw-resume"))
        full = list(client.events(status["id"]))
        assert len(full) >= 4
        tail = list(client.events(status["id"], start=len(full) - 2))
        assert tail == full[-2:]

    def test_live_stream_follows_a_running_run(self, client):
        record = client.submit_run(_slow_spec("gw-live", requests=30))
        seen = []
        for payload in client.events(record["id"]):
            seen.append(payload["kind"])
        assert seen[-1] == "end"
        assert client.run_status(record["id"])["state"] == "done"

    def test_failed_run_streams_a_terminal_error_frame(self, client):
        record = client.submit_run(_slow_spec("gw-doomed"), timeout_s=0.005)
        status = client.wait_run(record["id"])
        assert status["state"] == "failed"
        assert status["error"]["error"]["type"] == "timeout"
        frames = list(client.events(record["id"]))
        assert frames[-1]["kind"] == "error"
        assert frames[-1]["data"]["error"]["type"] == "timeout"


class TestHttpSurface:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert set(health["records"]) == {"queued", "running", "done", "failed"}

    def test_metrics_exposition(self, client):
        client.run(_scenario_spec("fixed", name="gw-metrics"))
        text = client.metrics_text()
        assert "# TYPE repro_gateway_http_requests counter" in text
        assert "repro_gateway_runs_completed" in text
        assert "repro_gateway_running_peak" in text
        assert 'repro_gateway_tenant_running_peak{tenant="default"}' in text

    def test_unknown_run_is_404(self, client):
        with pytest.raises(GatewayError) as info:
            client.run_status("run-999999")
        assert info.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(GatewayError) as info:
            client._request("DELETE", "/runs/run-000001")
        assert info.value.status == 405

    def test_unknown_route_is_404(self, client):
        with pytest.raises(GatewayError) as info:
            client._request("GET", "/nope")
        assert info.value.status == 404

    def test_malformed_body_is_400(self, client):
        with pytest.raises(GatewayError) as info:
            client._request("POST", "/runs", {"spec": "not an object"})
        assert info.value.status == 400
        assert info.value.body["error"]["type"] == "protocol"

    def test_submit_failure_is_isolated_per_run(self, client):
        """A failed run never poisons the daemon for the next one."""
        record = client.submit_run(_slow_spec("gw-fail"), timeout_s=0.001)
        assert client.wait_run(record["id"])["state"] == "failed"
        ok = client.run(_scenario_spec("fixed", name="gw-after-fail"))
        assert ok["state"] == "done"


class TestConcurrencyAndFairness:
    def test_many_concurrent_clients_respect_tenant_limits(self):
        """12 concurrent clients over 3 tenants: everything completes, no
        errors, and the per-tenant/global concurrency peaks never exceed
        the configured limits — the excess queued instead of failing."""
        config = GatewayConfig(port=0, max_concurrent=4, max_per_tenant=2)
        with InProcessGateway(config) as gateway:
            results = []
            errors = []

            def one_client(index):
                tenant = f"tenant-{index % 3}"
                try:
                    client = GatewayClient(gateway.base_url, tenant=tenant)
                    status = client.run(
                        _scenario_spec("mmkp-mdf", name=f"gw-par-{index}")
                    )
                    results.append(status["result"]["fingerprint"])
                except BaseException as error:  # surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=one_client, args=(i,)) for i in range(12)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert errors == []
            assert len(results) == 12

            admission = gateway.server.admission
            assert admission.admitted == 12
            assert admission.peak_total <= 4
            assert all(
                peak <= 2 for peak in admission.peak_per_tenant.values()
            )
            assert admission.running_total == 0
            assert admission.queued_total == 0

    def test_queue_timeout_fails_the_submission_not_the_daemon(self):
        config = GatewayConfig(
            port=0, max_concurrent=1, max_per_tenant=1, queue_timeout_s=0.01
        )
        with InProcessGateway(config) as gateway:
            client = GatewayClient(gateway.base_url)
            blocker = client.submit_run(_slow_spec("gw-blocker"))
            starved = client.submit_run(_scenario_spec(name="gw-starved"))
            status = client.wait_run(starved["id"])
            assert status["state"] == "failed"
            assert status["error"]["error"]["type"] == "timeout"
            # The blocking run still finishes untouched.
            assert client.wait_run(blocker["id"])["state"] == "done"


class TestGracefulDrain:
    def test_draining_refuses_new_work_and_finishes_in_flight(self):
        with InProcessGateway(GatewayConfig(port=0)) as gateway:
            client = GatewayClient(gateway.base_url)
            in_flight = client.submit_run(_slow_spec("gw-drain"))

            flipped = threading.Event()

            def flip():
                gateway.server.draining = True
                flipped.set()

            gateway._loop.call_soon_threadsafe(flip)
            assert flipped.wait(timeout=10)

            with pytest.raises(GatewayError) as info:
                client.submit_run(_scenario_spec(name="gw-refused"))
            assert info.value.status == 503
            assert info.value.body["error"]["type"] == "draining"
            with pytest.raises(GatewayError) as batch_info:
                client.submit_batch(_scenario_spec(name="gw-refused-b"))
            assert batch_info.value.status == 503

            health = client.healthz()
            assert health["status"] == "draining"

            # The in-flight run is never abandoned.
            assert client.wait_run(in_flight["id"])["state"] == "done"
        # __exit__ completed the drain: the daemon thread is gone.
        assert not gateway._thread.is_alive()


class TestCliSubmit:
    def test_repro_rm_submit_round_trip(self, gateway, tmp_path, capsys):
        from repro.cli import main

        spec = _scenario_spec("mmkp-mdf", name="gw-cli")
        path = tmp_path / "spec.json"
        spec.save(path)
        rc = main(["submit", str(path), "--url", gateway.base_url])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gw-cli" in out and "fingerprint" in out
        reference = Session.from_spec(spec).run()
        assert reference.fingerprint() in out

    def test_repro_rm_submit_stream(self, gateway, tmp_path, capsys):
        from repro.cli import main

        spec = _scenario_spec("fixed", name="gw-cli-stream")
        path = tmp_path / "spec.json"
        spec.save(path)
        rc = main(["submit", str(path), "--url", gateway.base_url, "--stream"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "arrival" in out and "finish" in out
