"""Gateway + content store: shared warm store, /metrics series, obs counts."""

import pytest

from repro.api import ExperimentSpec, SchedulerSpec, Session, WorkloadSpec
from repro.gateway.client import GatewayClient
from repro.gateway.server import GatewayConfig, GatewayServer, InProcessGateway
from repro.obs import Tracer
from repro.store import ContentStore


def _spec(name: str = "gw-store") -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        workload=WorkloadSpec.scenario("S1"),
        scheduler=SchedulerSpec(name="mmkp-mdf"),
    )


@pytest.fixture()
def gateway(tmp_path):
    config = GatewayConfig(port=0, store_path=str(tmp_path / "gateway-store.db"))
    with InProcessGateway(config) as gw:
        yield gw


class TestGatewayStore:
    def test_store_opens_from_config_and_runs_stay_equivalent(self, gateway):
        client = GatewayClient(gateway.base_url)
        status = client.run(_spec())
        reference = Session.from_spec(_spec()).run()
        assert status["result"]["fingerprint"] == reference.fingerprint()

    def test_batches_fill_the_store_and_metrics_expose_it(self, gateway):
        client = GatewayClient(gateway.base_url)
        # Trials reseed the workload, so the batch spec must be seedable
        # (the motivational scenarios are fixed traces).
        spec = ExperimentSpec(
            name="gw-store-batch",
            workload=WorkloadSpec.poisson(arrival_rate=0.25, num_requests=8, seed=5),
            scheduler=SchedulerSpec(name="mmkp-mdf"),
        )
        submitted = client.submit_batch(spec, trials=3)
        done = client.wait_batch(submitted["id"])
        assert done["state"] == "done"

        server = gateway.server
        stats = server.content_store.stats()
        assert stats["namespaces"], "batch never wrote to the gateway store"

        text = client.metrics_text()
        assert "# TYPE repro_store_puts counter" in text
        assert 'repro_store_puts{kind="activation"}' in text
        assert "# TYPE repro_store_hits counter" in text

    def test_no_store_no_series(self):
        with InProcessGateway(GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.base_url)
            client.run(_spec("gw-no-store"))
            assert "repro_store_" not in client.metrics_text()

    def test_env_escape_hatch_disables_the_configured_store(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE", "0")
        server = GatewayServer(
            GatewayConfig(port=0, store_path=str(tmp_path / "ignored.db"))
        )
        assert server.content_store is None
        assert not (tmp_path / "ignored.db").exists()


class TestStoreObsCounts:
    def test_hits_and_misses_reach_an_active_tracer(self):
        store = ContentStore.in_memory()
        with Tracer(name="store-counts") as tracer:
            store.get("solve", "absent")
            store.put("solve", "k", "v")
            store.get("solve", "k")
        counts = {}
        for span in tracer.span_dicts():
            for name, value in span.get("counts", {}).items():
                counts[name] = counts.get(name, 0) + value
        assert counts.get("store.solve.miss") == 1
        assert counts.get("store.solve.hit") == 1
        assert counts.get("store.solve.puts") == 1
