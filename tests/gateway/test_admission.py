"""Tests of the fair admission controller (event-loop driven, no sockets)."""

import asyncio

import pytest

from repro.gateway.admission import AdmissionController, AdmissionTimeout


def run(coroutine):
    return asyncio.run(coroutine)


class TestLimits:
    def test_global_limit_bounds_concurrency(self):
        async def scenario():
            controller = AdmissionController(max_concurrent=2, max_per_tenant=2)
            observed_peak = 0
            running = 0

            async def worker(tenant):
                nonlocal observed_peak, running
                async with controller.slot(tenant):
                    running += 1
                    observed_peak = max(observed_peak, running)
                    await asyncio.sleep(0.01)
                    running -= 1

            await asyncio.gather(*(worker(f"t{i}") for i in range(6)))
            assert observed_peak == 2
            assert controller.peak_total == 2
            assert controller.admitted == 6
            assert controller.running_total == 0
            assert controller.queued_total == 0

        run(scenario())

    def test_per_tenant_limit_holds_even_with_free_global_slots(self):
        async def scenario():
            controller = AdmissionController(max_concurrent=8, max_per_tenant=1)

            async def worker():
                async with controller.slot("solo"):
                    await asyncio.sleep(0.005)

            await asyncio.gather(*(worker() for _ in range(4)))
            assert controller.peak_per_tenant["solo"] == 1
            assert controller.peak_total == 1

        run(scenario())

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionController(max_per_tenant=0)

    def test_release_without_acquire(self):
        controller = AdmissionController()
        with pytest.raises(RuntimeError, match="release without acquire"):
            controller.release("ghost")


class TestFairness:
    def test_flooding_tenant_cannot_starve_another(self):
        """Tenant A queues 4 runs before B submits one; with one global
        slot the grants must alternate A, B, A, ... — B runs second, not
        fifth."""

        async def scenario():
            controller = AdmissionController(max_concurrent=1, max_per_tenant=1)
            order = []

            async def worker(label, tenant):
                async with controller.slot(tenant):
                    order.append(label)
                    await asyncio.sleep(0)

            tasks = [
                asyncio.create_task(worker(f"a{i}", "tenant-a")) for i in range(4)
            ]
            await asyncio.sleep(0)  # let every A enqueue (a0 now runs)
            tasks.append(asyncio.create_task(worker("b0", "tenant-b")))
            await asyncio.gather(*tasks)
            assert order[0] == "a0"
            assert order.index("b0") < order.index("a3")
            # Within tenant A the FIFO order is preserved.
            a_order = [label for label in order if label.startswith("a")]
            assert a_order == ["a0", "a1", "a2", "a3"]

        run(scenario())

    def test_fifo_within_one_tenant(self):
        async def scenario():
            controller = AdmissionController(max_concurrent=1, max_per_tenant=1)
            order = []

            async def worker(index):
                async with controller.slot("one"):
                    order.append(index)
                    await asyncio.sleep(0)

            await asyncio.gather(*(worker(i) for i in range(5)))
            assert order == [0, 1, 2, 3, 4]

        run(scenario())


class TestTimeouts:
    def test_queued_waiter_times_out(self):
        async def scenario():
            controller = AdmissionController(max_concurrent=1, max_per_tenant=1)
            await controller.acquire("a")
            with pytest.raises(AdmissionTimeout, match="no run slot"):
                await controller.acquire("a", timeout_s=0.01)
            assert controller.timeouts == 1
            # The cancelled waiter is skipped at dispatch: releasing the
            # held slot must not grant it (nor corrupt the counters).
            controller.release("a")
            assert controller.running_total == 0
            # The lane still works afterwards.
            await controller.acquire("a", timeout_s=1.0)
            controller.release("a")

        run(scenario())

    def test_default_timeout_from_constructor(self):
        async def scenario():
            controller = AdmissionController(
                max_concurrent=1, max_per_tenant=1, queue_timeout_s=0.01
            )
            await controller.acquire("a")
            with pytest.raises(AdmissionTimeout):
                await controller.acquire("b")
            controller.release("a")

        run(scenario())
