"""Gateway trace propagation: per-run trace ids, span trees and /metrics.

Talks to a live :class:`InProcessGateway` over sockets, like
``test_server.py`` — tracing must survive the loop-thread / executor split,
not just the in-process facade.
"""

import pytest

from repro.api import ExperimentSpec, SchedulerSpec, Session, WorkloadSpec
from repro.gateway.client import GatewayClient, GatewayError
from repro.gateway.protocol import canonical_events
from repro.gateway.server import GatewayConfig, InProcessGateway
from repro.obs import PHASE_SPANS


def _spec(name: str = "gw-trace") -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        workload=WorkloadSpec.scenario("S1"),
        scheduler=SchedulerSpec(name="mmkp-mdf"),
    )


@pytest.fixture(scope="module")
def gateway():
    with InProcessGateway(GatewayConfig(port=0)) as gw:
        yield gw


@pytest.fixture(scope="module")
def client(gateway):
    return GatewayClient(gateway.base_url)


@pytest.fixture(scope="module")
def finished(client):
    """One completed traced run shared by the read-only assertions."""
    return client.run(_spec())


class TestTraceEndpoint:
    def test_status_envelope_echoes_the_minted_trace_id(self, finished):
        assert len(finished["trace_id"]) == 16

    def test_trace_returns_the_completed_span_tree(self, client, finished):
        trace = client.trace(finished["id"])
        assert trace["id"] == finished["id"]
        assert trace["trace_id"] == finished["trace_id"]
        assert trace["state"] == "done"
        names = {span["name"] for span in trace["spans"]}
        assert {"rm.run", "rm.arrival", "phase.solve", "solve"} <= names
        assert all(
            span["trace_id"] == finished["trace_id"] for span in trace["spans"]
        )

    def test_root_span_is_named_after_the_run(self, client, finished):
        spans = client.trace(finished["id"])["spans"]
        roots = [span for span in spans if span["parent_id"] is None]
        assert [root["name"] for root in roots] == [f"gateway:{finished['id']}"]

    def test_unknown_run_is_404(self, client):
        with pytest.raises(GatewayError) as excinfo:
            client.trace("no-such-run")
        assert excinfo.value.status == 404

    def test_distinct_runs_get_distinct_trace_ids(self, client, finished):
        other = client.run(_spec("gw-trace-2"))
        assert other["trace_id"] != finished["trace_id"]


class TestSseFrames:
    def test_every_frame_carries_the_trace_id(self, client, finished):
        frames = list(client.events(finished["id"]))
        assert frames
        assert {frame["trace_id"] for frame in frames} == {finished["trace_id"]}

    def test_canonical_events_strip_the_trace_id(self, client, finished):
        reference = []
        Session.from_spec(_spec()).run(on_event=reference.append)
        remote = canonical_events(client.events(finished["id"]))
        assert remote == canonical_events(e.to_dict() for e in reference)
        assert all("trace_id" not in event for event in remote)


class TestMetrics:
    def test_phase_durations_reach_the_exposition(self, client, finished):
        text = client.metrics_text()
        assert "# TYPE repro_gateway_phase_seconds summary" in text
        for phase in ("rm.arrival", "phase.solve", "solve"):
            assert phase in PHASE_SPANS
            assert f'repro_gateway_phase_seconds_count{{phase="{phase}"}}' in text
        assert 'quantile="0.9"' in text


class TestDisabled:
    def test_trace_runs_false_runs_untraced(self):
        with InProcessGateway(GatewayConfig(port=0, trace_runs=False)) as gw:
            client = GatewayClient(gw.base_url)
            status = client.run(_spec("gw-untraced"))
            assert "trace_id" not in status
            trace = client.trace(status["id"])
            assert trace["trace_id"] is None
            assert trace["spans"] == []
            frames = list(client.events(status["id"]))
            assert all("trace_id" not in frame for frame in frames)
            assert "repro_gateway_phase_seconds" not in client.metrics_text()

    def test_tracing_does_not_change_results(self, finished):
        reference = Session.from_spec(_spec()).run()
        assert finished["result"]["fingerprint"] == reference.fingerprint()
