"""Tests of the per-tenant session store (no sockets)."""

import dataclasses

from repro.api import ExperimentSpec, WorkloadSpec
from repro.gateway.store import SessionStore


def _spec(seed: int = 3) -> ExperimentSpec:
    return ExperimentSpec(
        name="store",
        workload=WorkloadSpec.poisson(arrival_rate=0.25, num_requests=4, seed=seed),
    )


class TestTenantIsolation:
    def test_each_tenant_owns_one_lazy_kernel_caches(self):
        store = SessionStore()
        a = store.caches_for("a")
        b = store.caches_for("b")
        assert a is store.caches_for("a")  # stable per tenant
        assert a is not b  # never shared across tenants
        assert store.tenants() == ["a", "b"]

    def test_anonymous_sessions_are_fresh_but_share_the_tenant_caches(self):
        store = SessionStore()
        first = store.session_for("a", None, _spec())
        second = store.session_for("a", None, _spec())
        assert first is not second
        assert first.kernel_caches is second.kernel_caches
        assert first.kernel_caches is store.caches_for("a")


class TestNamedSessions:
    def test_same_spec_reuses_the_stored_session(self):
        store = SessionStore()
        first = store.session_for("a", "warm", _spec())
        again = store.session_for("a", "warm", _spec())
        assert again is first

    def test_changed_spec_rebinds_the_name_but_keeps_the_caches(self):
        store = SessionStore()
        first = store.session_for("a", "warm", _spec(seed=3))
        rebound = store.session_for("a", "warm", _spec(seed=4))
        assert rebound is not first
        assert rebound.kernel_caches is first.kernel_caches
        assert store.named_sessions("a") == ["warm"]

    def test_same_name_in_different_tenants_is_distinct(self):
        store = SessionStore()
        a = store.session_for("a", "warm", _spec())
        b = store.session_for("b", "warm", _spec())
        assert a is not b
        assert a.kernel_caches is not b.kernel_caches

    def test_lru_eviction_of_named_sessions(self):
        store = SessionStore()
        limit = SessionStore.MAX_NAMED_SESSIONS
        spec = _spec()
        for index in range(limit + 2):
            named = dataclasses.replace(spec, name=f"store-{index}")
            store.session_for("a", f"s{index}", named)
        names = store.named_sessions("a")
        assert len(names) == limit
        assert "s0" not in names and "s1" not in names
        assert names[-1] == f"s{limit + 1}"
