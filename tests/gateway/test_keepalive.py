"""HTTP keep-alive behaviour of the gateway server and blocking client.

The server grants connection reuse only when the client asks for it
(``Connection: keep-alive``); error responses and SSE streams always close.
The client rides one cached socket across submit/poll calls and replaces it
transparently when the daemon drops it between requests.
"""

import socket
import threading
import urllib.parse

import pytest

from repro.api import ExperimentSpec, SchedulerSpec, WorkloadSpec
from repro.gateway.client import GatewayClient
from repro.gateway.server import GatewayConfig, InProcessGateway


@pytest.fixture(scope="module")
def gateway():
    with InProcessGateway(GatewayConfig(port=0)) as gw:
        yield gw


def _endpoint(gateway) -> tuple[str, int]:
    split = urllib.parse.urlsplit(gateway.base_url)
    return split.hostname, split.port


def _recv_response(sock: socket.socket) -> bytes:
    """Read one Content-Length-framed HTTP response off the socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        assert chunk, "server closed the connection mid-headers"
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(body) < length:
        chunk = sock.recv(4096)
        assert chunk, "server closed the connection mid-body"
        body += chunk
    return head + b"\r\n\r\n" + body


class TestServerKeepAlive:
    def test_two_requests_share_one_socket(self, gateway):
        request = (
            b"GET /healthz HTTP/1.1\r\n"
            b"Host: gateway\r\n"
            b"Connection: keep-alive\r\n"
            b"\r\n"
        )
        with socket.create_connection(_endpoint(gateway), timeout=10) as sock:
            sock.sendall(request)
            first = _recv_response(sock)
            assert b"Connection: keep-alive" in first
            assert b'"status"' in first
            sock.sendall(request)  # same socket, second request
            second = _recv_response(sock)
            assert b"Connection: keep-alive" in second
            assert b'"status"' in second

    def test_connection_close_remains_the_default(self, gateway):
        with socket.create_connection(_endpoint(gateway), timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: gateway\r\n\r\n")
            response = _recv_response(sock)
            assert b"Connection: close" in response
            assert sock.recv(4096) == b""  # server hung up

    def test_error_responses_close_even_when_keep_alive_requested(self, gateway):
        with socket.create_connection(_endpoint(gateway), timeout=10) as sock:
            sock.sendall(
                b"GET /no-such-route HTTP/1.1\r\n"
                b"Host: gateway\r\n"
                b"Connection: keep-alive\r\n"
                b"\r\n"
            )
            response = _recv_response(sock)
            assert response.startswith(b"HTTP/1.1 404")
            assert b"Connection: close" in response
            assert sock.recv(4096) == b""


class TestClientKeepAlive:
    def test_client_reuses_one_cached_connection(self, gateway):
        with GatewayClient(gateway.base_url) as client:
            client.healthz()
            cached = client._connection
            assert cached is not None
            local_port = cached.sock.getsockname()[1]
            for _ in range(3):
                client.healthz()
                client.metrics_text()
            assert client._connection is cached
            assert cached.sock.getsockname()[1] == local_port
        assert client._connection is None  # context manager released it

    def test_submit_poll_events_cycle_keeps_cached_socket(self, gateway):
        spec = ExperimentSpec(
            name="gw-keepalive",
            workload=WorkloadSpec.scenario("S1"),
            scheduler=SchedulerSpec(name="mmkp-mdf"),
        )
        with GatewayClient(gateway.base_url) as client:
            record = client.submit_run(spec)
            cached = client._connection
            status = client.wait_run(record["id"])
            assert status["state"] == "done"
            # SSE runs on its own throwaway connection; the cached socket
            # survives and serves the follow-up status request.
            assert list(client.events(record["id"]))
            assert client._connection is cached
            assert client.run_status(record["id"])["state"] == "done"


class TestStaleSocketRetry:
    def test_request_reconnects_once_when_cached_socket_goes_stale(self):
        listener = socket.create_server(("127.0.0.1", 0))
        peers = []

        def serve():
            # Advertise keep-alive but drop the socket after each response —
            # the shape of a daemon restart between two client requests.
            for _ in range(2):
                conn, _addr = listener.accept()
                with conn:
                    data = conn.recv(65536)
                    assert b"Connection: keep-alive" in data
                    body = b"{}\n"
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                        b"Connection: keep-alive\r\n"
                        b"\r\n" + body
                    )
                    peers.append(conn.getpeername())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        host, port = listener.getsockname()
        try:
            with GatewayClient(f"http://{host}:{port}", timeout=10) as client:
                assert client._request("GET", "/first") == {}
                assert client._request("GET", "/second") == {}
            thread.join(timeout=10)
            assert len(peers) == 2
            assert peers[0] != peers[1]  # second request used a new socket
        finally:
            listener.close()
