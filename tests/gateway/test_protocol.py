"""Unit tests of the gateway wire protocol (no sockets involved)."""

import io
import json

import pytest

from repro.api import ExperimentSpec, WorkloadSpec
from repro.gateway.protocol import (
    DEFAULT_TENANT,
    ProtocolError,
    canonical_events,
    error_body,
    error_from,
    iter_sse,
    parse_batch_submission,
    parse_run_submission,
    sse_frame,
)


def _spec_body(**extra) -> dict:
    spec = ExperimentSpec(
        name="proto", workload=WorkloadSpec.poisson(
            arrival_rate=0.25, num_requests=4, seed=7
        )
    )
    return {"spec": spec.to_dict(), **extra}


class TestRunSubmission:
    def test_minimal_body_defaults(self):
        submission = parse_run_submission(_spec_body())
        assert submission.tenant == DEFAULT_TENANT
        assert submission.session is None
        assert submission.engine is None
        assert submission.timeout_s is None
        assert submission.spec.name == "proto"

    def test_full_body(self):
        submission = parse_run_submission(
            _spec_body(tenant="acme", session="warm-1", engine="events",
                       timeout_s=30)
        )
        assert submission.tenant == "acme"
        assert submission.session == "warm-1"
        assert submission.engine == "events"
        assert submission.timeout_s == 30.0

    def test_missing_spec(self):
        with pytest.raises(ProtocolError, match="needs a 'spec'"):
            parse_run_submission({"tenant": "acme"})

    def test_invalid_spec_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="invalid experiment spec"):
            parse_run_submission({"spec": {"name": "x", "workload": {"kind": "?"}}})

    @pytest.mark.parametrize("tenant", ["", "a b", "a/b", "x" * 129, 7])
    def test_bad_tenant_names(self, tenant):
        with pytest.raises(ProtocolError):
            parse_run_submission(_spec_body(tenant=tenant))

    @pytest.mark.parametrize("timeout", ["soon", 0, -1, {}])
    def test_bad_timeouts(self, timeout):
        with pytest.raises(ProtocolError):
            parse_run_submission(_spec_body(timeout_s=timeout))

    def test_non_mapping_body(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_run_submission(["not", "a", "mapping"])


class TestBatchSubmission:
    def test_defaults_and_seeds(self):
        submission = parse_batch_submission(_spec_body(trials=3, seeds=[1, 2, 3]))
        assert submission.trials == 3
        assert submission.seeds == (1, 2, 3)
        assert parse_batch_submission(_spec_body()).trials == 1

    @pytest.mark.parametrize("trials", [0, -2, "three", 1.5])
    def test_bad_trials(self, trials):
        with pytest.raises(ProtocolError, match="trials"):
            parse_batch_submission(_spec_body(trials=trials))

    @pytest.mark.parametrize("seeds", ["123", [1, "x"], {"a": 1}])
    def test_bad_seeds(self, seeds):
        with pytest.raises(ProtocolError, match="seeds"):
            parse_batch_submission(_spec_body(seeds=seeds))


class TestCanonicalEvents:
    def test_wall_clock_fields_are_stripped(self):
        events = [
            {"kind": "admit", "time": 1.0, "request": "r0",
             "data": {"search_time": 0.123}},
            {"kind": "reject", "time": 2.0, "request": "r1",
             "data": {"search_time": 0.456, "reason": "budget"}},
        ]
        canonical = canonical_events(events)
        assert canonical == [
            {"kind": "admit", "time": 1.0, "request": "r0", "data": {}},
            {"kind": "reject", "time": 2.0, "request": "r1",
             "data": {"reason": "budget"}},
        ]
        # The originals are untouched (canonicalisation copies).
        assert events[0]["data"] == {"search_time": 0.123}

    def test_missing_data_is_tolerated(self):
        assert canonical_events([{"kind": "finish", "time": 1.0}]) == [
            {"kind": "finish", "time": 1.0, "data": {}}
        ]


class TestErrorEnvelopes:
    def test_error_body_shape(self):
        assert error_body("timeout", "too slow") == {
            "error": {"type": "timeout", "message": "too slow"}
        }

    def test_error_from_protocol_error(self):
        body = error_from(ProtocolError("bad tenant"))
        assert body["error"]["type"] == "protocol"

    def test_error_from_generic_exception(self):
        body = error_from(ValueError("nope"))
        assert body["error"] == {"type": "ValueError", "message": "nope"}


class TestSse:
    def test_frame_layout(self):
        frame = sse_frame({"kind": "arrival", "time": 1.0}, 7)
        text = frame.decode("utf-8")
        lines = text.split("\n")
        assert lines[0] == "id: 7"
        assert lines[1] == "event: arrival"
        assert lines[2].startswith("data: ")
        assert json.loads(lines[2][6:]) == {"kind": "arrival", "time": 1.0}
        assert text.endswith("\n\n")

    def test_iter_sse_inverts_frames(self):
        payloads = [
            {"kind": "arrival", "time": 1.0, "request": "r0", "data": {}},
            {"kind": "end", "time": 2.0, "data": {"log": {"requests": 1}}},
        ]
        wire = b"".join(
            sse_frame(payload, index) for index, payload in enumerate(payloads)
        )
        assert list(iter_sse(io.BytesIO(wire))) == payloads

    def test_iter_sse_handles_a_truncated_final_frame(self):
        wire = b'id: 0\nevent: arrival\ndata: {"kind": "arrival", "time": 1.0}'
        assert list(iter_sse(io.BytesIO(wire))) == [
            {"kind": "arrival", "time": 1.0}
        ]
