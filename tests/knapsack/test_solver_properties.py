"""Property-based agreement tests for the MMKP solvers.

Small random instances drive both the exact branch-and-bound solver and the
Lagrangian-relaxation solver:

* whenever the relaxation *certifies* optimality (its feasible primal value
  meets its dual bound), the exact solver must report the same optimal value;
* in general the exact optimum must be sandwiched between the relaxation's
  primal value and dual bound;
* both solvers must honour infeasibility — on instances with no feasible
  selection, neither may claim one, and on feasible instances the exact
  solver must find one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knapsack import (
    MMKPItem,
    MMKPProblem,
    solve_exact,
    solve_lagrangian,
)

#: Comparison slack: solver arithmetic is exact per instance, but the dual
#: bound is accumulated floating-point.
EPSILON = 1e-6


@st.composite
def mmkp_instances(draw):
    """Small random MMKP instances (1-2 dimensions, 1-4 groups, 1-4 items)."""
    num_dimensions = draw(st.integers(min_value=1, max_value=2))
    num_groups = draw(st.integers(min_value=1, max_value=4))
    capacities = [
        draw(st.integers(min_value=0, max_value=6)) * 1.0
        for _ in range(num_dimensions)
    ]
    groups = []
    for _ in range(num_groups):
        num_items = draw(st.integers(min_value=1, max_value=4))
        groups.append(
            [
                MMKPItem(
                    value=draw(st.integers(min_value=0, max_value=20)) * 1.0,
                    weights=tuple(
                        draw(st.integers(min_value=0, max_value=5)) * 1.0
                        for _ in range(num_dimensions)
                    ),
                )
                for _ in range(num_items)
            ]
        )
    return MMKPProblem(capacities, groups)


@settings(max_examples=150, deadline=None)
@given(problem=mmkp_instances())
def test_exact_and_lagrangian_agree_on_certified_optima(problem):
    exact = solve_exact(problem)
    relaxation = solve_lagrangian(problem)
    primal = relaxation.solution

    if not exact.feasible:
        # No feasible selection exists: the repair step must not fabricate one.
        assert not primal.feasible
        return

    # The exact value is optimal: no feasible primal may beat it, and the
    # dual bound may not cut below it.
    if primal.feasible:
        assert primal.value <= exact.value + EPSILON
        assert problem.is_feasible(primal.selection)
        assert abs(problem.value_of(primal.selection) - primal.value) <= EPSILON
    assert exact.value <= relaxation.dual_bound + EPSILON

    # Certified optimum: primal meets dual ⇒ both solvers agree exactly.
    if primal.feasible and primal.value >= relaxation.dual_bound - EPSILON:
        assert abs(primal.value - exact.value) <= EPSILON


@settings(max_examples=150, deadline=None)
@given(problem=mmkp_instances())
def test_exact_solver_finds_feasible_instances(problem):
    exact = solve_exact(problem)
    # Brute-force ground truth on these tiny instances.
    import itertools

    selections = itertools.product(*(range(len(g)) for g in problem.groups))
    feasible_values = [
        problem.value_of(s) for s in selections if problem.is_feasible(list(s))
    ]
    if feasible_values:
        assert exact.feasible
        assert abs(exact.value - max(feasible_values)) <= EPSILON
        assert problem.is_feasible(exact.selection)
    else:
        assert not exact.feasible
        assert exact.selection is None


@settings(max_examples=60, deadline=None)
@given(problem=mmkp_instances())
def test_columnar_construction_matches_item_construction(problem):
    """``from_columns`` must describe the identical instance."""
    dense = MMKPProblem.from_columns(
        problem.capacities,
        [[item.value for item in group] for group in problem.groups],
        [[item.weights for item in group] for group in problem.groups],
    )
    assert dense.num_groups == problem.num_groups
    assert dense.num_dimensions == problem.num_dimensions
    assert dense.dense_values == problem.dense_values
    assert dense.dense_rows == problem.dense_rows
    exact_a = solve_exact(problem)
    exact_b = solve_exact(dense)
    assert exact_a.selection == exact_b.selection
    assert exact_a.value == exact_b.value
    relax_a = solve_lagrangian(problem)
    relax_b = solve_lagrangian(dense)
    assert relax_a.multipliers == relax_b.multipliers
    assert relax_a.dual_bound == relax_b.dual_bound
    assert relax_a.solution == relax_b.solution
