"""Tests for the greedy, Lagrangian and exact MMKP solvers."""

import random

import pytest

from repro.knapsack import (
    MMKPItem,
    MMKPProblem,
    solve_exact,
    solve_greedy,
    solve_lagrangian,
)


def tight_problem():
    """Two groups, one shared scalar resource, optimum value 6 at (0, 1)."""
    return MMKPProblem(
        [3.0],
        [
            [MMKPItem(5.0, (3.0,)), MMKPItem(1.0, (1.0,))],
            [MMKPItem(4.0, (2.0,)), MMKPItem(2.0, (1.0,))],
        ],
    )


def random_problem(seed: int, groups: int = 4, items: int = 4, dims: int = 2):
    rng = random.Random(seed)
    capacity = [items * 1.5] * dims
    built = []
    for _ in range(groups):
        built.append(
            [
                MMKPItem(
                    value=rng.uniform(1.0, 10.0),
                    weights=tuple(rng.uniform(0.1, 2.0) for _ in range(dims)),
                )
                for _ in range(items)
            ]
        )
    return MMKPProblem(capacity, built)


class TestExactSolver:
    def test_finds_the_known_optimum(self):
        # Best feasible selection within capacity 3 is (group0 -> item1,
        # group1 -> item0): value 1 + 4 = 5 with weight 1 + 2 = 3.
        solution = solve_exact(tight_problem())
        assert solution.feasible
        assert solution.value == pytest.approx(5.0)
        assert solution.selection == (1, 0)

    def test_reports_infeasible_instances(self):
        problem = MMKPProblem([1.0], [[MMKPItem(1.0, (2.0,))]])
        solution = solve_exact(problem)
        assert not solution.feasible
        assert solution.selection is None

    def test_brute_force_agreement_on_random_instances(self):
        import itertools

        for seed in range(5):
            problem = random_problem(seed, groups=3, items=3)
            best = float("-inf")
            for selection in itertools.product(*(range(3) for _ in range(3))):
                if problem.is_feasible(selection):
                    best = max(best, problem.value_of(selection))
            solution = solve_exact(problem)
            if best == float("-inf"):
                assert not solution.feasible
            else:
                assert solution.value == pytest.approx(best)


class TestGreedySolver:
    def test_solution_is_feasible(self):
        solution = solve_greedy(tight_problem())
        assert solution.feasible
        assert tight_problem().is_feasible(solution.selection)

    def test_infeasible_instance_detected(self):
        problem = MMKPProblem([1.0], [[MMKPItem(1.0, (2.0,))]])
        assert not solve_greedy(problem)

    def test_reaches_optimum_when_upgrades_are_free(self):
        # Higher-value items use no extra resources -> greedy must take them.
        problem = MMKPProblem(
            [2.0],
            [
                [MMKPItem(1.0, (1.0,)), MMKPItem(3.0, (1.0,))],
                [MMKPItem(2.0, (1.0,)), MMKPItem(5.0, (1.0,))],
            ],
        )
        assert solve_greedy(problem).value == pytest.approx(8.0)

    def test_never_exceeds_exact_optimum(self):
        for seed in range(8):
            problem = random_problem(seed)
            greedy = solve_greedy(problem)
            exact = solve_exact(problem)
            if greedy.feasible and exact.feasible:
                assert greedy.value <= exact.value + 1e-9


class TestLagrangianSolver:
    def test_dual_bound_is_above_primal(self):
        problem = tight_problem()
        result = solve_lagrangian(problem)
        assert result.solution.feasible
        assert result.dual_bound >= result.solution.value - 1e-9

    def test_dual_bound_is_above_exact_optimum(self):
        for seed in range(8):
            problem = random_problem(seed)
            exact = solve_exact(problem)
            result = solve_lagrangian(problem)
            if exact.feasible:
                assert result.dual_bound >= exact.value - 1e-6

    def test_multipliers_are_non_negative(self):
        result = solve_lagrangian(tight_problem())
        assert all(m >= 0 for m in result.multipliers)

    def test_iteration_limit_respected(self):
        result = solve_lagrangian(tight_problem(), max_iterations=5)
        assert result.iterations <= 5

    def test_unconstrained_problem_converges_immediately(self):
        # Capacities so large the relaxed selection is already feasible.
        problem = MMKPProblem(
            [100.0],
            [[MMKPItem(5.0, (1.0,)), MMKPItem(1.0, (1.0,))]],
        )
        result = solve_lagrangian(problem)
        assert result.solution.value == pytest.approx(5.0)
