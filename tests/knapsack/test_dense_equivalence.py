"""Bit-identity of the dense numpy MMKP-LR backend against the pure solver.

Acceptance contract of ``repro.knapsack._dense``: schedules, assignments,
energies and statistics must be *identical* — not merely close — between
``REPRO_SOLVER_NUMPY=1`` and ``=0``, for every scheduler, on both the
motivational workload and the (scaled) Table III census.  The dense backend
is a faster evaluation order of the same arithmetic, never a different
algorithm, so every float must come out bit-for-bit equal.

This file mirrors ``tests/optable/test_equivalence.py`` for the solver
toggle; the solver-level property tests live in
``test_dense_properties.py``.
"""

import pytest

from repro.dse import paper_operating_points, reduced_tables
from repro.knapsack import HAVE_NUMPY, solver_numpy_override
from repro.platforms import odroid_xu4
from repro.schedulers import (
    ExMemScheduler,
    FixedMinEnergyScheduler,
    MMKPLRScheduler,
    MMKPMDFScheduler,
)
from repro.workload import EvaluationSuite
from repro.workload.motivational import motivational_problem
from repro.workload.suite import scaled_census

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="dense backend needs numpy"
)

SCHEDULERS = [
    MMKPMDFScheduler,
    MMKPLRScheduler,
    ExMemScheduler,
    FixedMinEnergyScheduler,
]


@pytest.fixture(scope="module")
def census_problems():
    platform = odroid_xu4()
    tables = reduced_tables(paper_operating_points(platform), max_points=6)
    suite = EvaluationSuite.generate(tables, scaled_census(0.03), seed=2020)
    return [case.problem(platform, tables) for case in suite.cases]


def assert_results_identical(dense, pure):
    assert (dense.schedule is None) == (pure.schedule is None)
    if dense.schedule is not None:
        assert dense.schedule == pure.schedule
        for fast_segment, pure_segment in zip(dense.schedule, pure.schedule):
            # Schedule equality is tolerance-based; the backend promises the
            # exact same floats, so compare boundaries bit-for-bit too.
            assert fast_segment.start == pure_segment.start
            assert fast_segment.end == pure_segment.end
        assert dense.energy == pure.energy
    assert dense.assignment == pure.assignment
    assert dict(dense.statistics) == dict(pure.statistics)


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    @pytest.mark.parametrize("scenario", ["S1", "S2"])
    def test_motivational_scenarios(self, scheduler_cls, scenario):
        with solver_numpy_override(True):
            dense = scheduler_cls().schedule(motivational_problem(scenario))
        with solver_numpy_override(False):
            pure = scheduler_cls().schedule(motivational_problem(scenario))
        assert_results_identical(dense, pure)

    @pytest.mark.parametrize(
        "scheduler_cls",
        [MMKPMDFScheduler, MMKPLRScheduler, FixedMinEnergyScheduler],
    )
    def test_census_workload(self, scheduler_cls, census_problems):
        with solver_numpy_override(True):
            dense = [scheduler_cls().schedule(p) for p in census_problems]
        with solver_numpy_override(False):
            pure = [scheduler_cls().schedule(p) for p in census_problems]
        for fast, slow in zip(dense, pure):
            assert_results_identical(fast, slow)

    def test_census_workload_exmem_sample(self, census_problems):
        # EX-MEM is exponential; a sample keeps the equivalence suite fast.
        # (EX-MEM never calls solve_lagrangian, so this pins that the solver
        # toggle has no side effects on unrelated schedulers.)
        for problem in census_problems[:10]:
            with solver_numpy_override(True):
                dense = ExMemScheduler(max_configs_per_job=4).schedule(problem)
            with solver_numpy_override(False):
                pure = ExMemScheduler(max_configs_per_job=4).schedule(problem)
            assert_results_identical(dense, pure)


class TestBatchedAdmissionEquivalence:
    def test_schedule_many_matches_pure_sequential(self, census_problems):
        """The stacked lock-step path against the pure one-at-a-time path."""
        problems = [
            motivational_problem("S1"),
            motivational_problem("S2"),
            *census_problems,
        ]
        with solver_numpy_override(True):
            batched = MMKPLRScheduler().schedule_many(problems)
        with solver_numpy_override(False):
            pure = [MMKPLRScheduler().schedule(p) for p in problems]
        assert len(batched) == len(pure)
        for fast, slow in zip(batched, pure):
            assert_results_identical(fast, slow)

    def test_schedule_many_matches_own_sequential(self, census_problems):
        """Batching is a reordering, not a resolve: one scheduler, two ways."""
        problems = census_problems[:8]
        with solver_numpy_override(True):
            batched = MMKPLRScheduler().schedule_many(problems)
            sequential = [MMKPLRScheduler().schedule(p) for p in problems]
        for fast, slow in zip(batched, sequential):
            assert_results_identical(fast, slow)
