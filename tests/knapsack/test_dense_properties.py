"""Property-based bit-identity of the dense solver against the pure solver.

Hypothesis drives random MMKP instances — 1-D to 3-D, ragged group sizes,
negative values (admission relaxations maximise *negated* energy), zero
capacities, and instances where every selection is infeasible — through both
``solve_lagrangian`` paths.  The agreement is exact: multipliers, dual
bound, iteration count, selection indices and primal value are compared via
``repr`` so even a ``-0.0``/``0.0`` flip or a last-ulp drift fails loudly.

``solve_lagrangian_many`` takes the stacked dense path for *every* problem
when numpy is enabled (no size threshold), so tiny instances still exercise
the backend; the single-solve threshold path is covered separately by
lowering ``DENSE_MIN_ELEMENTS``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knapsack import (
    HAVE_NUMPY,
    MMKPItem,
    MMKPProblem,
    solve_lagrangian,
    solve_lagrangian_many,
    solver_numpy_override,
)
from repro.knapsack import _dense

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="dense backend needs numpy"
)


def result_fingerprint(result) -> tuple:
    """Every field the two paths must agree on, floats via ``repr``."""
    return (
        tuple(repr(m) for m in result.multipliers),
        repr(result.dual_bound),
        result.iterations,
        result.solution.selection,
        repr(result.solution.value),
        result.solution.feasible,
        result.solution.iterations,
    )


@st.composite
def mmkp_instances(draw, min_dimensions=1, max_dimensions=3, zero_capacity=False):
    """Random ragged MMKP instances (1-3 dimensions, 1-5 groups, 1-6 items)."""
    num_dimensions = draw(
        st.integers(min_value=min_dimensions, max_value=max_dimensions)
    )
    num_groups = draw(st.integers(min_value=1, max_value=5))
    if zero_capacity:
        capacities = [0.0 for _ in range(num_dimensions)]
    else:
        capacities = [
            draw(st.integers(min_value=0, max_value=8)) * 1.0
            for _ in range(num_dimensions)
        ]
    groups = []
    for _ in range(num_groups):
        num_items = draw(st.integers(min_value=1, max_value=6))
        groups.append(
            [
                MMKPItem(
                    # Negative values too: LR admission maximises -energy.
                    value=draw(st.integers(min_value=-20, max_value=20)) * 1.0,
                    weights=tuple(
                        draw(st.integers(min_value=0, max_value=5)) * 1.0
                        for _ in range(num_dimensions)
                    ),
                )
                for _ in range(num_items)
            ]
        )
    return MMKPProblem(capacities, groups)


@st.composite
def infeasible_instances(draw):
    """Instances where *no* selection fits: zero capacity, positive weights."""
    problem = draw(mmkp_instances(zero_capacity=True))
    groups = [
        [
            MMKPItem(item.value, tuple(w + 1.0 for w in item.weights))
            for item in group
        ]
        for group in problem.groups
    ]
    return MMKPProblem(problem.capacities, groups)


@settings(max_examples=150, deadline=None)
@given(problem=mmkp_instances())
def test_batched_single_matches_pure(problem):
    """One problem through the stacked path vs the pure reference."""
    with solver_numpy_override(True):
        (dense,) = solve_lagrangian_many([problem])
    with solver_numpy_override(False):
        pure = solve_lagrangian(problem)
    assert result_fingerprint(dense) == result_fingerprint(pure)


@settings(max_examples=60, deadline=None)
@given(problems=st.lists(mmkp_instances(), min_size=1, max_size=6))
def test_batched_many_matches_pure(problems):
    """Mixed ragged shapes: bucketed stacking must preserve input order."""
    with solver_numpy_override(True):
        dense = solve_lagrangian_many(problems)
    with solver_numpy_override(False):
        pure = [solve_lagrangian(problem) for problem in problems]
    assert [result_fingerprint(r) for r in dense] == [
        result_fingerprint(r) for r in pure
    ]


@settings(max_examples=100, deadline=None)
@given(problem=mmkp_instances())
def test_single_solve_threshold_path_matches_pure(problem):
    """``solve_lagrangian`` itself, with the dense path forced for any size."""
    original = _dense.DENSE_MIN_ELEMENTS
    _dense.DENSE_MIN_ELEMENTS = 1
    try:
        with solver_numpy_override(True):
            dense = solve_lagrangian(problem)
    finally:
        _dense.DENSE_MIN_ELEMENTS = original
    with solver_numpy_override(False):
        pure = solve_lagrangian(problem)
    assert result_fingerprint(dense) == result_fingerprint(pure)


@settings(max_examples=100, deadline=None)
@given(problem=infeasible_instances())
def test_all_infeasible_repairs_agree(problem):
    """The repair loop must fail identically when nothing can ever fit."""
    with solver_numpy_override(True):
        (dense,) = solve_lagrangian_many([problem])
    with solver_numpy_override(False):
        pure = solve_lagrangian(problem)
    assert not dense.solution.feasible
    assert dense.solution.selection is None
    assert result_fingerprint(dense) == result_fingerprint(pure)
