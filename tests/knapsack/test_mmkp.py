"""Tests for the MMKP problem/solution containers."""

import pytest

from repro.exceptions import SchedulingError
from repro.knapsack import MMKPItem, MMKPProblem, MMKPSolution


def small_problem():
    return MMKPProblem(
        capacities=[4.0, 2.0],
        groups=[
            [MMKPItem(3.0, (2.0, 1.0), label="a0"), MMKPItem(1.0, (1.0, 0.0), label="a1")],
            [MMKPItem(4.0, (3.0, 1.0), label="b0"), MMKPItem(2.0, (1.0, 1.0), label="b1")],
        ],
    )


class TestMMKPItem:
    def test_negative_weights_rejected(self):
        with pytest.raises(SchedulingError):
            MMKPItem(1.0, (-1.0,))

    def test_label_is_preserved(self):
        assert MMKPItem(1.0, (0.0,), label=7).label == 7


class TestMMKPProblem:
    def test_dimensions_and_groups(self):
        problem = small_problem()
        assert problem.num_groups == 2
        assert problem.num_dimensions == 2
        assert problem.capacities == (4.0, 2.0)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            MMKPProblem([-1.0], [[MMKPItem(1.0, (0.0,))]])
        with pytest.raises(SchedulingError):
            MMKPProblem([1.0], [])
        with pytest.raises(SchedulingError):
            MMKPProblem([1.0], [[]])
        with pytest.raises(SchedulingError):
            MMKPProblem([1.0], [[MMKPItem(1.0, (0.0, 0.0))]])

    def test_feasibility_value_and_weights(self):
        problem = small_problem()
        assert problem.is_feasible([1, 1])
        assert not problem.is_feasible([0, 0])  # weights (5, 2) exceed (4, 2)
        assert not problem.is_feasible([0])  # wrong length
        assert problem.value_of([0, 1]) == pytest.approx(5.0)
        assert problem.weights_of([0, 1]) == pytest.approx((3.0, 2.0))


class TestMMKPSolution:
    def test_truthiness_follows_feasibility(self):
        assert MMKPSolution((0, 1), 5.0, True)
        assert not MMKPSolution(None, float("-inf"), False)
