"""Tests for the top-level package surface and the exception hierarchy."""

import pytest

import repro
from repro import exceptions


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_scheduler_names_are_unique(self):
        from repro.schedulers import (
            ExMemScheduler,
            FixedMinEnergyScheduler,
            MMKPLRScheduler,
            MMKPMDFScheduler,
        )

        names = {
            cls.name
            for cls in (
                ExMemScheduler,
                FixedMinEnergyScheduler,
                MMKPLRScheduler,
                MMKPMDFScheduler,
            )
        }
        assert len(names) == 4

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.dataflow
        import repro.dse
        import repro.io
        import repro.knapsack
        import repro.mapping
        import repro.platforms
        import repro.runtime
        import repro.schedulers
        import repro.workload

        for module in (
            repro.analysis,
            repro.dataflow,
            repro.dse,
            repro.io,
            repro.knapsack,
            repro.mapping,
            repro.platforms,
            repro.runtime,
            repro.schedulers,
            repro.workload,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestExceptionHierarchy:
    def test_every_library_exception_derives_from_reproerror(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, exceptions.ReproError), name

    def test_specific_errors_can_be_caught_as_base(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.PlatformError("boom")
        with pytest.raises(exceptions.SchedulingError):
            raise exceptions.InfeasibleScheduleError("no schedule")

    def test_scheduling_errors_raised_by_the_library_are_library_errors(self):
        from repro.core.request import Job

        with pytest.raises(exceptions.ReproError):
            Job("", "app", 0.0, 1.0)
