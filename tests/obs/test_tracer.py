"""repro.obs.tracer — span tree, no-op fast path, thread propagation, exporters."""

from __future__ import annotations

import contextvars
import json
import threading

import pytest

from repro.obs import (
    NOOP_SPAN,
    Tracer,
    active,
    annotate,
    chrome_trace,
    count,
    current_span,
    current_tracer,
    merge_chrome_traces,
    span,
    write_chrome_trace,
    write_jsonl,
)


class TestDisabled:
    def test_span_returns_shared_noop_singleton(self):
        assert span("anything") is NOOP_SPAN
        assert span("other", category="x", key="value") is NOOP_SPAN

    def test_noop_span_absorbs_the_api(self):
        with span("outer") as outer:
            outer.annotate(key=1)
            outer.count("hits")
        assert outer is NOOP_SPAN

    def test_count_and_annotate_are_noops(self):
        count("cache.hit")
        annotate(note="ignored")  # must not raise

    def test_nothing_active(self):
        assert not active()
        assert current_span() is None
        assert current_tracer() is None


class TestSpanTree:
    def test_root_span_opens_with_the_tracer(self):
        tracer = Tracer(name="t")
        with tracer:
            assert active()
            assert current_tracer() is tracer
            root = current_span()
            assert root.name == "t"
            assert root.parent_id is None
        assert not active()
        assert len(tracer) == 1

    def test_nesting_parents_by_context(self):
        tracer = Tracer(name="t")
        with tracer:
            with span("outer") as outer:
                with span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                assert current_span() is outer
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].parent_id == spans["t"].span_id
        assert spans["inner"].parent_id == spans["outer"].span_id
        # Children exit before parents: durations nest.
        assert spans["inner"].duration <= spans["outer"].duration

    def test_span_ids_are_unique_and_increasing(self):
        tracer = Tracer(name="t")
        with tracer:
            for _ in range(10):
                with span("s"):
                    pass
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == len(set(ids)) == 11

    def test_annotations_and_counts(self):
        tracer = Tracer(name="t")
        with tracer:
            with span("work", category="test", scheduler="mmkp-mdf") as s:
                annotate(feasible=True)
                count("cache.hit")
                count("cache.hit")
                count("joules", 2.5)
        assert s.annotations == {"scheduler": "mmkp-mdf", "feasible": True}
        assert s.counts == {"cache.hit": 2, "joules": 2.5}

    def test_exception_annotates_error_and_propagates(self):
        tracer = Tracer(name="t")
        with pytest.raises(ValueError):
            with tracer:
                with span("work"):
                    raise ValueError("boom")
        spans = {s.name: s for s in tracer.spans()}
        assert spans["work"].annotations["error"] == "ValueError"
        assert len(tracer) == 2  # failing spans are still collected

    def test_reentering_an_active_tracer_raises(self):
        tracer = Tracer(name="t")
        with tracer:
            with pytest.raises(RuntimeError):
                tracer.__enter__()

    def test_max_spans_drops_and_counts_overflow(self):
        tracer = Tracer(name="t", max_spans=3)
        with tracer:
            for _ in range(5):
                with span("s"):
                    pass
        assert len(tracer) == 3
        assert tracer.dropped == 3  # 5 inner + root, capacity 3

    def test_trace_id_is_stable_and_overridable(self):
        assert Tracer(trace_id="abc123").trace_id == "abc123"
        generated = Tracer().trace_id
        assert len(generated) == 16 and generated != Tracer().trace_id


class TestThreadPropagation:
    def test_copied_context_carries_the_tracer_across_threads(self):
        tracer = Tracer(name="t")
        with tracer:
            context = contextvars.copy_context()

            def work():
                with span("threaded"):
                    count("thread.hits")

            worker = threading.Thread(target=context.run, args=(work,))
            worker.start()
            worker.join()
        spans = {s.name: s for s in tracer.spans()}
        assert spans["threaded"].parent_id == spans["t"].span_id
        assert spans["threaded"].counts == {"thread.hits": 1}
        assert spans["threaded"].thread != spans["t"].thread

    def test_plain_thread_does_not_inherit_the_tracer(self):
        tracer = Tracer(name="t")
        seen = []
        with tracer:
            worker = threading.Thread(target=lambda: seen.append(active()))
            worker.start()
            worker.join()
        assert seen == [False]


class TestSpanDicts:
    def test_records_are_json_ready_and_start_ordered(self):
        tracer = Tracer(name="t")
        with tracer:
            with span("a"):
                pass
            with span("b"):
                pass
        records = tracer.span_dicts()
        json.dumps(records)  # must not raise
        assert [r["name"] for r in records] == ["t", "a", "b"]  # start order
        starts = [r["start_s"] for r in records]
        assert starts == sorted(starts)
        assert all(r["trace_id"] == tracer.trace_id for r in records)


class TestChromeExport:
    def _traced(self):
        tracer = Tracer(name="t")
        with tracer:
            with span("outer", category="pipeline"):
                with span("inner"):
                    count("cache.hit")
        return tracer

    def test_document_shape(self):
        tracer = self._traced()
        document = chrome_trace(tracer)
        json.dumps(document)
        assert document["otherData"]["trace_id"] == tracer.trace_id
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata first
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"t", "outer", "inner"}
        for event in complete:
            assert event["dur"] >= 0 and event["ts"] >= 0  # microseconds

    def test_nesting_is_derivable_from_time_bounds_and_parent_ids(self):
        document = chrome_trace(self._traced())
        by_name = {e["name"]: e for e in document["traceEvents"] if e["ph"] == "X"}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3
        assert inner["args"]["cache.hit"] == 1

    def test_write_and_merge(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(path, tracer, pid=7, process_name="seven")
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert all(e["pid"] == 7 for e in loaded["traceEvents"])
        other = chrome_trace(self._traced(), pid=8)
        merged = merge_chrome_traces([written, other])
        assert len(merged["traceEvents"]) == len(written["traceEvents"]) + len(
            other["traceEvents"]
        )
        assert len(merged["otherData"]["trace_ids"]) == 2

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "spans.jsonl"
        lines = write_jsonl(path, tracer)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == lines == 3
        assert {r["name"] for r in records} == {"t", "outer", "inner"}
