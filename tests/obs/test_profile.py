"""repro.obs.profile — phase aggregation and the profile table renderer."""

from __future__ import annotations

from repro.obs import (
    PHASE_SPANS,
    merged_counts,
    phase_summary,
    phase_totals,
    render_phase_table,
)


def _span(name, duration_s, counts=None):
    return {"name": name, "duration_s": duration_s, "counts": counts or {}}


SPANS = [
    _span("rm.run", 1.0),
    _span("rm.arrival", 0.25, {"cache.solve.hit": 2}),
    _span("rm.arrival", 0.75, {"cache.solve.hit": 1, "cache.solve.miss": 4}),
    _span("phase.solve", 0.4, {"pack.resume": 3}),
    _span("not-a-phase", 9.0, {"ignored.by.phases": 1}),
]


class TestPhaseTotals:
    def test_aggregates_count_total_mean_max(self):
        totals = phase_totals(SPANS)
        arrival = totals["rm.arrival"]
        assert arrival["count"] == 2
        assert arrival["total_s"] == 1.0
        assert arrival["mean_s"] == 0.5
        assert arrival["max_s"] == 0.75

    def test_every_span_name_appears(self):
        assert set(phase_totals(SPANS)) == {
            "rm.run",
            "rm.arrival",
            "phase.solve",
            "not-a-phase",
        }


class TestMergedCounts:
    def test_sums_counters_across_spans(self):
        assert merged_counts(SPANS) == {
            "cache.solve.hit": 3,
            "cache.solve.miss": 4,
            "pack.resume": 3,
            "ignored.by.phases": 1,
        }

    def test_empty(self):
        assert merged_counts([]) == {}


class TestPhaseSummary:
    def test_restricts_phases_but_keeps_all_counts(self):
        summary = phase_summary(SPANS)
        assert set(summary["phases"]) == {"rm.run", "rm.arrival", "phase.solve"}
        assert "not-a-phase" not in summary["phases"]
        assert summary["counts"]["ignored.by.phases"] == 1

    def test_phase_order_follows_registry(self):
        order = list(phase_summary(SPANS)["phases"])
        registry = [name for name in PHASE_SPANS if name in order]
        assert order == registry

    def test_consumes_a_generator_once(self):
        summary = phase_summary(iter(SPANS))
        assert summary["phases"]["rm.run"]["count"] == 1


class TestRenderPhaseTable:
    def test_table_lists_phases_and_counters_per_column(self):
        profiles = {
            "mmkp-mdf": phase_summary(SPANS),
            "fixed": phase_summary([_span("rm.run", 0.5)]),
        }
        table = render_phase_table(profiles)
        lines = table.splitlines()
        assert "mmkp-mdf" in lines[0] and "fixed" in lines[0]
        assert any(line.startswith("rm.arrival") for line in lines)
        assert "not-a-phase" not in table
        # fixed has no counters: its cells render as '-'.
        counter_line = next(line for line in lines if line.startswith("pack.resume"))
        assert counter_line.rstrip().endswith("-")

    def test_missing_phase_renders_dash(self):
        profiles = {
            "a": phase_summary([_span("rm.run", 0.5)]),
            "b": phase_summary([_span("solve", 0.1)]),
        }
        table = render_phase_table(profiles)
        run_line = next(
            line for line in table.splitlines() if line.startswith("rm.run")
        )
        assert run_line.rstrip().endswith("-")
