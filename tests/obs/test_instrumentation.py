"""End-to-end instrumentation: traced runs emit the span tree and stay exact."""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec, Session, WorkloadSpec
from repro.api.spec import SchedulerSpec
from repro.kernel import kernel_override
from repro.obs import Tracer, merged_counts, phase_summary


def _spec(scheduler: str = "mmkp-mdf") -> ExperimentSpec:
    return ExperimentSpec(
        name="obs-test",
        workload=WorkloadSpec.scenario("S1"),
        scheduler=SchedulerSpec(name=scheduler),
    )


def _traced_run(spec: ExperimentSpec, kernel_on: bool):
    tracer = Tracer(name="test")
    with kernel_override(kernel_on):
        with tracer:
            log = Session.from_spec(spec).run()
    return tracer, log


class TestKernelPath:
    def test_span_tree_covers_every_hot_layer(self):
        tracer, _ = _traced_run(_spec(), kernel_on=True)
        names = {span.name for span in tracer.spans()}
        assert {
            "test",  # root
            "rm.run",
            "rm.arrival",
            "phase.snapshot",
            "phase.candidates",
            "phase.solve",
            "phase.commit",
            "solve",
            "energy.accounting",
        } <= names

    def test_pipeline_phases_nest_under_arrivals(self):
        tracer, _ = _traced_run(_spec(), kernel_on=True)
        by_id = {span.span_id: span for span in tracer.spans()}
        phases = [s for s in tracer.spans() if s.name.startswith("phase.")]
        assert phases
        for phase in phases:
            parent = by_id[phase.parent_id]
            assert parent.name in ("rm.arrival", "rm.reschedule")

    def test_solve_span_carries_scheduler_and_feasibility(self):
        tracer, _ = _traced_run(_spec(), kernel_on=True)
        solves = [s for s in tracer.spans() if s.name == "solve"]
        assert solves
        for solve in solves:
            assert solve.annotations["scheduler"] == "mmkp-mdf"
            assert "feasible" in solve.annotations

    def test_commit_spans_record_the_admission_outcome(self):
        tracer, _ = _traced_run(_spec(), kernel_on=True)
        commits = [s for s in tracer.spans() if s.name == "phase.commit"]
        assert commits
        assert {s.annotations["outcome"] for s in commits} <= {
            "admitted",
            "rejected",
            "budget-reject",
        }

    def test_pack_outcome_counts_land_on_solve_phases(self):
        tracer, log = _traced_run(_spec(), kernel_on=True)
        counts = merged_counts(s.to_dict() for s in tracer.spans())
        assert counts.get("pack.resume", 0) + counts.get("pack.scratch", 0) > 0

    def test_energy_counts_accumulate(self):
        tracer, log = _traced_run(_spec(), kernel_on=True)
        counts = merged_counts(s.to_dict() for s in tracer.spans())
        assert counts["energy.intervals"] >= 1
        assert counts["energy.joules"] == pytest.approx(log.total_energy)

    def test_run_span_summarises_the_log(self):
        tracer, log = _traced_run(_spec(), kernel_on=True)
        run = next(s for s in tracer.spans() if s.name == "rm.run")
        assert run.annotations["requests"] == len(log.outcomes)
        assert run.annotations["accepted"] == len(log.accepted)
        assert run.annotations["total_energy"] == pytest.approx(log.total_energy)


class TestSeedPath:
    def test_seed_arrival_path_is_traced_too(self):
        tracer, _ = _traced_run(_spec(), kernel_on=False)
        names = {span.name for span in tracer.spans()}
        assert {"rm.run", "rm.arrival", "solve", "energy.accounting"} <= names


class TestEquivalence:
    @pytest.mark.parametrize("scheduler", ["mmkp-mdf", "mmkp-lr", "fixed"])
    def test_traced_run_is_bit_identical_to_untraced(self, scheduler):
        spec = _spec(scheduler)
        untraced = Session.from_spec(spec).run()
        tracer, traced = _traced_run(spec, kernel_on=True)
        assert len(tracer) > 0
        assert traced.fingerprint() == untraced.fingerprint()

    def test_traced_stream_events_match_untraced_run_events(self):
        from repro.gateway.protocol import canonical_events

        spec = _spec()
        untraced_events = []
        Session.from_spec(spec).run(on_event=untraced_events.append)
        tracer = Tracer(name="stream")
        traced_events = []
        with tracer:
            with Session.from_spec(spec).stream() as events:
                traced_events.extend(events)
        # The stream worker runs in a copied context: spans arrive from it.
        assert any(s.name == "rm.run" for s in tracer.spans())
        canonical = canonical_events(
            e.to_dict() for e in traced_events if e.kind.value != "end"
        )
        expected = canonical_events(
            e.to_dict() for e in untraced_events if e.kind.value != "end"
        )
        assert canonical == expected


class TestCacheCounters:
    def test_solve_cache_counts_hits_and_misses(self):
        spec = _spec("mmkp-lr")
        tracer, _ = _traced_run(spec, kernel_on=True)
        counts = merged_counts(s.to_dict() for s in tracer.spans())
        lookups = counts.get("cache.solve.hit", 0) + counts.get(
            "cache.solve.miss", 0
        )
        assert lookups > 0

    def test_activation_cache_counters(self):
        from repro.schedulers import MMKPMDFScheduler
        from repro.service.cache import ActivationCache, CachingScheduler
        from repro.workload.motivational import motivational_problem

        cached = CachingScheduler(MMKPMDFScheduler(), ActivationCache())
        tracer = Tracer(name="cache")
        with tracer:
            cached.schedule(motivational_problem("S1"))
            cached.schedule(motivational_problem("S1"))
        counts = merged_counts(s.to_dict() for s in tracer.spans())
        assert counts["cache.activation.miss"] == 1
        assert counts["cache.activation.hit"] == 1


class TestPhaseSummary:
    def test_summary_restricts_to_phase_spans(self):
        tracer, _ = _traced_run(_spec(), kernel_on=True)
        summary = phase_summary(tracer.span_dicts())
        assert "rm.arrival" in summary["phases"]
        assert "test" not in summary["phases"]  # the root is not a phase
        arrival = summary["phases"]["rm.arrival"]
        assert arrival["count"] >= 1
        assert arrival["total_s"] >= arrival["max_s"] >= 0
