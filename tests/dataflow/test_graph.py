"""Tests for KPN graphs and the synthetic paper applications."""

import pytest

from repro.dataflow import (
    Channel,
    KPNGraph,
    Process,
    audio_filter,
    paper_applications,
    pedestrian_recognition,
    speaker_recognition,
)
from repro.exceptions import DataflowError


def simple_graph():
    return KPNGraph(
        "pipe",
        [Process("a", 1e9), Process("b", 2e9), Process("c", 3e9)],
        [Channel("c0", "a", "b", 1e6), Channel("c1", "b", "c", 2e6)],
    )


class TestProcessAndChannel:
    def test_process_validation(self):
        with pytest.raises(DataflowError):
            Process("", 1e9)
        with pytest.raises(DataflowError):
            Process("p", 0.0)

    def test_channel_validation(self):
        with pytest.raises(DataflowError):
            Channel("", "a", "b", 1.0)
        with pytest.raises(DataflowError):
            Channel("c", "a", "a", 1.0)
        with pytest.raises(DataflowError):
            Channel("c", "a", "b", -1.0)


class TestKPNGraph:
    def test_accessors(self):
        graph = simple_graph()
        assert graph.num_processes == 3
        assert graph.process_names == ("a", "b", "c")
        assert graph.process("b").cycles == 2e9
        assert graph.total_cycles == pytest.approx(6e9)
        assert graph.total_bytes == pytest.approx(3e6)

    def test_topology_queries(self):
        graph = simple_graph()
        assert graph.successors("a") == ("b",)
        assert graph.predecessors("c") == ("b",)
        assert graph.channels_between("a", "b")[0].name == "c0"
        assert graph.channels_between("a", "c") == ()
        assert graph.is_connected()

    def test_disconnected_graph_is_detected(self):
        graph = KPNGraph("split", [Process("a", 1e9), Process("b", 1e9)], [])
        assert not graph.is_connected()

    def test_validation(self):
        with pytest.raises(DataflowError):
            KPNGraph("", [Process("a", 1e9)])
        with pytest.raises(DataflowError):
            KPNGraph("g", [])
        with pytest.raises(DataflowError):
            KPNGraph("g", [Process("a", 1e9), Process("a", 2e9)])
        with pytest.raises(DataflowError):
            KPNGraph("g", [Process("a", 1e9)], [Channel("c", "a", "ghost", 1.0)])
        with pytest.raises(DataflowError):
            KPNGraph(
                "g",
                [Process("a", 1e9), Process("b", 1e9)],
                [Channel("c", "a", "b", 1.0), Channel("c", "a", "b", 1.0)],
            )
        with pytest.raises(DataflowError):
            simple_graph().process("ghost")

    def test_scaling_preserves_structure(self):
        graph = simple_graph()
        scaled = graph.scaled(2.0)
        assert scaled.total_cycles == pytest.approx(2 * graph.total_cycles)
        assert scaled.total_bytes == pytest.approx(2 * graph.total_bytes)
        assert scaled.process_names == graph.process_names
        with pytest.raises(DataflowError):
            graph.scaled(0.0)


class TestPaperApplications:
    def test_process_counts_match_the_paper(self):
        assert speaker_recognition().graph.num_processes == 8
        assert audio_filter().graph.num_processes == 8
        assert pedestrian_recognition().graph.num_processes == 6

    def test_graphs_are_connected(self):
        for model in paper_applications().values():
            assert model.graph.is_connected()

    def test_input_size_variants(self):
        model = audio_filter()
        variants = model.variants()
        assert set(variants) == {
            "audio_filter/small",
            "audio_filter/medium",
            "audio_filter/large",
        }
        small = model.variant("small")
        large = model.variant("large")
        assert large.total_cycles > small.total_cycles
        with pytest.raises(DataflowError):
            model.variant("gigantic")

    def test_custom_input_sizes(self):
        model = speaker_recognition(input_sizes={"tiny": 0.1})
        assert list(model.variants()) == ["speaker_recognition/tiny"]
