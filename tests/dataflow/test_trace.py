"""Tests for trace synthesis."""

import pytest

from repro.dataflow import TraceGenerator, speaker_recognition
from repro.dataflow.trace import ProcessTrace, TraceSegment, merge_traces
from repro.exceptions import DataflowError


class TestTraceSegment:
    def test_validation(self):
        with pytest.raises(DataflowError):
            TraceSegment(-1.0)
        with pytest.raises(DataflowError):
            TraceSegment(1.0, bytes_read=-1.0)


class TestProcessTrace:
    def test_totals(self):
        trace = ProcessTrace("p", [TraceSegment(10.0, 1.0, 2.0), TraceSegment(20.0)])
        assert trace.total_cycles == pytest.approx(30.0)
        assert trace.total_bytes == pytest.approx(3.0)
        assert len(trace) == 2

    def test_validation(self):
        with pytest.raises(DataflowError):
            ProcessTrace("", [TraceSegment(1.0)])
        with pytest.raises(DataflowError):
            ProcessTrace("p", [])


class TestTraceGenerator:
    def test_one_trace_per_process(self):
        graph = speaker_recognition().graph
        traces = TraceGenerator(iterations=10, seed=1).generate(graph)
        assert set(traces) == set(graph.process_names)
        assert all(len(trace) == 10 for trace in traces.values())

    def test_totals_match_the_graph(self):
        graph = speaker_recognition().graph
        traces = TraceGenerator(iterations=25, jitter=0.3, seed=4).generate(graph)
        for process in graph:
            assert traces[process.name].total_cycles == pytest.approx(
                process.cycles, rel=1e-9
            )

    def test_generation_is_deterministic_per_seed(self):
        graph = speaker_recognition().graph
        first = TraceGenerator(iterations=10, seed=3).generate(graph)
        second = TraceGenerator(iterations=10, seed=3).generate(graph)
        other = TraceGenerator(iterations=10, seed=4).generate(graph)
        name = graph.process_names[0]
        assert first[name].segments == second[name].segments
        assert first[name].segments != other[name].segments

    def test_zero_jitter_gives_equal_segments(self):
        graph = speaker_recognition().graph
        traces = TraceGenerator(iterations=5, jitter=0.0, seed=0).generate(graph)
        for trace in traces.values():
            cycles = [segment.cycles for segment in trace]
            assert max(cycles) == pytest.approx(min(cycles))

    def test_parameter_validation(self):
        with pytest.raises(DataflowError):
            TraceGenerator(iterations=0)
        with pytest.raises(DataflowError):
            TraceGenerator(jitter=1.5)

    def test_merge_traces(self):
        graph = speaker_recognition().graph
        traces = TraceGenerator(iterations=5, seed=1).generate(graph)
        totals = merge_traces(traces)
        assert totals["fft"] == pytest.approx(graph.process("fft").cycles)
