"""Tests for the service metric primitives."""

import math

import pytest

from repro.service.metrics import Counter, Histogram, ServiceMetrics
from repro.service.pool import SimulationResult


class TestCounter:
    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("h")
        for value in (1.0, 3.0, 2.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(10.0)
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.min == 1.0 and histogram.max == 4.0
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(1.0) == 4.0
        assert histogram.percentile(0.5) in (2.0, 3.0)

    def test_empty_histogram_is_nan(self):
        histogram = Histogram("h")
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.percentile(0.5))

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_sample_cap_keeps_exact_totals(self):
        histogram = Histogram("h", max_samples=10)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.total == pytest.approx(4950.0)


def ok_result(**overrides):
    fields = dict(
        job_name="job",
        scheduler="mmkp-mdf",
        engine="events",
        requests=10,
        accepted=8,
        rejected=2,
        total_energy=50.0,
        makespan=12.0,
        activations=10,
        search_time_total=0.01,
        wall_time=0.02,
    )
    fields.update(overrides)
    return SimulationResult(**fields)


class TestServiceMetrics:
    def test_observe_result_and_snapshot(self):
        metrics = ServiceMetrics()
        metrics.observe_result(ok_result())
        metrics.observe_result(ok_result(job_name="other", accepted=10, rejected=0))
        metrics.observe_result(
            SimulationResult("bad", "mmkp-mdf", "events", error="boom")
        )
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["traces_run"] == 2
        assert snapshot["counters"]["traces_failed"] == 1
        assert snapshot["counters"]["requests_total"] == 20
        assert snapshot["counters"]["requests_accepted"] == 18
        assert metrics.acceptance_rate == pytest.approx(0.9)
        assert snapshot["histograms"]["trace_energy"]["count"] == 2

    def test_observe_cache_and_hit_rate(self):
        metrics = ServiceMetrics()
        metrics.observe_cache({"hits": 30, "misses": 10})
        assert metrics.cache_hit_rate == pytest.approx(0.75)
        assert metrics.snapshot()["derived"]["cache_hit_rate"] == pytest.approx(0.75)

    def test_format_renders_counters(self):
        metrics = ServiceMetrics()
        metrics.observe_result(ok_result())
        text = metrics.format()
        assert "traces_run" in text
        assert "acceptance_rate" in text
        assert "trace_energy" in text
