"""Tests for the service metric primitives."""

import math

import pytest

from repro.service.metrics import (
    Counter,
    Histogram,
    ServiceMetrics,
    escape_help_text,
    escape_label_value,
    prometheus_grouped_lines,
    prometheus_lines,
)
from repro.service.pool import SimulationResult


class TestCounter:
    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("h")
        for value in (1.0, 3.0, 2.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(10.0)
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.min == 1.0 and histogram.max == 4.0
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(1.0) == 4.0
        assert histogram.percentile(0.5) in (2.0, 3.0)

    def test_empty_histogram_is_nan(self):
        histogram = Histogram("h")
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.percentile(0.5))

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_sample_cap_keeps_exact_totals(self):
        histogram = Histogram("h", max_samples=10)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.total == pytest.approx(4950.0)


class TestReservoir:
    def test_reservoir_keeps_a_subset_of_observed_values(self):
        histogram = Histogram("h", max_samples=16)
        observed = [float(value) for value in range(1000)]
        for value in observed:
            histogram.observe(value)
        assert len(histogram._samples) == 16
        assert set(histogram._samples) <= set(observed)
        assert histogram.min == 0.0 and histogram.max == 999.0

    def test_reservoir_sees_the_whole_stream_not_the_prefix(self):
        # First-N retention would keep only values < 32; Algorithm R keeps a
        # uniform sample, so late observations must be represented.
        histogram = Histogram("h", max_samples=32)
        for value in range(10_000):
            histogram.observe(float(value))
        assert max(histogram._samples) >= 1000
        assert histogram.percentile(0.9) > histogram.percentile(0.1)

    def test_reservoir_is_deterministic_per_name(self):
        def fill(name):
            histogram = Histogram(name, max_samples=8)
            for value in range(500):
                histogram.observe(float(value))
            return histogram

        assert fill("same")._samples == fill("same")._samples
        assert fill("same").percentile(0.5) == fill("same").percentile(0.5)
        assert fill("same")._samples != fill("other")._samples


def ok_result(**overrides):
    fields = dict(
        job_name="job",
        scheduler="mmkp-mdf",
        engine="events",
        requests=10,
        accepted=8,
        rejected=2,
        total_energy=50.0,
        makespan=12.0,
        activations=10,
        search_time_total=0.01,
        wall_time=0.02,
    )
    fields.update(overrides)
    return SimulationResult(**fields)


class TestServiceMetrics:
    def test_observe_result_and_snapshot(self):
        metrics = ServiceMetrics()
        metrics.observe_result(ok_result())
        metrics.observe_result(ok_result(job_name="other", accepted=10, rejected=0))
        metrics.observe_result(
            SimulationResult("bad", "mmkp-mdf", "events", error="boom")
        )
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["traces_run"] == 2
        assert snapshot["counters"]["traces_failed"] == 1
        assert snapshot["counters"]["requests_total"] == 20
        assert snapshot["counters"]["requests_accepted"] == 18
        assert metrics.acceptance_rate == pytest.approx(0.9)
        assert snapshot["histograms"]["trace_energy"]["count"] == 2

    def test_observe_cache_and_hit_rate(self):
        metrics = ServiceMetrics()
        metrics.observe_cache({"hits": 30, "misses": 10})
        assert metrics.cache_hit_rate == pytest.approx(0.75)
        assert metrics.snapshot()["derived"]["cache_hit_rate"] == pytest.approx(0.75)

    def test_format_renders_counters(self):
        metrics = ServiceMetrics()
        metrics.observe_result(ok_result())
        text = metrics.format()
        assert "traces_run" in text
        assert "acceptance_rate" in text
        assert "trace_energy" in text


class TestExpositionEscaping:
    def test_label_values_escape_backslash_quote_and_newline(self):
        assert escape_label_value('evil\\label"') == 'evil\\\\label\\"'
        assert escape_label_value("line\nbreak") == "line\\nbreak"
        assert escape_label_value("plain") == "plain"

    def test_help_text_escapes_backslash_and_newline_only(self):
        assert escape_help_text('keep "quotes"\nhere\\') == \
            'keep "quotes"\\nhere\\\\'

    def test_hostile_labels_stay_on_one_exposition_line(self):
        counter = Counter("c", "multi\nline help")
        counter.increment(3)
        lines = prometheus_lines(
            [counter], labels={"tenant": 'evil\\t"en\nant'}
        )
        assert lines == [
            "# HELP repro_c multi\\nline help",
            "# TYPE repro_c counter",
            'repro_c{tenant="evil\\\\t\\"en\\nant"} 3',
        ]


class TestGroupedExposition:
    def _grouped(self):
        solve = Histogram("unused", "")
        for value in (0.1, 0.2, 0.3):
            solve.observe(value)
        commit = Histogram("unused", "")
        return {"phase.solve": solve, "phase.commit": commit}

    def test_one_header_many_label_series(self):
        lines = prometheus_grouped_lines(
            "phase_seconds", "phase durations", self._grouped(), prefix="gw"
        )
        assert lines[0] == "# HELP gw_phase_seconds phase durations"
        assert lines[1] == "# TYPE gw_phase_seconds summary"
        assert sum(line.startswith("# ") for line in lines) == 2
        assert 'gw_phase_seconds_count{phase="phase.solve"} 3' in lines
        assert 'gw_phase_seconds_sum{phase="phase.solve"} 0.6' in lines

    def test_empty_histogram_emits_count_but_no_quantiles(self):
        lines = prometheus_grouped_lines(
            "phase_seconds", "", self._grouped(), prefix="gw"
        )
        assert 'gw_phase_seconds_count{phase="phase.commit"} 0' in lines
        assert not any('phase="phase.commit",quantile=' in line for line in lines)
        assert any('phase="phase.solve",quantile="0.9"' in line for line in lines)

    def test_empty_group_emits_nothing(self):
        assert prometheus_grouped_lines("phase_seconds", "help", {}) == []
