"""Tests for the activation cache and the caching scheduler wrapper."""

import threading

import pytest

from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.schedulers import MMKPMDFScheduler
from repro.service.cache import (
    ActivationCache,
    CachingScheduler,
    canonical_jobs,
    problem_signature,
    table_fingerprint,
)
from repro.workload.motivational import motivational_platform, motivational_tables


@pytest.fixture()
def tables():
    return motivational_tables()


@pytest.fixture()
def platform():
    return motivational_platform()


def make_problem(platform, tables, now=0.0, names=("a", "b"), remaining=(1.0, 1.0)):
    jobs = [
        Job(names[0], "lambda1", arrival=now, deadline=now + 9.0, remaining_ratio=remaining[0]),
        Job(names[1], "lambda2", arrival=now, deadline=now + 4.0, remaining_ratio=remaining[1]),
    ]
    return SchedulingProblem(platform, tables, jobs, now=now)


class TestSignature:
    def test_invariant_under_time_shift_and_renaming(self, platform, tables):
        base = make_problem(platform, tables, now=0.0, names=("a", "b"))
        shifted = make_problem(platform, tables, now=7.5, names=("x", "y"))
        assert problem_signature(base) == problem_signature(shifted)

    def test_invariant_under_job_order(self, platform, tables):
        jobs = [
            Job("a", "lambda1", 0.0, 9.0),
            Job("b", "lambda2", 0.0, 4.0),
        ]
        forward = SchedulingProblem(platform, tables, jobs, now=0.0)
        backward = SchedulingProblem(platform, tables, list(reversed(jobs)), now=0.0)
        assert problem_signature(forward) == problem_signature(backward)

    def test_distinguishes_namespace(self, platform, tables):
        problem = make_problem(platform, tables)
        assert problem_signature(problem, "mmkp-mdf") != problem_signature(problem, "fixed")

    def test_distinguishes_residuals_and_deadlines(self, platform, tables):
        full = make_problem(platform, tables, remaining=(1.0, 1.0))
        partial = make_problem(platform, tables, remaining=(0.5, 1.0))
        assert problem_signature(full) != problem_signature(partial)
        longer = SchedulingProblem(
            platform, tables, [Job("a", "lambda1", 0.0, 12.0)], now=0.0
        )
        shorter = SchedulingProblem(
            platform, tables, [Job("a", "lambda1", 0.0, 9.0)], now=0.0
        )
        assert problem_signature(longer) != problem_signature(shorter)

    def test_table_content_enters_the_key(self, platform, tables):
        problem = make_problem(platform, tables)
        # A rebuilt (equal-content) table set collides — content, not identity.
        rebuilt = make_problem(platform, motivational_tables())
        assert problem_signature(problem) == problem_signature(rebuilt)
        assert table_fingerprint(tables["lambda1"]) != table_fingerprint(tables["lambda2"])

    def test_canonical_jobs_are_sorted_relative_slots(self, platform, tables):
        problem = make_problem(platform, tables, now=5.0, names=("zz", "aa"))
        slots = canonical_jobs(problem)
        assert [job.name for job in slots] == ["j0", "j1"]
        assert all(job.arrival == 0.0 for job in slots)
        assert {job.application for job in slots} == {"lambda1", "lambda2"}
        assert slots[0].deadline in (9.0, 4.0)


class TestActivationCache:
    def test_lru_eviction(self):
        cache = ActivationCache(maxsize=2)
        cache.put(("k1",), "r1")
        cache.put(("k2",), "r2")
        assert cache.get(("k1",)) == "r1"  # refresh k1
        cache.put(("k3",), "r3")  # evicts k2 (least recently used)
        assert cache.get(("k2",)) is None
        assert cache.get(("k1",)) == "r1"
        assert cache.get(("k3",)) == "r3"

    def test_counters_and_info(self):
        cache = ActivationCache(maxsize=4)
        assert cache.get(("missing",)) is None
        cache.put(("k",), "r")
        assert cache.get(("k",)) == "r"
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_zero_size_disables_storing(self):
        cache = ActivationCache(maxsize=0)
        cache.put(("k",), "r")
        assert cache.get(("k",)) is None

    def test_thread_safety_smoke(self):
        cache = ActivationCache(maxsize=64)

        def worker(start):
            for index in range(200):
                key = (start, index % 80)
                cache.get(key)
                cache.put(key, index)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 64


class TestCachingScheduler:
    def test_hit_after_time_shift_and_renaming(self, platform, tables):
        cached = CachingScheduler(MMKPMDFScheduler(), ActivationCache())
        first = cached.schedule(make_problem(platform, tables, now=0.0, names=("a", "b")))
        shifted_problem = make_problem(platform, tables, now=6.0, names=("x", "y"))
        second = cached.schedule(shifted_problem)
        assert cached.cache.hits == 1 and cached.cache.misses == 1
        assert first.feasible and second.feasible
        # The rehydrated schedule is valid for the *shifted* problem.
        report = shifted_problem.validate(second.schedule)
        assert report.feasible, report.violations
        assert second.energy == pytest.approx(first.energy)
        assert second.schedule.start >= 6.0 - 1e-9
        assert second.statistics["cache_hit"] == 1.0

    def test_hit_path_is_bit_identical_to_miss_path(self, platform, tables):
        """Canonicalisation on both paths ⇒ the result is a pure function."""
        problem = make_problem(platform, tables, now=3.0)
        cached = CachingScheduler(MMKPMDFScheduler(), ActivationCache())
        miss = cached.schedule(problem)
        hit = cached.schedule(problem)
        assert hit.schedule == miss.schedule
        assert dict(hit.assignment) == dict(miss.assignment)
        assert hit.energy == miss.energy

    def test_cached_schedules_validate_on_random_problems(self, platform, tables):
        import random

        rng = random.Random(42)
        cached = CachingScheduler(MMKPMDFScheduler(), ActivationCache())
        plain = MMKPMDFScheduler()
        for trial in range(25):
            now = rng.uniform(0.0, 10.0)
            jobs = []
            for index in range(rng.randint(1, 3)):
                application = rng.choice(["lambda1", "lambda2"])
                jobs.append(
                    Job(
                        f"job{index}",
                        application,
                        arrival=now,
                        deadline=now + rng.uniform(3.0, 25.0),
                        remaining_ratio=rng.choice([1.0, 0.75, 0.5]),
                    )
                )
            problem = SchedulingProblem(platform, tables, jobs, now=now)
            cached_result = cached.schedule(problem)
            plain_result = plain.schedule(problem)
            assert cached_result.feasible == plain_result.feasible
            if cached_result.feasible:
                report = problem.validate(cached_result.schedule)
                assert report.feasible, report.violations

    def test_transparent_name_and_infeasible_caching(self, platform, tables):
        cached = CachingScheduler(MMKPMDFScheduler(), ActivationCache())
        assert cached.name == "mmkp-mdf"
        impossible = SchedulingProblem(
            platform, tables, [Job("a", "lambda2", 0.0, 0.5)], now=0.0
        )
        first = cached.schedule(impossible)
        second = cached.schedule(impossible)
        assert not first.feasible and not second.feasible
        assert cached.cache.hits == 1
