"""Tests for declarative simulation jobs and batch specs."""

import pytest

from repro.exceptions import SerializationError, WorkloadError
from repro.platforms import Platform
from repro.runtime.trace import RequestEvent, RequestTrace
from repro.service.jobs import (
    PLATFORMS,
    SCHEDULERS,
    BatchSpec,
    SimulationJob,
    TraceSpec,
)
from repro.workload.motivational import motivational_tables


class TestTraceSpec:
    def test_roundtrip(self):
        spec = TraceSpec(0.3, 12, (2.0, 5.0), seed=11)
        assert TraceSpec.from_dict(spec.to_dict()) == spec

    def test_materialise_is_deterministic(self):
        tables = motivational_tables()
        spec = TraceSpec(0.25, 8, seed=3)
        first = spec.materialise(tables)
        second = spec.materialise(tables)
        assert [(e.time, e.application, e.name) for e in first] == [
            (e.time, e.application, e.name) for e in second
        ]
        assert len(first) == 8

    def test_invalid_dict_raises(self):
        with pytest.raises(SerializationError):
            TraceSpec.from_dict({"num_requests": 5})


class TestRegistries:
    # The deprecated ``build_scheduler``/``build_platform`` shims are covered
    # (with their warnings) in tests/api/test_deprecations.py; everything
    # else goes through the registries, so a clean run emits no warnings.
    def test_all_registered_schedulers_build_fresh_instances(self):
        for name in SCHEDULERS:
            first = SCHEDULERS.build(name)
            second = SCHEDULERS.build(name)
            assert first is not second
            assert first.name == name

    def test_all_registered_platforms_build(self):
        for name in PLATFORMS:
            assert isinstance(PLATFORMS.build(name), Platform)

    def test_unknown_names_raise(self):
        with pytest.raises(WorkloadError):
            SCHEDULERS.build("nope")
        with pytest.raises(WorkloadError):
            PLATFORMS.build("nope")


class TestSimulationJob:
    def test_requires_exactly_one_trace_source(self):
        with pytest.raises(WorkloadError):
            SimulationJob("bad")
        with pytest.raises(WorkloadError):
            SimulationJob(
                "bad",
                trace=RequestTrace([RequestEvent(0.0, "lambda1", 5.0, "r0")]),
                trace_spec=TraceSpec(0.1, 3),
            )
        with pytest.raises(WorkloadError):
            SimulationJob("", trace_spec=TraceSpec(0.1, 3))

    def test_roundtrip_with_spec(self):
        job = SimulationJob(
            "spec-job",
            scheduler="mmkp-lr",
            platform="odroid-xu4",
            tables="motivational",
            remap_on_finish=True,
            engine="linear",
            trace_spec=TraceSpec(0.2, 6, seed=5),
        )
        assert SimulationJob.from_dict(job.to_dict()) == job

    def test_roundtrip_with_explicit_trace_and_inline_tables(self):
        trace = RequestTrace(
            [
                RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
                RequestEvent(1.0, "lambda2", 4.0, "sigma2"),
            ]
        )
        job = SimulationJob("inline", trace=trace, tables=motivational_tables())
        restored = SimulationJob.from_dict(job.to_dict())
        assert restored == job
        assert len(restored.resolve_tables()) == 2
        assert [e.name for e in restored.resolve_trace(restored.resolve_tables())] == [
            "sigma1",
            "sigma2",
        ]

    def test_with_seed(self):
        job = SimulationJob("seeded", trace_spec=TraceSpec(0.2, 4, seed=1))
        assert job.with_seed(9).trace_spec.seed == 9
        explicit = SimulationJob(
            "explicit", trace=RequestTrace([RequestEvent(0.0, "lambda1", 5.0, "r0")])
        )
        with pytest.raises(WorkloadError):
            explicit.with_seed(9)

    def test_missing_name_raises(self):
        with pytest.raises(SerializationError):
            SimulationJob.from_dict({"trace_spec": {"arrival_rate": 1, "num_requests": 1}})


class TestBatchSpec:
    def test_sweep_shape_and_seeding(self):
        spec = BatchSpec.sweep(
            arrival_rates=[0.1, 0.2],
            schedulers=["mmkp-mdf", "fixed"],
            traces_per_point=3,
            num_requests=4,
            repeats=2,
            base_seed=100,
        )
        assert len(spec) == 2 * 2 * 3 * 2
        # The same trace seeds recur across schedulers and repeats (paired
        # comparison / repeated-sweep shape), distinct across rate × trial.
        seeds = {job.trace_spec.seed for job in spec}
        assert seeds == {100, 101, 102, 103, 104, 105}

    def test_duplicate_names_rejected(self):
        job = SimulationJob("dup", trace_spec=TraceSpec(0.1, 2))
        with pytest.raises(WorkloadError):
            BatchSpec("batch", (job, job))

    def test_shard_partitions_the_batch(self):
        spec = BatchSpec.sweep(arrival_rates=[0.1], traces_per_point=7, num_requests=2)
        shards = [spec.shard(i, 3) for i in range(3)]
        names = [job.name for shard in shards for job in shard.jobs]
        assert sorted(names) == sorted(job.name for job in spec.jobs)
        with pytest.raises(WorkloadError):
            spec.shard(3, 3)

    def test_save_and_load_roundtrip(self, tmp_path):
        spec = BatchSpec.sweep(
            arrival_rates=[0.15], traces_per_point=2, num_requests=3, name="disk"
        )
        path = tmp_path / "batch.json"
        spec.save(path)
        restored = BatchSpec.load(path)
        assert restored.name == "disk"
        assert restored.jobs == spec.jobs

    def test_from_dict_requires_jobs(self):
        with pytest.raises(SerializationError):
            BatchSpec.from_dict({"name": "empty"})


class TestJobIdentity:
    """Equality/hash must cover the energy-policy fields added with DVFS."""

    def _job(self, **overrides):
        fields = dict(name="j", trace_spec=TraceSpec(0.2, 5, seed=1))
        fields.update(overrides)
        return SimulationJob(**fields)

    def test_energy_fields_break_equality(self):
        base = self._job()
        assert base == self._job()
        assert base != self._job(governor="powersave")
        assert base != self._job(power_cap_watts=5.0)
        assert base != self._job(energy_budget_joules=100.0)

    def test_energy_fields_break_the_hash(self):
        base = self._job()
        assert hash(base) == hash(self._job())
        assert hash(base) != hash(self._job(governor="powersave"))
        assert hash(base) != hash(self._job(power_cap_watts=5.0))
        assert hash(base) != hash(self._job(energy_budget_joules=100.0))
        assert hash(self._job(governor="powersave")) != hash(
            self._job(governor="ondemand")
        )

    def test_sweep_dedup_keeps_distinct_energy_configs(self):
        jobs = {
            self._job(),
            self._job(),  # true duplicate — must collapse
            self._job(governor="powersave"),
            self._job(governor="powersave", power_cap_watts=4.0),
            self._job(energy_budget_joules=50.0),
        }
        assert len(jobs) == 4

    def test_cache_keys_cannot_collide_across_energy_configs(self):
        cache = {self._job(): "pinned", self._job(governor="powersave"): "dvfs"}
        assert cache[self._job()] == "pinned"
        assert cache[self._job(governor="powersave")] == "dvfs"

    def test_inline_table_jobs_stay_usable_in_sets(self):
        # Inline (unhashable) platforms/tables stay out of the hash but
        # participate in equality.
        job = self._job(tables={"lambda1": motivational_tables()["lambda1"]})
        assert len({job, self._job()}) == 2

    def test_list_deadline_factor_range_stays_hashable(self):
        # Sweeps and hand-built specs may pass lists; the spec canonicalises
        # so job hashing (sweep dedup, cache keys) never raises.
        job = self._job(
            trace_spec=TraceSpec(0.2, 5, deadline_factor_range=[1.5, 4.0], seed=1)
        )
        assert hash(job) == hash(self._job())
        assert job == self._job()
        spec = BatchSpec.sweep(
            arrival_rates=[0.2],
            traces_per_point=1,
            num_requests=2,
            deadline_factor_range=[1.5, 4.0],
        )
        assert len({*spec.jobs}) == 1
