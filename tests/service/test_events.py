"""Tests for the heap-based event engine."""

import pytest

from repro.service.events import Event, EventKind, EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        for time in (3.0, 1.0, 2.0, 0.5):
            queue.push(Event(time, EventKind.ARRIVAL))
        assert [queue.pop().time for _ in range(4)] == [0.5, 1.0, 2.0, 3.0]

    def test_same_time_orders_by_kind_priority(self):
        queue = EventQueue()
        queue.push(Event(1.0, EventKind.TIMER))
        queue.push(Event(1.0, EventKind.ARRIVAL))
        queue.push(Event(1.0, EventKind.SEGMENT_END))
        queue.push(Event(1.0, EventKind.FINISH))
        kinds = [queue.pop().kind for _ in range(4)]
        assert kinds == [
            EventKind.FINISH,
            EventKind.SEGMENT_END,
            EventKind.ARRIVAL,
            EventKind.TIMER,
        ]

    def test_fifo_among_equal_time_and_kind(self):
        queue = EventQueue()
        for index in range(5):
            queue.push(Event(2.0, EventKind.ARRIVAL, payload=index))
        assert [queue.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]


class TestQueueProtocol:
    def test_len_bool_and_clear(self):
        queue = EventQueue()
        assert not queue
        queue.push(Event(1.0, EventKind.ARRIVAL))
        queue.push(Event(2.0, EventKind.ARRIVAL))
        assert len(queue) == 2 and queue
        queue.clear()
        assert len(queue) == 0 and not queue

    def test_peek_and_next_time(self):
        queue = EventQueue()
        assert queue.next_time == float("inf")
        queue.push(Event(4.0, EventKind.ARRIVAL, payload="later"))
        queue.push(Event(1.5, EventKind.ARRIVAL, payload="sooner"))
        assert queue.next_time == 1.5
        assert queue.peek().payload == "sooner"
        assert len(queue) == 2  # peek does not remove

    def test_pop_and_peek_empty_raise(self):
        queue = EventQueue()
        with pytest.raises(IndexError):
            queue.pop()
        with pytest.raises(IndexError):
            queue.peek()

    def test_drain_empties_in_order(self):
        queue = EventQueue()
        for time in (2.0, 1.0, 3.0):
            queue.push(Event(time, EventKind.FINISH))
        assert [event.time for event in queue.drain()] == [1.0, 2.0, 3.0]
        assert not queue


class TestTimers:
    def test_timer_dispatch_invokes_callback(self):
        queue = EventQueue()
        fired = []
        queue.push_timer(5.0, lambda event: fired.append(event.payload), payload="tick")
        event = queue.pop()
        assert event.kind is EventKind.TIMER
        queue.dispatch(event)
        assert fired == ["tick"]

    def test_dispatch_without_callback_is_a_noop(self):
        queue = EventQueue()
        queue.push(Event(1.0, EventKind.ARRIVAL))
        queue.dispatch(queue.pop())  # must not raise


class TestEpochs:
    def test_events_carry_epoch_for_lazy_invalidation(self):
        queue = EventQueue()
        queue.push(Event(1.0, EventKind.SEGMENT_END, epoch=1))
        queue.push(Event(1.0, EventKind.SEGMENT_END, epoch=2))
        current_epoch = 2
        live = [event for event in queue.drain() if event.epoch == current_epoch]
        assert len(live) == 1 and live[0].epoch == 2
