"""Tests for the concurrent batch-simulation service."""

import pytest

from repro.analysis.experiments import SuiteResults
from repro.runtime.trace import RequestEvent, RequestTrace
from repro.service.jobs import BatchSpec, SimulationJob, TraceSpec
from repro.service.pool import BatchResults, SimulationResult, SimulationService


def small_sweep(traces=6, num_requests=4, repeats=1, name="sweep"):
    return BatchSpec.sweep(
        arrival_rates=[0.2],
        schedulers=["mmkp-mdf"],
        traces_per_point=traces,
        num_requests=num_requests,
        repeats=repeats,
        name=name,
    )


class TestRunBatch:
    def test_results_are_in_job_order_and_complete(self):
        spec = small_sweep()
        results = SimulationService(workers=1).run_batch(spec)
        assert len(results) == len(spec)
        assert [r.job_name for r in results] == [job.name for job in spec.jobs]
        assert results.failures == []
        for result in results:
            assert result.requests == 4
            assert 0 <= result.accepted <= 4
            assert result.outcomes and result.total_energy > 0

    def test_empty_batch(self):
        results = SimulationService().run_batch([])
        assert len(results) == 0
        assert results.aggregate()["traces"] == 0

    def test_progress_callback_sees_every_job(self):
        spec = small_sweep(traces=4)
        seen = []
        SimulationService(workers=2).run_batch(
            spec, progress=lambda index, result: seen.append(index)
        )
        assert sorted(seen) == [0, 1, 2, 3]

    def test_failure_isolation(self):
        ghost_trace = RequestTrace([RequestEvent(0.0, "ghost-app", 5.0, "r0")])
        jobs = [
            SimulationJob("good-1", trace_spec=TraceSpec(0.2, 3, seed=1)),
            SimulationJob("bad", trace=ghost_trace),
            SimulationJob("good-2", trace_spec=TraceSpec(0.2, 3, seed=2)),
        ]
        results = SimulationService(workers=1).run_batch(jobs)
        assert [r.ok for r in results] == [True, False, True]
        assert "AdmissionError" in results.result("bad").error
        assert results.aggregate()["failed"] == 1

    def test_unknown_scheduler_is_isolated_too(self):
        jobs = [SimulationJob("bad-sched", scheduler="nope", trace_spec=TraceSpec(0.2, 2))]
        results = SimulationService().run_batch(jobs)
        assert not results[0].ok and "WorkloadError" in results[0].error


class TestDeterminism:
    def test_workers_1_and_4_are_bit_identical_over_200_traces(self):
        """The headline guarantee: fan-out never changes the results."""
        spec = BatchSpec.sweep(
            arrival_rates=[0.15, 0.35],
            schedulers=["mmkp-mdf"],
            traces_per_point=100,
            num_requests=3,
            name="determinism",
        )
        assert len(spec) == 200
        serial = SimulationService(workers=1, executor="serial").run_batch(spec)
        threaded = SimulationService(workers=4, executor="thread").run_batch(spec)
        assert serial.failures == [] and threaded.failures == []
        assert serial.fingerprint() == threaded.fingerprint()
        # Aggregates derived from the fingerprinted fields match exactly.
        for key in ("requests", "accepted", "total_energy", "activations"):
            assert serial.aggregate()[key] == threaded.aggregate()[key]

    def test_repeated_runs_of_one_service_are_stable(self):
        spec = small_sweep(traces=5, repeats=2)
        service = SimulationService(workers=2)
        first = service.run_batch(spec)
        second = service.run_batch(spec)  # now served mostly from cache
        assert first.fingerprint() == second.fingerprint()

    def test_process_executor_matches_serial(self):
        spec = small_sweep(traces=4, num_requests=3)
        serial = SimulationService(workers=1, executor="serial").run_batch(spec)
        try:
            processed = SimulationService(workers=2, executor="process").run_batch(spec)
        except (OSError, PermissionError) as error:  # pragma: no cover
            pytest.skip(f"process pools unavailable in this sandbox: {error}")
        assert processed.fingerprint() == serial.fingerprint()


class TestCachingBehaviour:
    def test_repeats_hit_the_cache(self):
        spec = small_sweep(traces=3, repeats=4)
        service = SimulationService(workers=1)
        service.run_batch(spec)
        info = service.cache.info()
        assert info["hits"] > 0
        assert service.metrics.cache_hit_rate > 0.5

    def test_cache_off_runs_clean(self):
        spec = small_sweep(traces=3)
        service = SimulationService(workers=1, use_cache=False)
        results = service.run_batch(spec)
        assert results.failures == []
        assert service.cache is None
        assert service.metrics.cache_hit_rate == 0.0

    def test_cached_and_uncached_agree_on_admissions(self):
        spec = small_sweep(traces=6, num_requests=5)
        cached = SimulationService(workers=1, use_cache=True).run_batch(spec)
        uncached = SimulationService(workers=1, use_cache=False).run_batch(spec)
        for with_cache, without in zip(cached, uncached):
            assert with_cache.accepted == without.accepted
            assert with_cache.rejected == without.rejected


class TestAggregation:
    def test_aggregate_and_result_lookup(self):
        spec = small_sweep(traces=4)
        results = SimulationService().run_batch(spec)
        aggregate = results.aggregate()
        assert aggregate["traces"] == 4
        assert aggregate["requests"] == 16
        assert aggregate["acceptance_rate"] == pytest.approx(
            aggregate["accepted"] / aggregate["requests"]
        )
        first = spec.jobs[0].name
        assert results.result(first).job_name == first
        stats = results.search_time_stats()
        assert stats.minimum >= 0

    def test_bridges_into_suite_results(self):
        spec = small_sweep(traces=5)
        results = SimulationService().run_batch(spec)
        suite = results.to_suite_results()
        assert isinstance(suite, SuiteResults)
        runs = suite.runs_of("mmkp-mdf")
        assert len(runs) == 5
        assert all(run.deadline_level is None for run in runs)
        # Aggregating over all (None) deadline levels works; the job-count
        # axis is the per-trace request count (4 in this sweep).
        rate = suite.scheduling_rate("mmkp-mdf", deadline_level=None)
        assert set(rate) == {4}

    def test_to_dict_is_json_ready(self):
        import json

        spec = small_sweep(traces=2)
        results = SimulationService().run_batch(spec)
        payload = results.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["aggregate"]["traces"] == 2
        assert len(payload["results"]) == 2
        assert payload["fingerprint"] == results.fingerprint()


class TestValidation:
    def test_bad_constructor_arguments(self):
        with pytest.raises(Exception):
            SimulationService(workers=0)
        with pytest.raises(Exception):
            SimulationService(executor="carrier-pigeon")
