"""``repro.api`` — the composable public front door of the library.

One typed spec tree, one plugin registry, one session facade:

* :mod:`repro.api.spec` — the frozen, validated
  :class:`~repro.api.spec.ExperimentSpec` config tree
  (:class:`PlatformSpec` / :class:`WorkloadSpec` / :class:`SchedulerSpec` /
  :class:`EnergySpec` / :class:`DSESpec`) with full JSON round-trip.
* :mod:`repro.api.registry` — string-keyed plugin registries with
  ``register_scheduler`` / ``register_platform`` / ``register_governor`` /
  ``register_trace_source`` decorators; third-party extensions plug in with
  zero core edits.
* :mod:`repro.api.session` — the :class:`~repro.api.session.Session` facade
  (``Session.from_spec(spec).run()`` / ``.run_batch()`` / ``.explore()``)
  streaming :class:`~repro.api.events.RunEvent` observations.

Typical use::

    from repro.api import ExperimentSpec, Session, WorkloadSpec

    spec = ExperimentSpec(
        name="sweep-point",
        workload=WorkloadSpec.poisson(arrival_rate=0.3, num_requests=20, seed=7),
    )
    log = Session.from_spec(spec).run()

Attribute access is lazy (PEP 562): importing :mod:`repro.api` does not pull
the whole simulation stack until a symbol is actually used, which also keeps
the provider modules free of import cycles.
"""

from __future__ import annotations

__all__ = [
    # spec tree
    "ExperimentSpec",
    "PlatformSpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "EnergySpec",
    "DSESpec",
    "SPEC_SCHEMAS",
    # registries
    "Registry",
    "register_scheduler",
    "register_platform",
    "register_governor",
    "register_trace_source",
    "schedulers",
    "platforms",
    "governors",
    "trace_sources",
    # session + streaming
    "Session",
    "RunEvent",
    "RunEventKind",
    "RunEventStream",
    # columnar operating-point kernel
    "OpTable",
    "as_optable",
    # incremental scheduling engine
    "KernelCaches",
    "kernel_disabled",
    "kernel_enabled",
    "kernel_override",
]

#: Lazy attribute → defining submodule (PEP 562).
_LAZY = {
    "ExperimentSpec": "repro.api.spec",
    "PlatformSpec": "repro.api.spec",
    "WorkloadSpec": "repro.api.spec",
    "SchedulerSpec": "repro.api.spec",
    "EnergySpec": "repro.api.spec",
    "DSESpec": "repro.api.spec",
    "SPEC_SCHEMAS": "repro.api.spec",
    "Registry": "repro.api.registry",
    "register_scheduler": "repro.api.registry",
    "register_platform": "repro.api.registry",
    "register_governor": "repro.api.registry",
    "register_trace_source": "repro.api.registry",
    "schedulers": "repro.api.registry",
    "platforms": "repro.api.registry",
    "governors": "repro.api.registry",
    "trace_sources": "repro.api.registry",
    "Session": "repro.api.session",
    "RunEvent": "repro.api.events",
    "RunEventKind": "repro.api.events",
    "RunEventStream": "repro.api.session",
    "OpTable": "repro.optable",
    "as_optable": "repro.optable",
    "KernelCaches": "repro.kernel",
    "kernel_disabled": "repro.kernel",
    "kernel_enabled": "repro.kernel",
    "kernel_override": "repro.kernel",
}

from repro._lazy import lazy_attributes  # noqa: E402

__getattr__, __dir__ = lazy_attributes(globals(), _LAZY)
