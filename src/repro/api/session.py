"""The :class:`Session` facade: one object from spec to results.

A session materialises an :class:`~repro.api.spec.ExperimentSpec` exactly
once (platform, tables — lazily, cached) and exposes every way of running it:

* :meth:`Session.run` — one simulation, optionally observed through an
  ``on_event`` callback receiving :class:`~repro.api.events.RunEvent`\\ s.
* :meth:`Session.stream` — the same simulation as a generator of run events,
  so callers can consume arrivals, commits, finishes and energy ticks while
  the run is still in flight.
* :meth:`Session.run_batch` — fan the spec out into seeded trials through
  the concurrent :class:`~repro.service.pool.SimulationService`.
* :meth:`Session.explore` — (re)generate operating-point tables with the
  :class:`~repro.dse.DesignSpaceExplorer` per the spec's DSE section.

The facade composes the existing subsystems; it adds no behaviour of its
own, so ``Session.from_spec(spec).run()`` is bit-identical to wiring the
runtime manager by hand.

Examples
--------
>>> from repro.api import ExperimentSpec, Session, WorkloadSpec
>>> spec = ExperimentSpec(name="quick", workload=WorkloadSpec.scenario("S1"))
>>> log = Session.from_spec(spec).run()
>>> log.acceptance_rate
1.0
"""

from __future__ import annotations

import contextvars
import queue
import threading
from typing import Callable, Mapping, Sequence

from repro.api.events import RunEvent, RunEventKind
from repro.api.spec import ExperimentSpec
from repro.exceptions import WorkloadError


class RunEventStream:
    """A live stream of :class:`RunEvent`\\ s with deterministic shutdown.

    Returned by :meth:`Session.stream`.  Iterating yields events as the
    simulation produces them on a worker thread; the stream ends after the
    :attr:`~RunEventKind.END` event.  The stream is also a context manager:
    leaving the ``with`` block — or calling :meth:`close` directly — cancels
    the worker thread and joins it, so abandoning a run mid-flight never
    leaks a thread nor relies on generator garbage collection.

    The worker starts lazily on the first :meth:`__next__` (or explicitly
    via :meth:`__enter__`), feeding a bounded queue; a failure inside the
    simulation is re-raised to the consumer.
    """

    _QUEUE_SIZE = 1024

    class _Closed(BaseException):
        """Raised inside the worker to abort an abandoned simulation."""

    def __init__(self, run, name: str):
        self._run = run  # callable(observer) executing the simulation
        self._name = name
        self._events: queue.Queue = queue.Queue(maxsize=self._QUEUE_SIZE)
        self._cancelled = threading.Event()
        self._worker: threading.Thread | None = None
        self._finished = False

    # -- worker side ---------------------------------------------------- #
    def _put(self, item) -> None:
        while not self._cancelled.is_set():
            try:
                self._events.put(item, timeout=0.05)
                return
            except queue.Full:
                continue
        raise self._Closed

    def _work(self) -> None:
        try:
            self._run(self._put)
        except self._Closed:
            pass
        except BaseException as error:  # noqa: BLE001 — re-raised in consumer
            try:
                self._put(error)
            except self._Closed:
                pass

    def _start(self) -> None:
        if self._worker is None:
            # Run the worker inside a copy of the caller's contextvars
            # context so context-propagated state — a repro.obs tracer in
            # particular — follows the simulation onto the worker thread.
            context = contextvars.copy_context()
            self._worker = threading.Thread(
                target=context.run,
                args=(self._work,),
                name=f"repro-session-{self._name}",
                daemon=True,
            )
            self._worker.start()

    # -- consumer side --------------------------------------------------- #
    def __iter__(self) -> "RunEventStream":
        return self

    def __next__(self) -> RunEvent:
        if self._finished:
            raise StopIteration
        self._start()
        item = self._events.get()
        if isinstance(item, BaseException):
            self.close()
            raise item
        if item.kind is RunEventKind.END:
            # The worker emitted its last event; reap it before handing the
            # final event out so a completed stream never leaves a thread.
            self.close()
        return item

    def close(self) -> None:
        """Cancel the worker (if running) and reap it.  Idempotent."""
        self._finished = True
        self._cancelled.set()
        worker = self._worker
        if worker is None:
            return
        # Unblock a producer stuck between the cancel check and a full
        # queue, then reap the thread.
        while True:
            try:
                self._events.get_nowait()
            except queue.Empty:
                break
        worker.join(timeout=10.0)

    def __enter__(self) -> "RunEventStream":
        self._start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


class Session:
    """A materialised experiment: the single front door to the pipeline.

    Parameters
    ----------
    spec:
        The declarative experiment description.  The session never mutates
        it; derived live objects (platform, tables) are cached per session.
    kernel_caches:
        Optional pre-existing :class:`~repro.kernel.caches.KernelCaches` to
        adopt instead of building a fresh store — the gateway passes one per
        tenant so warm starts survive across sessions and requests.
    store:
        Optional persistent :class:`~repro.store.ContentStore` (or a path
        for a SQLite-backed one).  When given and no ``kernel_caches`` were
        injected, the session's caches — and any batch service it builds —
        become store-backed, so runs warm each other across sessions,
        processes and host restarts.  ``REPRO_STORE=0`` force-disables.
    """

    def __init__(self, spec: ExperimentSpec, *, kernel_caches=None, store=None):
        if not isinstance(spec, ExperimentSpec):
            raise WorkloadError(
                f"Session expects an ExperimentSpec, got {type(spec).__name__}"
            )
        self._spec = spec
        self._platform = None
        self._tables = None
        self._kernel_caches = kernel_caches
        from repro.store.content import resolve_store

        self._store = resolve_store(store)

    @classmethod
    def from_spec(
        cls, spec: ExperimentSpec, *, kernel_caches=None, store=None
    ) -> "Session":
        """The canonical constructor: ``Session.from_spec(spec).run()``."""
        return cls(spec, kernel_caches=kernel_caches, store=store)

    @classmethod
    def from_file(cls, path) -> "Session":
        """Open a session over a saved ``ExperimentSpec`` JSON file."""
        return cls(ExperimentSpec.load(path))

    # ------------------------------------------------------------------ #
    # Materialised components (lazy, cached per session)
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> ExperimentSpec:
        """The immutable experiment description."""
        return self._spec

    @property
    def platform(self):
        """The live platform (built once per session)."""
        if self._platform is None:
            self._platform = self._spec.platform.build()
        return self._platform

    @property
    def tables(self) -> Mapping:
        """The application → configuration-table mapping (resolved once)."""
        if self._tables is None:
            self._tables = self._spec.resolve_tables(self.platform)
        return self._tables

    @property
    def kernel_caches(self):
        """The session's incremental-kernel warm starts (built once).

        Shared by every manager and batch service this session creates, so
        repeated :meth:`run` calls — and the runs that follow an
        :meth:`explore` sweep — start from warm table slices and solver
        memos.  Content-keyed, hence bit-identical reuse by construction.
        """
        if self._kernel_caches is None:
            from repro.store.bindings import store_backed_caches

            self._kernel_caches = store_backed_caches(self._store)
        return self._kernel_caches

    @property
    def store(self):
        """The session's content store, or ``None`` when not configured."""
        return self._store

    def scheduler(self):
        """A fresh scheduler instance per call (schedulers may keep state)."""
        return self._spec.scheduler.build()

    def trace(self):
        """The live request trace of the spec's workload."""
        return self._spec.workload.build(self.tables)

    def manager(self, *, scheduler=None):
        """A runtime manager wired from the spec (fresh scheduler by default)."""
        from repro.runtime.manager import RuntimeManager

        return RuntimeManager.from_spec(
            self._spec,
            platform=self.platform,
            tables=self.tables,
            scheduler=scheduler,
            kernel_caches=self.kernel_caches,
        )

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(
        self,
        *,
        on_event: Callable[[RunEvent], None] | None = None,
        engine: str | None = None,
    ):
        """Simulate the experiment once and return the execution log.

        ``on_event`` observes the run incrementally; observation never
        changes the simulated behaviour.
        """
        return self.manager().run(self.trace(), engine=engine, observer=on_event)

    def stream(self, *, engine: str | None = None) -> RunEventStream:
        """Run the experiment, yielding :class:`RunEvent`\\ s as they happen.

        Returns a :class:`RunEventStream`: iterate it (the simulation
        executes on a worker thread feeding a bounded queue; the final event
        has kind :attr:`~RunEventKind.END` and carries the completed
        :class:`~repro.runtime.log.ExecutionLog` in ``event.data["log"]``),
        or use it as a context manager so an early exit deterministically
        cancels and joins the worker thread::

            with session.stream() as events:
                for event in events:
                    ...

        A failure inside the simulation is re-raised to the consumer.
        """
        return RunEventStream(
            lambda observer: self.run(on_event=observer, engine=engine),
            self._spec.name,
        )

    # ------------------------------------------------------------------ #
    # Batch fan-out
    # ------------------------------------------------------------------ #
    def to_batch(
        self,
        trials: int = 1,
        seeds: Sequence[int] | None = None,
        name: str | None = None,
    ):
        """Expand the spec into a :class:`~repro.service.jobs.BatchSpec`.

        With ``seeds`` (or ``trials > 1`` on a seeded workload) one job is
        created per seed; per-job seeding is what keeps batch results
        bit-identical for any worker count.
        """
        from repro.service.jobs import BatchSpec

        if trials < 1:
            raise WorkloadError(f"trials must be positive, got {trials}")
        if seeds is None:
            if trials == 1:
                resolved: list[int | None] = [None]
            else:
                base = int(self._spec.workload.options.get("seed", 0))
                resolved = [base + index for index in range(trials)]
        else:
            resolved = list(seeds)
        # Named table sets travel by name (small, process-executor friendly);
        # inline/DSE tables are materialised once via the session cache so a
        # batch never re-runs the exploration per job.
        tables = None if self._spec.tables is not None else self.tables
        jobs = []
        for index, seed in enumerate(resolved):
            job_name = (
                self._spec.name
                if len(resolved) == 1
                else f"{self._spec.name}-t{index:03d}"
            )
            jobs.append(self._spec.to_job(name=job_name, seed=seed, tables=tables))
        return BatchSpec(name=name or self._spec.name, jobs=tuple(jobs))

    def run_batch(
        self,
        trials: int = 1,
        seeds: Sequence[int] | None = None,
        *,
        workers: int = 1,
        executor: str = "auto",
        use_cache: bool = True,
        cache_size: int = 4096,
        service=None,
        progress=None,
    ):
        """Run the spec as a seeded batch and return the ordered results.

        A pre-configured :class:`~repro.service.pool.SimulationService` may
        be passed to share its activation cache and metrics across sessions.
        """
        if service is None:
            from repro.service.pool import SimulationService

            service = SimulationService(
                workers=workers,
                executor=executor,
                use_cache=use_cache,
                cache_size=cache_size,
                kernel_caches=self.kernel_caches,
                store=self._store,
            )
        return service.run_batch(
            self.to_batch(trials=trials, seeds=seeds), progress=progress
        )

    # ------------------------------------------------------------------ #
    # Design-space exploration
    # ------------------------------------------------------------------ #
    def explore(
        self,
        graph=None,
        *,
        executor: str | None = None,
        workers: int = 1,
        store=None,
    ):
        """Run the DSE flow of the spec's ``dse`` section.

        Without arguments, regenerates the full per-application table set on
        the session's platform and caches it as the session tables (so a
        subsequent :meth:`run` schedules against the freshly explored
        points).  With ``graph``, explores that one KPN graph and returns
        its :class:`~repro.core.config.ConfigTable` without touching the
        session state.

        ``executor`` routes the full-table regeneration through the
        distributed sweep engine (:func:`repro.dse.sweep.run_sweep`) instead
        of the serial explorer: ``"serial"``, ``"thread"``, ``"process"`` or
        ``"cluster"``, with ``workers`` parallel workers and an optional
        content ``store`` (instance or path) memoising exploration tasks
        across workers and reruns.  The resulting tables are bit-identical
        to the serial path; only the wall time changes.  ``store=None``
        falls back to the session's own store.
        """
        from repro.dse.explorer import DesignSpaceExplorer

        if graph is not None:
            explorer = DesignSpaceExplorer.from_spec(self._spec, platform=self.platform)
            scales = None
            if self._spec.dse is not None and self._spec.dse.sweep_opps:
                from repro.energy.opp import available_scales, ensure_opps

                scales = available_scales(ensure_opps(self.platform))
            return explorer.explore(graph, opp_scales=scales)
        if self._spec.dse is None:
            raise WorkloadError(
                "experiment spec has no dse section; nothing to explore"
            )
        if executor is None:
            self._tables = self._spec.dse.build_tables(self.platform)
            return self._tables
        from repro.dse.sweep import SweepSpec, run_sweep
        from repro.dse.tables import reduced_tables

        dse = self._spec.dse
        sweep_spec = SweepSpec(
            platforms=(self.platform.name,),
            input_sizes=dse.input_sizes,
            sweep_opps=dse.sweep_opps,
            schedulers=(),
            scenarios=(),
        )
        result = run_sweep(
            sweep_spec,
            platforms=(self.platform,),
            executor=executor,
            workers=workers,
            store=store if store is not None else self._store,
        )
        tables = result.tables_for(self.platform.name)
        if dse.max_points is not None:
            tables = reduced_tables(tables, max_points=dse.max_points)
        self._tables = tables
        return self._tables

    def __repr__(self) -> str:
        return f"Session({self._spec.name!r}, scheduler={self._spec.scheduler.name!r})"


__all__ = ["RunEventStream", "Session"]
