"""String-keyed plugin registries: the extension points of the library.

Every pluggable axis of the reproduction — schedulers, platforms, frequency
governors and request-trace sources — is looked up through one of the
:class:`Registry` instances defined here.  Third-party code extends the
library by *registering*, never by editing core modules::

    from repro.api import register_scheduler
    from repro.schedulers.base import Scheduler, SchedulingResult

    @register_scheduler("always-reject")
    class AlwaysRejectScheduler(Scheduler):
        name = "always-reject"

        def schedule(self, problem):
            return SchedulingResult(feasible=False, schedule=None,
                                    energy=float("inf"), search_time=0.0)

Once registered, the name participates everywhere names are accepted: CLI
``--scheduler`` choices, :class:`~repro.service.jobs.SimulationJob` specs,
:class:`~repro.api.spec.SchedulerSpec` and :class:`~repro.api.session.Session`
runs.

A :class:`Registry` is a read-only :class:`~collections.abc.Mapping` from
name to factory, so legacy code that iterated the old hard-coded dicts
(``sorted(SCHEDULERS)``, ``SCHEDULERS[name]()``) keeps working against the
registry objects that replaced them.

Error contract
--------------
* Registering a duplicate name raises :class:`~repro.exceptions.RegistryError`
  (pass ``replace=True`` to override deliberately, e.g. in tests).
* Looking up an unknown name raises the registry's *domain* error
  (:class:`~repro.exceptions.WorkloadError` or
  :class:`~repro.exceptions.EnergyError` — whatever the pre-registry code
  raised) and the message lists every registered name.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, TypeVar

from repro.exceptions import EnergyError, RegistryError, WorkloadError

T = TypeVar("T")


class Registry(Mapping):
    """A named, string-keyed factory registry (read-only mapping view).

    Parameters
    ----------
    kind:
        Human-readable name of the registered thing (``"scheduler"``); used
        in error messages.
    error_type:
        Exception class raised on unknown-name lookup.  Defaults to
        :class:`~repro.exceptions.WorkloadError` (the historical behaviour of
        the scheduler/platform registries).

    Examples
    --------
    >>> registry = Registry("widget")
    >>> @registry.register("null")
    ... class NullWidget:
    ...     pass
    >>> sorted(registry)
    ['null']
    >>> isinstance(registry.build("null"), NullWidget)
    True
    """

    def __init__(self, kind: str, error_type: type = WorkloadError):
        self._kind = kind
        self._error = error_type
        self._factories: dict[str, Callable[..., Any]] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator.

        With ``factory`` omitted, returns a decorator registering the
        decorated class/callable.  Duplicate names raise
        :class:`~repro.exceptions.RegistryError` unless ``replace=True``.
        """
        if factory is None:

            def decorator(obj: Callable[..., Any]) -> Callable[..., Any]:
                self.register(name, obj, replace=replace)
                return obj

            return decorator
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"{self._kind} registry keys must be non-empty strings, got {name!r}"
            )
        if not callable(factory):
            raise RegistryError(
                f"{self._kind} factory for {name!r} must be callable, got "
                f"{type(factory).__name__}"
            )
        if not replace and name in self._factories:
            raise RegistryError(
                f"{self._kind} {name!r} is already registered "
                f"({self._factories[name]!r}); pass replace=True to override"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove a registration (primarily for test teardown)."""
        if name not in self._factories:
            raise RegistryError(f"{self._kind} {name!r} is not registered")
        del self._factories[name]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def build(self, name: str, /, *args, **options):
        """Instantiate the named plugin (a fresh object per call)."""
        return self[name](*args, **options)

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._factories)

    def get(self, name, default=None):
        """Dict-style optional lookup (no domain error on a miss).

        The Mapping mixin's ``get`` only swallows ``KeyError`` while
        :meth:`__getitem__` raises the domain error, so this override keeps
        the promised drop-in dict behaviour.
        """
        return self._factories.get(name, default)

    # Mapping protocol — keeps the registry drop-in compatible with the
    # hard-coded ``dict`` registries it replaced.
    def __getitem__(self, name: str) -> Callable[..., Any]:
        try:
            return self._factories[name]
        except KeyError:
            raise self._error(
                f"unknown {self._kind} {name!r}; choose from {self.names()}"
            ) from None

    def __contains__(self, name: object) -> bool:
        # The Mapping mixin probes __getitem__ and swallows KeyError only;
        # ours raises the domain error, so membership must not go through it.
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry({self._kind!r}, {self.names()})"


# ---------------------------------------------------------------------- #
# The library's registries
# ---------------------------------------------------------------------- #
#: Scheduler registry: name → zero-/keyword-argument factory.  A *fresh*
#: instance is built per simulation because some schedulers (EX-MEM) keep
#: per-solve state.
schedulers = Registry("scheduler", WorkloadError)

#: Platform registry: name → factory returning a :class:`Platform`.
platforms = Registry("platform", WorkloadError)

#: Frequency-governor registry: name → factory (see :mod:`repro.energy.governor`).
governors = Registry("governor", EnergyError)

#: Trace-source registry: name → ``factory(tables, **options)`` returning a
#: :class:`~repro.runtime.trace.RequestTrace`.  Sources receive the resolved
#: configuration tables because generated traces draw their applications and
#: deadline scales from them.
trace_sources = Registry("trace source", WorkloadError)


def register_scheduler(name: str, factory=None, *, replace: bool = False):
    """Register a scheduler factory (decorator form when ``factory`` is omitted)."""
    return schedulers.register(name, factory, replace=replace)


def register_platform(name: str, factory=None, *, replace: bool = False):
    """Register a platform factory (decorator form when ``factory`` is omitted)."""
    return platforms.register(name, factory, replace=replace)


def register_governor(name: str, factory=None, *, replace: bool = False):
    """Register a frequency-governor factory (decorator form when ``factory`` is omitted)."""
    return governors.register(name, factory, replace=replace)


def register_trace_source(name: str, factory=None, *, replace: bool = False):
    """Register a trace source ``factory(tables, **options)`` (decorator form allowed)."""
    return trace_sources.register(name, factory, replace=replace)


# ---------------------------------------------------------------------- #
# Built-in registrations
# ---------------------------------------------------------------------- #
# The registries are populated here (rather than in the defining modules) so
# that importing ``repro.api.registry`` is always enough to see the full
# built-in vocabulary, and so the provider modules stay import-light.
from repro.energy.governor import (  # noqa: E402
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    ScheduleAwareGovernor,
)
from repro.platforms import big_little, odroid_xu4  # noqa: E402
from repro.runtime.trace import poisson_trace  # noqa: E402
from repro.schedulers import (  # noqa: E402
    ExMemScheduler,
    FixedMinEnergyScheduler,
    MMKPLRScheduler,
    MMKPMDFScheduler,
)
from repro.workload.motivational import (  # noqa: E402
    motivational_platform,
    motivational_trace,
)

register_scheduler("mmkp-mdf", MMKPMDFScheduler)
register_scheduler("mmkp-lr", MMKPLRScheduler)
register_scheduler("ex-mem", ExMemScheduler)
register_scheduler("fixed", FixedMinEnergyScheduler)

register_platform("motivational", motivational_platform)
register_platform("odroid-xu4", odroid_xu4)
register_platform("big-little-2x2", lambda: big_little(2, 2))
register_platform("big-little-4x4", lambda: big_little(4, 4))

register_governor(PerformanceGovernor.name, PerformanceGovernor)
register_governor(PowersaveGovernor.name, PowersaveGovernor)
register_governor(OndemandGovernor.name, OndemandGovernor)
register_governor(ScheduleAwareGovernor.name, ScheduleAwareGovernor)


@register_trace_source("poisson")
def _poisson_source(
    tables,
    *,
    arrival_rate: float,
    num_requests: int,
    deadline_factor_range=(1.5, 4.0),
    seed: int = 0,
):
    """Poisson arrivals over the applications of ``tables`` (the sweep default)."""
    low, high = deadline_factor_range
    return poisson_trace(
        tables,
        arrival_rate=float(arrival_rate),
        num_requests=int(num_requests),
        deadline_factor_range=(float(low), float(high)),
        seed=int(seed),
    )


@register_trace_source("motivational")
def _motivational_source(tables, *, scenario: str = "S1"):
    """The hand-written S1/S2 scenarios of the paper's motivational example."""
    return motivational_trace(scenario)


@register_trace_source("explicit")
def _explicit_source(tables, *, events):
    """Explicit request events, in the :mod:`repro.io` trace-dict format."""
    from repro.io.serialization import request_trace_from_dict

    return request_trace_from_dict({"events": list(events)})


__all__ = [
    "Registry",
    "schedulers",
    "platforms",
    "governors",
    "trace_sources",
    "register_scheduler",
    "register_platform",
    "register_governor",
    "register_trace_source",
]
