"""The typed, frozen experiment-specification tree.

An :class:`ExperimentSpec` is the single declarative description of one
runtime-manager experiment: which platform, which design-time tables (named,
inline, or DSE-generated), which workload, which scheduler, and which energy
policy.  It replaces the scattered kwargs of
:class:`~repro.runtime.manager.RuntimeManager`, the loose fields of
:class:`~repro.service.jobs.SimulationJob` and the ad-hoc CLI flag plumbing
with one validated config tree that round-trips through plain JSON::

    spec = ExperimentSpec(
        name="demo",
        platform=PlatformSpec(name="odroid-xu4"),
        tables="paper-reduced",
        workload=WorkloadSpec.poisson(arrival_rate=0.3, num_requests=20, seed=7),
        scheduler=SchedulerSpec(name="mmkp-mdf"),
        energy=EnergySpec(governor="schedule-aware"),
    )
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec

All spec classes are frozen dataclasses holding plain data only (strings,
numbers, lists, dicts) — never live objects — so specs hash out of the
conversation cheaply: they serialise, shard and compare structurally.  Every
``build``/``resolve`` method materialises live objects through the plugin
registries of :mod:`repro.api.registry`, so a name registered by third-party
code is immediately valid in a spec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import SerializationError, WorkloadError

#: The time-advance engines of the runtime manager (kept as a literal so
#: importing the spec tree stays light; equality with
#: :data:`repro.runtime.manager.ENGINES` is asserted by the API tests).
ENGINES = ("events", "linear")


def _canonical(value):
    """Normalise nested data to its JSON shape (tuples → lists, Mappings → dicts).

    Specs promise ``from_dict(to_dict(spec)) == spec``; canonicalising at
    construction time makes that hold even when callers pass tuples where
    JSON will hand back lists.
    """
    if isinstance(value, Mapping):
        return {str(key): _canonical(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(entry) for entry in value]
    return value


def _optional_positive(value, label: str) -> float | None:
    if value is None:
        return None
    value = float(value)
    if value <= 0:
        raise WorkloadError(f"{label} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class PlatformSpec:
    """Which platform to run on: a registry name or an inline description.

    Exactly one of ``name`` (a :data:`repro.api.registry.platforms` key) and
    ``inline`` (a :func:`repro.io.platform_to_dict` dictionary) must be set.

    Examples
    --------
    >>> PlatformSpec(name="odroid-xu4").build().name
    'odroid-xu4'
    """

    name: str | None = "motivational"
    inline: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if (self.name is None) == (self.inline is None):
            raise WorkloadError(
                "platform spec: exactly one of name and inline is required"
            )
        if self.inline is not None:
            object.__setattr__(self, "inline", _canonical(self.inline))

    @classmethod
    def from_platform(cls, platform) -> "PlatformSpec":
        """Embed a live :class:`~repro.platforms.Platform` inline."""
        from repro.io.serialization import platform_to_dict

        return cls(name=None, inline=platform_to_dict(platform))

    def build(self):
        """The live :class:`~repro.platforms.Platform`."""
        if self.inline is not None:
            from repro.io.serialization import platform_from_dict

            return platform_from_dict(self.inline)
        from repro.api.registry import platforms

        return platforms.build(self.name)

    def to_dict(self) -> dict:
        if self.inline is not None:
            return {"inline": self.inline}
        return {"name": self.name}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        _check_mapping(data, "platform spec")
        if "inline" in data and data["inline"] is not None:
            return cls(name=None, inline=data["inline"])
        return cls(name=data.get("name", "motivational"))


@dataclass(frozen=True)
class WorkloadSpec:
    """Which request trace drives the run: a trace *source* plus its options.

    ``source`` names a :data:`repro.api.registry.trace_sources` entry; the
    options are passed to the source factory as keyword arguments.  The three
    built-in sources are ``"poisson"`` (generated arrivals),
    ``"motivational"`` (the paper's S1/S2 scenarios) and ``"explicit"``
    (inline event list); third parties register more with
    :func:`repro.api.registry.register_trace_source`.

    Examples
    --------
    >>> spec = WorkloadSpec.poisson(arrival_rate=0.2, num_requests=5, seed=3)
    >>> spec.source
    'poisson'
    """

    source: str = "poisson"
    options: Mapping[str, Any] = field(
        default_factory=lambda: {"arrival_rate": 0.2, "num_requests": 10, "seed": 0}
    )

    def __post_init__(self) -> None:
        if not self.source:
            raise WorkloadError("workload spec: source must not be empty")
        object.__setattr__(self, "options", _canonical(self.options))

    # ------------------------------------------------------------------ #
    # Typed constructors for the built-in sources
    # ------------------------------------------------------------------ #
    @classmethod
    def poisson(
        cls,
        arrival_rate: float,
        num_requests: int,
        deadline_factor_range: tuple[float, float] = (1.5, 4.0),
        seed: int = 0,
    ) -> "WorkloadSpec":
        """Poisson arrivals (the shape of every sweep in the evaluation)."""
        return cls(
            source="poisson",
            options={
                "arrival_rate": float(arrival_rate),
                "num_requests": int(num_requests),
                "deadline_factor_range": list(deadline_factor_range),
                "seed": int(seed),
            },
        )

    @classmethod
    def scenario(cls, name: str = "S1") -> "WorkloadSpec":
        """One of the motivational scenarios (``"S1"`` or ``"S2"``)."""
        return cls(source="motivational", options={"scenario": name})

    @classmethod
    def from_trace(cls, trace) -> "WorkloadSpec":
        """Embed an explicit :class:`~repro.runtime.trace.RequestTrace` inline."""
        from repro.io.serialization import request_trace_to_dict

        return cls(
            source="explicit",
            options={"events": request_trace_to_dict(trace)["events"]},
        )

    def with_seed(self, seed: int) -> "WorkloadSpec":
        """Copy with the generator seed replaced (seeded sources only).

        A source counts as seeded when the spec carries a ``seed`` option or
        the registered factory accepts one (e.g. a poisson spec relying on
        the default seed).
        """
        seedable = "seed" in self.options
        if not seedable:
            import inspect

            from repro.api.registry import trace_sources

            factory = trace_sources.get(self.source)
            if factory is not None:
                try:
                    seedable = "seed" in inspect.signature(factory).parameters
                except (TypeError, ValueError):  # pragma: no cover — C callables
                    pass
        if not seedable:
            raise WorkloadError(
                f"workload source {self.source!r} is not seeded; cannot reseed"
            )
        options = dict(self.options)
        options["seed"] = int(seed)
        return replace(self, options=options)

    def build(self, tables):
        """Materialise the live trace against the resolved tables."""
        from repro.api.registry import trace_sources

        factory = trace_sources[self.source]
        try:
            return factory(tables, **self.options)
        except TypeError as error:
            # Missing/misspelled option keys surface as TypeErrors from the
            # factory call; wrap them so spec mistakes stay ReproErrors (the
            # CLI's error contract) instead of raw tracebacks.
            raise WorkloadError(
                f"workload source {self.source!r} rejected its options "
                f"{sorted(self.options)}: {error}"
            ) from None

    def to_dict(self) -> dict:
        return {"source": self.source, "options": self.options}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        _check_mapping(data, "workload spec")
        if "source" not in data:
            raise SerializationError("workload spec: missing required field 'source'")
        return cls(source=data["source"], options=data.get("options", {}))


@dataclass(frozen=True)
class SchedulerSpec:
    """Which scheduling algorithm to activate, and how.

    ``name`` is a :data:`repro.api.registry.schedulers` key; ``options`` are
    keyword arguments of the registered factory (e.g. policy choices).
    ``remap_on_finish`` re-activates the scheduler on every job completion
    (the fixed-mapper behaviour of Fig. 1(b)).
    """

    name: str = "mmkp-mdf"
    remap_on_finish: bool = False
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("scheduler spec: name must not be empty")
        object.__setattr__(self, "options", _canonical(self.options))

    def build(self):
        """A fresh scheduler instance (some schedulers keep per-solve state)."""
        from repro.api.registry import schedulers

        factory = schedulers[self.name]
        try:
            return factory(**self.options)
        except TypeError as error:
            # Keep spec mistakes inside the ReproError hierarchy (the CLI's
            # error contract) instead of leaking factory TypeErrors.
            raise WorkloadError(
                f"scheduler {self.name!r} rejected its options "
                f"{sorted(self.options)}: {error}"
            ) from None

    def to_dict(self) -> dict:
        data: dict[str, Any] = {"name": self.name}
        if self.remap_on_finish:
            data["remap_on_finish"] = True
        if self.options:
            data["options"] = self.options
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchedulerSpec":
        _check_mapping(data, "scheduler spec")
        return cls(
            name=data.get("name", "mmkp-mdf"),
            remap_on_finish=bool(data.get("remap_on_finish", False)),
            options=data.get("options", {}),
        )


@dataclass(frozen=True)
class EnergySpec:
    """The energy policy: governor, admission envelope, accounting switch.

    All defaults reproduce the seed's pinned-frequency, unconstrained
    behaviour bit-identically.
    """

    governor: str | None = None
    power_cap_watts: float | None = None
    energy_budget_joules: float | None = None
    account_energy: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "power_cap_watts",
            _optional_positive(self.power_cap_watts, "power cap"),
        )
        object.__setattr__(
            self,
            "energy_budget_joules",
            _optional_positive(self.energy_budget_joules, "energy budget"),
        )

    def build_governor(self):
        """The live governor, or ``None`` for pinned-frequency operation."""
        if self.governor is None:
            return None
        from repro.api.registry import governors

        return governors.build(self.governor)

    def build_budget(self):
        """The admission-control envelope, or ``None`` when unconstrained."""
        if self.power_cap_watts is None and self.energy_budget_joules is None:
            return None
        from repro.energy.budget import EnergyBudget

        return EnergyBudget(
            power_cap_watts=self.power_cap_watts,
            energy_budget_joules=self.energy_budget_joules,
        )

    def to_dict(self) -> dict:
        data: dict[str, Any] = {}
        if self.governor is not None:
            data["governor"] = self.governor
        if self.power_cap_watts is not None:
            data["power_cap_watts"] = self.power_cap_watts
        if self.energy_budget_joules is not None:
            data["energy_budget_joules"] = self.energy_budget_joules
        if not self.account_energy:
            data["account_energy"] = False
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnergySpec":
        _check_mapping(data, "energy spec")
        return cls(
            governor=data.get("governor"),
            power_cap_watts=data.get("power_cap_watts"),
            energy_budget_joules=data.get("energy_budget_joules"),
            account_energy=bool(data.get("account_energy", True)),
        )


@dataclass(frozen=True)
class DSESpec:
    """How to (re)generate the operating-point tables at design time.

    Used when an experiment derives its tables from the DSE flow instead of
    naming a pre-built set: ``Session.explore()`` runs the exploration and
    feeds the result straight into the runtime manager.
    """

    input_sizes: tuple[str, ...] | None = None
    sweep_opps: bool = False
    max_points: int | None = None

    def __post_init__(self) -> None:
        if self.input_sizes is not None:
            object.__setattr__(self, "input_sizes", tuple(self.input_sizes))
        if self.max_points is not None and self.max_points <= 0:
            raise WorkloadError(
                f"dse spec: max_points must be positive, got {self.max_points}"
            )

    def build_tables(self, platform=None):
        """Run the DSE flow and return the operating-point tables."""
        from repro.dse import paper_operating_points, reduced_tables

        tables = paper_operating_points(
            platform, input_sizes=self.input_sizes, sweep_opps=self.sweep_opps
        )
        if self.max_points is not None:
            tables = reduced_tables(tables, max_points=self.max_points)
        return tables

    def to_dict(self) -> dict:
        data: dict[str, Any] = {}
        if self.input_sizes is not None:
            data["input_sizes"] = list(self.input_sizes)
        if self.sweep_opps:
            data["sweep_opps"] = True
        if self.max_points is not None:
            data["max_points"] = self.max_points
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DSESpec":
        _check_mapping(data, "dse spec")
        sizes = data.get("input_sizes")
        return cls(
            input_sizes=tuple(sizes) if sizes is not None else None,
            sweep_opps=bool(data.get("sweep_opps", False)),
            max_points=data.get("max_points"),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """The complete declarative description of one experiment.

    Composes the section specs above plus the design-time table choice:
    ``tables`` names a :func:`repro.workload.named_tables` set,
    ``tables_inline`` embeds a :func:`repro.io.tables_to_dict` dictionary,
    and with both unset the ``dse`` section generates the tables on the
    spec's platform.

    Examples
    --------
    >>> spec = ExperimentSpec(name="demo",
    ...                       workload=WorkloadSpec.scenario("S1"))
    >>> ExperimentSpec.from_dict(spec.to_dict()) == spec
    True
    """

    name: str = "experiment"
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    energy: EnergySpec = field(default_factory=EnergySpec)
    dse: DSESpec | None = None
    tables: str | None = "motivational"
    tables_inline: Mapping[str, Any] | None = None
    engine: str = "events"

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("experiment spec: name must not be empty")
        if self.engine not in ENGINES:
            raise WorkloadError(
                f"experiment spec: unknown engine {self.engine!r}; "
                f"choose from {ENGINES}"
            )
        if self.tables is not None and self.tables_inline is not None:
            raise WorkloadError(
                "experiment spec: tables and tables_inline are mutually exclusive"
            )
        if self.dse is not None and (
            self.tables is not None or self.tables_inline is not None
        ):
            # Without this check a dse section next to the (defaulted)
            # tables name would be silently ignored — resolve_tables prefers
            # named/inline tables, so the exploration would never run.
            raise WorkloadError(
                "experiment spec: a dse section generates the tables; "
                "pass tables=None (and no tables_inline) alongside it"
            )
        if self.tables is None and self.tables_inline is None and self.dse is None:
            raise WorkloadError(
                "experiment spec: one of tables, tables_inline and dse is required"
            )
        if self.tables_inline is not None:
            object.__setattr__(self, "tables_inline", _canonical(self.tables_inline))

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def resolve_tables(self, platform=None) -> dict:
        """The live application → configuration-table mapping.

        ``platform`` is only consulted by the DSE path (tables generated on
        the experiment's platform).
        """
        if self.tables_inline is not None:
            from repro.io.serialization import tables_from_dict

            return tables_from_dict(self.tables_inline)
        if self.tables is not None:
            from repro.workload import named_tables

            return named_tables(self.tables)
        return self.dse.build_tables(platform)

    def to_job(
        self,
        name: str | None = None,
        seed: int | None = None,
        tables: Mapping | None = None,
    ):
        """Convert to a declarative :class:`~repro.service.jobs.SimulationJob`.

        This is the bridge into :class:`~repro.service.pool.SimulationService`
        batches: one spec fans out into many jobs (one per trial seed).
        ``tables`` injects already-materialised tables (the
        :class:`~repro.api.session.Session` cache) — essential for
        DSE-generated tables, which would otherwise be re-explored by every
        job of a batch.
        """
        from repro.service.jobs import SimulationJob, TraceSpec

        if self.scheduler.options:
            raise WorkloadError(
                "simulation jobs carry schedulers by registry name only; "
                "register a preconfigured scheduler instead of passing options"
            )
        if tables is not None:
            job_tables: Any = dict(tables)
        elif self.tables is not None:
            job_tables = self.tables
        else:
            # Inline or DSE tables: materialise once, on the spec's own
            # platform — a DSE run on the default platform would diverge
            # from what Session.run() schedules against.
            job_tables = self.resolve_tables(self.platform.build())

        def live_tables():
            if isinstance(job_tables, str):
                from repro.workload import named_tables

                return named_tables(job_tables)
            return job_tables

        trace = None
        trace_spec = None
        # Reseeding is source-generic: any seeded source (built-in or
        # registered) fans out into per-trial jobs; unseeded sources raise
        # the with_seed error.
        workload = self.workload if seed is None else self.workload.with_seed(seed)
        if workload.source == "poisson":
            # Bridge to the declarative TraceSpec so batch JSON stays small.
            # Option keys are validated exactly like the Session.run() path
            # (WorkloadSpec.build) — a typo must not silently run defaults.
            options = dict(workload.options)
            unknown = set(options) - {
                "arrival_rate",
                "num_requests",
                "deadline_factor_range",
                "seed",
            }
            if unknown:
                raise WorkloadError(
                    f"workload source 'poisson' rejected its options: "
                    f"unknown keys {sorted(unknown)}"
                )
            try:
                low, high = options.get("deadline_factor_range", (1.5, 4.0))
                trace_spec = TraceSpec(
                    arrival_rate=float(options["arrival_rate"]),
                    num_requests=int(options["num_requests"]),
                    deadline_factor_range=(float(low), float(high)),
                    seed=int(options.get("seed", 0)),
                )
            except (KeyError, TypeError, ValueError) as error:
                raise WorkloadError(
                    f"workload source 'poisson' rejected its options "
                    f"{sorted(options)}: {error!r}"
                ) from None
        else:
            # Any registered source materialises to an explicit trace.
            trace = workload.build(live_tables())
        platform = self.platform.name
        if platform is None:
            platform = self.platform.build()
        return SimulationJob(
            name=name or self.name,
            scheduler=self.scheduler.name,
            platform=platform,
            tables=job_tables,
            remap_on_finish=self.scheduler.remap_on_finish,
            engine=self.engine,
            trace=trace,
            trace_spec=trace_spec,
            governor=self.energy.governor,
            power_cap_watts=self.energy.power_cap_watts,
            energy_budget_joules=self.energy.energy_budget_joules,
        )

    @classmethod
    def from_job(cls, job) -> "ExperimentSpec":
        """Lift a legacy :class:`~repro.service.jobs.SimulationJob` into a spec."""
        from repro.io.serialization import tables_to_dict

        if job.trace_spec is not None:
            workload = WorkloadSpec.poisson(
                arrival_rate=job.trace_spec.arrival_rate,
                num_requests=job.trace_spec.num_requests,
                deadline_factor_range=job.trace_spec.deadline_factor_range,
                seed=job.trace_spec.seed,
            )
        else:
            workload = WorkloadSpec.from_trace(job.trace)
        if isinstance(job.platform, str):
            platform = PlatformSpec(name=job.platform)
        else:
            platform = PlatformSpec.from_platform(job.platform)
        tables = job.tables if isinstance(job.tables, str) else None
        tables_inline = None if tables is not None else tables_to_dict(job.tables)
        return cls(
            name=job.name,
            platform=platform,
            workload=workload,
            scheduler=SchedulerSpec(
                name=job.scheduler, remap_on_finish=job.remap_on_finish
            ),
            energy=EnergySpec(
                governor=job.governor,
                power_cap_watts=job.power_cap_watts,
                energy_budget_joules=job.energy_budget_joules,
            ),
            tables=tables,
            tables_inline=tables_inline,
            engine=job.engine,
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        data: dict[str, Any] = {
            "name": self.name,
            "platform": self.platform.to_dict(),
            "workload": self.workload.to_dict(),
            "scheduler": self.scheduler.to_dict(),
            "engine": self.engine,
        }
        energy = self.energy.to_dict()
        if energy:
            data["energy"] = energy
        if self.dse is not None:
            data["dse"] = self.dse.to_dict()
        if self.tables is not None:
            data["tables"] = self.tables
        if self.tables_inline is not None:
            data["tables_inline"] = self.tables_inline
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        _check_mapping(data, "experiment spec")
        try:
            return cls(
                name=data.get("name", "experiment"),
                platform=PlatformSpec.from_dict(data.get("platform", {})),
                workload=(
                    WorkloadSpec.from_dict(data["workload"])
                    if "workload" in data
                    else WorkloadSpec()
                ),
                scheduler=SchedulerSpec.from_dict(data.get("scheduler", {})),
                energy=EnergySpec.from_dict(data.get("energy", {})),
                dse=DSESpec.from_dict(data["dse"]) if "dse" in data else None,
                tables=data.get(
                    "tables",
                    None if ("tables_inline" in data or "dse" in data) else "motivational",
                ),
                tables_inline=data.get("tables_inline"),
                engine=data.get("engine", "events"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(f"invalid experiment spec: {error}") from None

    def to_json(self, indent: int = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(f"invalid experiment spec JSON: {error}") from None
        return cls.from_dict(data)

    def save(self, path: str | Path) -> None:
        """Write the spec as a JSON file (the ``repro-rm run`` input format)."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec written by :meth:`save`."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise SerializationError(f"cannot read experiment spec: {error}") from None
        return cls.from_json(text)


def _check_mapping(data, label: str) -> None:
    if not isinstance(data, Mapping):
        raise SerializationError(f"{label}: expected a mapping, got {type(data).__name__}")


#: Field-name snapshot used by the API-surface tests: changing a spec schema
#: must be a conscious, reviewed act.
SPEC_SCHEMAS = {
    cls.__name__: tuple(f.name for f in fields(cls))
    for cls in (
        PlatformSpec,
        WorkloadSpec,
        SchedulerSpec,
        EnergySpec,
        DSESpec,
        ExperimentSpec,
    )
}

__all__ = [
    "ENGINES",
    "PlatformSpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "EnergySpec",
    "DSESpec",
    "ExperimentSpec",
    "SPEC_SCHEMAS",
]
