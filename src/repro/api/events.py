"""Streaming run events emitted by the runtime manager.

Long simulations are opaque when the only output is the final
:class:`~repro.runtime.log.ExecutionLog`.  A :class:`RunEvent` is one
incremental observation — a request arriving, an admission decision, a
schedule commit, an executed interval with its energy, a job finishing —
delivered while the run is still in flight, either through a callback
(``Session.run(on_event=...)``) or a generator (``Session.stream()``).

Observation never changes simulation behaviour: the manager emits events
*about* state transitions it performs anyway, so a run with and without an
observer produces bit-identical logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class RunEventKind(enum.Enum):
    """What happened, in runtime-manager vocabulary."""

    #: A request arrived and the scheduler is about to be activated.
    ARRIVAL = "arrival"
    #: The arrival was admitted (``data``: scheduler search time).
    ADMIT = "admit"
    #: The arrival was rejected (``data["reason"]``: ``"infeasible"`` or
    #: ``"budget"``).
    REJECT = "reject"
    #: A new schedule was committed (``data``: segment count, DVFS speed).
    COMMIT = "commit"
    #: One interval of the committed schedule executed (``data``: start, end,
    #: joules) — the energy tick of a streaming consumer.
    INTERVAL = "interval"
    #: A job completed (``request`` names it).
    FINISH = "finish"
    #: Incremental-kernel summary of the run (``data``: activations, packer
    #: placements resumed vs replayed, prune scans skipped, commits).
    #: Emitted once, just before :attr:`END`, only when the kernel is active
    #: (``REPRO_KERNEL=1``); purely observational like every other event.
    KERNEL = "kernel"
    #: The run is over (``data["log"]`` carries the final
    #: :class:`~repro.runtime.log.ExecutionLog`).
    END = "end"


@dataclass(frozen=True)
class RunEvent:
    """One streamed observation of a running simulation.

    Attributes
    ----------
    kind:
        The event kind (see :class:`RunEventKind`).
    time:
        Simulated time of the event in seconds.
    request:
        Name of the request/job concerned, when the event is about one.
    data:
        Kind-specific payload (see the per-kind notes on
        :class:`RunEventKind`).
    """

    kind: RunEventKind
    time: float
    request: str | None = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # compact, log-friendly rendering
        request = f" {self.request}" if self.request else ""
        extras = ", ".join(
            f"{key}={value}" for key, value in self.data.items() if key != "log"
        )
        extras = f" ({extras})" if extras else ""
        return f"[{self.time:10.4f}] {self.kind.value}{request}{extras}"


__all__ = ["RunEvent", "RunEventKind"]
