"""Streaming run events emitted by the runtime manager.

Long simulations are opaque when the only output is the final
:class:`~repro.runtime.log.ExecutionLog`.  A :class:`RunEvent` is one
incremental observation — a request arriving, an admission decision, a
schedule commit, an executed interval with its energy, a job finishing —
delivered while the run is still in flight, either through a callback
(``Session.run(on_event=...)``) or a generator (``Session.stream()``).

Observation never changes simulation behaviour: the manager emits events
*about* state transitions it performs anyway, so a run with and without an
observer produces bit-identical logs.

Events also define the network wire schema of :mod:`repro.gateway`:
:meth:`RunEvent.to_dict` / :meth:`RunEvent.from_dict` round-trip every kind
through plain JSON.  The one lossy case is :attr:`RunEventKind.END`, whose
in-process payload carries the live
:class:`~repro.runtime.log.ExecutionLog` — on the wire it travels as
``ExecutionLog.summary()`` (aggregates plus the deterministic run
fingerprint), which is what remote equivalence checks compare.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class RunEventKind(enum.Enum):
    """What happened, in runtime-manager vocabulary."""

    #: A request arrived and the scheduler is about to be activated.
    ARRIVAL = "arrival"
    #: The arrival was admitted (``data``: scheduler search time).
    ADMIT = "admit"
    #: The arrival was rejected (``data["reason"]``: ``"infeasible"`` or
    #: ``"budget"``).
    REJECT = "reject"
    #: A new schedule was committed (``data``: segment count, DVFS speed).
    COMMIT = "commit"
    #: One interval of the committed schedule executed (``data``: start, end,
    #: joules) — the energy tick of a streaming consumer.
    INTERVAL = "interval"
    #: A job completed (``request`` names it).
    FINISH = "finish"
    #: Incremental-kernel summary of the run (``data``: activations, packer
    #: placements resumed vs replayed, prune scans skipped, commits).
    #: Emitted once, just before :attr:`END`, only when the kernel is active
    #: (``REPRO_KERNEL=1``); purely observational like every other event.
    KERNEL = "kernel"
    #: The run is over (``data["log"]`` carries the final
    #: :class:`~repro.runtime.log.ExecutionLog`).
    END = "end"


@dataclass(frozen=True)
class RunEvent:
    """One streamed observation of a running simulation.

    Attributes
    ----------
    kind:
        The event kind (see :class:`RunEventKind`).
    time:
        Simulated time of the event in seconds.
    request:
        Name of the request/job concerned, when the event is about one.
    data:
        Kind-specific payload (see the per-kind notes on
        :class:`RunEventKind`).
    """

    kind: RunEventKind
    time: float
    request: str | None = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # compact, log-friendly rendering
        request = f" {self.request}" if self.request else ""
        extras = ", ".join(
            f"{key}={value}" for key, value in self.data.items() if key != "log"
        )
        extras = f" ({extras})" if extras else ""
        return f"[{self.time:10.4f}] {self.kind.value}{request}{extras}"

    # ------------------------------------------------------------------ #
    # Wire schema (shared with repro.gateway)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """The JSON wire form of the event.

        ``from_dict(to_dict(event)) == event`` for every kind whose payload
        is already plain data — all of them except :attr:`RunEventKind.END`,
        whose live ``ExecutionLog`` is replaced by its ``summary()`` dict
        (so ``to_dict`` is idempotent across the round trip:
        ``from_dict(d).to_dict() == d`` always holds).
        """
        payload: dict = {"kind": self.kind.value, "time": self.time}
        if self.request is not None:
            payload["request"] = self.request
        payload["data"] = {
            key: _wire_value(key, value) for key, value in self.data.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"run event payload must be a mapping, got {payload!r}")
        try:
            kind = RunEventKind(payload["kind"])
        except KeyError:
            raise ValueError("run event payload has no 'kind'") from None
        except ValueError:
            known = ", ".join(sorted(k.value for k in RunEventKind))
            raise ValueError(
                f"unknown run event kind {payload['kind']!r} (known: {known})"
            ) from None
        try:
            time = float(payload["time"])
        except (KeyError, TypeError, ValueError):
            raise ValueError("run event payload needs a numeric 'time'") from None
        data = payload.get("data") or {}
        if not isinstance(data, Mapping):
            raise ValueError(f"run event data must be a mapping, got {data!r}")
        return cls(kind, time, payload.get("request"), dict(data))


def _wire_value(key: str, value: Any):
    """Normalise one payload entry to its JSON shape."""
    if key == "log" and hasattr(value, "summary"):
        return value.summary()
    return _jsonify(value)


def _jsonify(value: Any):
    if isinstance(value, Mapping):
        return {str(key): _jsonify(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(entry) for entry in value]
    return value


__all__ = ["RunEvent", "RunEventKind"]
