"""Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and JSONL.

The Chrome format is the ``traceEvents`` array documented by the Trace Event
Format spec: complete (``"ph": "X"``) events with microsecond ``ts``/``dur``,
grouped by ``pid``/``tid``.  Load the written file directly in
https://ui.perfetto.dev (or ``chrome://tracing``) — span nesting is derived
from the time bounds per thread track, which the tracer guarantees because
children always exit before their parent.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

from repro.obs.tracer import Tracer


def _json_safe(value: Any) -> Any:
    """Coerce an annotation value to something JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


def chrome_trace(
    tracer: Tracer,
    *,
    pid: int | None = None,
    process_name: str | None = None,
) -> dict:
    """Render the tracer's spans as a Chrome trace-event JSON document.

    ``pid``/``process_name`` override the process identity, which lets
    callers merge several tracers (one per scheduler, say) into one document
    with one Perfetto process track each — see ``repro-rm profile --trace``.
    """
    if pid is None:
        pid = os.getpid()
    if process_name is None:
        process_name = f"repro {tracer.name}"
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in sorted(tracer.spans(), key=lambda s: (s.start, s.span_id)):
        args: dict = {
            "trace_id": tracer.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.annotations.items():
            args[key] = _json_safe(value)
        for key, value in span.counts.items():
            args[key] = value
        events.append(
            {
                "name": span.name,
                "cat": span.category or "repro",
                "ph": "X",
                "ts": (span.start - tracer.epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": span.thread,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": tracer.trace_id, "dropped_spans": tracer.dropped},
    }


def write_chrome_trace(path, tracer: Tracer, **kwargs) -> dict:
    """Write :func:`chrome_trace` output to ``path``; returns the document."""
    document = chrome_trace(tracer, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return document


def merge_chrome_traces(documents: list[dict]) -> dict:
    """Concatenate several Chrome trace documents into one.

    Callers are responsible for giving each document a distinct ``pid`` (via
    :func:`chrome_trace`'s override) so the merged file renders as separate
    process tracks.
    """
    merged: dict = {"traceEvents": [], "displayTimeUnit": "ms", "otherData": {}}
    for document in documents:
        merged["traceEvents"].extend(document.get("traceEvents", ()))
        other = document.get("otherData", {})
        if "trace_id" in other:
            merged["otherData"].setdefault("trace_ids", []).append(other["trace_id"])
    return merged


def write_jsonl(path, tracer: Tracer) -> int:
    """Write one JSON span record per line; returns the number of lines."""
    records = tracer.span_dicts()
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            record = dict(record)
            record["annotations"] = _json_safe(record["annotations"])
            handle.write(json.dumps(record) + "\n")
    return len(records)
