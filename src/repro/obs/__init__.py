"""repro.obs — span tracing and phase profiling for the whole stack.

A contextvar-propagated, span-based tracer threaded through the runtime
manager, the incremental admission pipeline, scheduler solves, the cache
stack and the gateway.  No-op by default: instrumentation costs one
``ContextVar.get`` per call site until a :class:`Tracer` is entered.

::

    from repro import obs

    with obs.Tracer(name="run:my-experiment") as tracer:
        log = session.run()
    obs.write_chrome_trace("trace.json", tracer)   # load in ui.perfetto.dev
    obs.phase_summary(tracer.span_dicts())         # per-phase wall time

See also ``repro-rm run --trace out.json`` and ``repro-rm profile``.
"""

from repro.obs.export import (
    chrome_trace,
    merge_chrome_traces,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import (
    PHASE_SPANS,
    merged_counts,
    phase_summary,
    phase_totals,
    render_phase_table,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    Tracer,
    active,
    annotate,
    count,
    current_span,
    current_tracer,
    span,
)

__all__ = [
    "NOOP_SPAN",
    "NoopSpan",
    "PHASE_SPANS",
    "Span",
    "Tracer",
    "active",
    "annotate",
    "chrome_trace",
    "count",
    "current_span",
    "current_tracer",
    "merge_chrome_traces",
    "merged_counts",
    "phase_summary",
    "phase_totals",
    "render_phase_table",
    "span",
    "write_chrome_trace",
    "write_jsonl",
]
