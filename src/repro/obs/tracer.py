"""Span-based tracing with contextvar propagation.

One :class:`Tracer` collects the spans of one traced run.  Entering the
tracer (``with Tracer() as tracer:``) opens a root span and installs it in a
:mod:`contextvars` context variable; every :func:`span` opened underneath
nests below the innermost active span, across function boundaries and —
because :mod:`contextvars` contexts can be copied into worker threads (see
:class:`repro.api.session.RunEventStream`) — across threads.

Design constraints, in priority order:

1. **No-op by default.**  When no tracer is active, :func:`span` returns a
   shared :data:`NOOP_SPAN` singleton and :func:`count` / :func:`annotate`
   return after a single ``ContextVar.get`` — no allocation, no locking.
   Instrumentation can therefore live permanently in hot paths
   (``RuntimeManager`` arrivals, the admission pipeline, cache lookups).
2. **Never perturb the simulation.**  Spans only *observe*: durations come
   from :func:`time.perf_counter`, identifiers from a process-local counter,
   and a traced run produces a bit-identical
   :class:`~repro.runtime.log.ExecutionLog` to an untraced one (asserted by
   the overhead benchmark's fingerprint check).
3. **Thread-safe collection.**  Spans finish on whatever thread opened them;
   the tracer's collector list is lock-guarded and bounded
   (``max_spans``, overflow counted in :attr:`Tracer.dropped`).

::

    from repro import obs

    with obs.Tracer(name="run:experiment") as tracer:
        with obs.span("solve", category="scheduler", scheduler="mmkp-mdf"):
            obs.count("cache.solve.hit")
    tracer.span_dicts()        # JSON-ready records, in start order
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
import uuid
from typing import Any

#: The innermost active span of the current context (``None`` = tracing off).
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Pre-bound lookups for the hot module-level API: :func:`span` /
#: :func:`count` / :func:`annotate` sit on instrumented inner loops, so the
#: enabled path avoids re-resolving the attribute chain on every call.
_get_current = _CURRENT.get
_perf_counter = time.perf_counter
_get_ident = threading.get_ident


class NoopSpan:
    """Absorbs the span API when no tracer is active (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **values: Any) -> None:
        pass

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return "NoopSpan()"


#: The shared no-op span returned by :func:`span` when tracing is disabled.
NOOP_SPAN = NoopSpan()


class Span:
    """One timed operation: a node of the trace tree.

    Use as a context manager; entering records the monotonic start time and
    makes the span the context's current one, exiting records the duration
    and hands the finished span to its tracer's collector.  ``annotations``
    carry arbitrary key → value facts, ``counts`` carry cheap accumulators
    (cache hits, pack resumes) attached by :func:`count` while the span is
    current.
    """

    __slots__ = (
        "tracer",
        "name",
        "category",
        "span_id",
        "parent_id",
        "thread",
        "start",
        "duration",
        "annotations",
        "counts",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        parent_id: int | None,
        annotations: dict[str, Any] | None = None,
    ):
        self.tracer = tracer
        self.name = name
        self.category = category
        # ``next`` on an itertools.count is atomic under the GIL; inlined
        # here (rather than a method call) because every span pays it.
        self.span_id = next(tracer._ids)
        self.parent_id = parent_id
        self.thread = _get_ident()
        self.start = 0.0
        self.duration = 0.0
        # The constructor takes ownership of ``annotations`` (all internal
        # call sites build it fresh from ``**kwargs``) — no defensive copy
        # on the hot open path.
        self.annotations: dict[str, Any] = annotations if annotations is not None else {}
        self.counts: dict[str, float] = {}
        self._token: contextvars.Token | None = None

    @property
    def trace_id(self) -> str:
        """The owning tracer's trace identifier."""
        return self.tracer.trace_id

    def annotate(self, **values: Any) -> None:
        """Attach key → value facts to the span."""
        self.annotations.update(values)

    def count(self, name: str, amount: float = 1) -> None:
        """Accumulate a named counter on the span."""
        self.counts[name] = self.counts.get(name, 0) + amount

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        self.start = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = _perf_counter() - self.start
        token = self._token
        if token is not None:
            _CURRENT.reset(token)
            self._token = None
        if exc_type is not None:
            self.annotations.setdefault("error", exc_type.__name__)
        self.tracer._collect(self)
        return False

    def to_dict(self) -> dict:
        """A JSON-ready record (times relative to the tracer's epoch)."""
        return {
            "name": self.name,
            "category": self.category,
            "trace_id": self.tracer.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "start_s": self.start - self.tracer.epoch,
            "duration_s": self.duration,
            "annotations": dict(self.annotations),
            "counts": dict(self.counts),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"duration={self.duration * 1e3:.3f}ms)"
        )


class Tracer:
    """Collects the spans of one trace; also the in-memory test collector.

    Entering the tracer opens a root span named after the tracer, so every
    :func:`span` call anywhere below it (same thread, or a thread running a
    copied context) nests under the root.  ``max_spans`` bounds memory on
    pathological runs; overflow is counted, never raised.
    """

    def __init__(
        self,
        trace_id: str | None = None,
        name: str = "trace",
        max_spans: int = 200_000,
    ):
        self.trace_id = trace_id if trace_id else uuid.uuid4().hex[:16]
        self.name = name
        self.max_spans = max_spans
        #: Monotonic zero point of the trace (span ``start_s`` are relative).
        self.epoch = time.perf_counter()
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._root: Span | None = None

    def _collect(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
            else:
                self.dropped += 1

    # ------------------------------------------------------------------ #
    # Opening spans
    # ------------------------------------------------------------------ #
    def span(self, name: str, category: str = "", **annotations: Any) -> Span:
        """Open a span of this tracer, parented to the context's current span."""
        parent = _CURRENT.get()
        parent_id = (
            parent.span_id if parent is not None and parent.tracer is self else None
        )
        return Span(self, name, category, parent_id, annotations)

    def __enter__(self) -> "Tracer":
        if self._root is not None:
            raise RuntimeError(f"tracer {self.trace_id} is already active")
        self._root = self.span(self.name, category="trace")
        self._root.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        root, self._root = self._root, None
        if root is not None:
            root.__exit__(exc_type, exc, tb)
        return False

    # ------------------------------------------------------------------ #
    # Reading results
    # ------------------------------------------------------------------ #
    def spans(self) -> list[Span]:
        """A snapshot of the finished spans (thread-safe copy)."""
        with self._lock:
            return list(self._spans)

    def span_dicts(self) -> list[dict]:
        """JSON-ready span records, sorted by start time."""
        ordered = sorted(self.spans(), key=lambda s: (s.start, s.span_id))
        return [span.to_dict() for span in ordered]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        return f"Tracer({self.trace_id!r}, spans={len(self)}, dropped={self.dropped})"


# ---------------------------------------------------------------------- #
# Module-level API (the instrumentation call sites)
# ---------------------------------------------------------------------- #
def current_span() -> Span | None:
    """The innermost active span of this context, or ``None``.

    Hot call sites that emit several counts/annotations in a burst should
    fetch the span once and use :meth:`Span.count` / :meth:`Span.annotate`
    directly — one ``ContextVar`` read instead of one per emission.
    """
    return _get_current()


def current_tracer() -> Tracer | None:
    """The active tracer of this context, or ``None``."""
    span = _get_current()
    return span.tracer if span is not None else None


def active() -> bool:
    """``True`` iff a tracer is active in this context."""
    return _get_current() is not None


def span(name: str, category: str = "", **annotations: Any):
    """Open a child span of the current one, or :data:`NOOP_SPAN` when off.

    The disabled path is one ``ContextVar.get`` plus returning a shared
    singleton, so call sites can live in hot loops unconditionally.
    """
    parent = _get_current()
    if parent is None:
        return NOOP_SPAN
    return Span(parent.tracer, name, category, parent.span_id, annotations)


def count(name: str, amount: float = 1) -> None:
    """Accumulate a named counter on the current span (no-op when off)."""
    current = _get_current()
    if current is not None:
        counts = current.counts
        counts[name] = counts.get(name, 0) + amount


def annotate(**values: Any) -> None:
    """Attach facts to the current span (no-op when off)."""
    current = _get_current()
    if current is not None:
        current.annotations.update(values)
