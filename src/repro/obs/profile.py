"""Phase-time aggregation over span records and the profile table renderer.

These helpers consume the JSON-ready span dictionaries produced by
:meth:`repro.obs.Tracer.span_dicts` (or stored on a gateway run record), so
the same aggregation feeds ``repro-rm profile``, the gateway's ``/metrics``
phase summaries and tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping

#: Span names that count as pipeline phases (the rows ``repro-rm profile``
#: and the gateway's phase-duration summaries report).  Everything else —
#: per-arrival wrappers, the run root — still appears in the exported trace,
#: just not in the phase breakdown.
PHASE_SPANS = (
    "rm.run",
    "rm.arrival",
    "rm.reschedule",
    "phase.snapshot",
    "phase.candidates",
    "phase.solve",
    "phase.commit",
    "solve",
    "governor",
    "energy.accounting",
    "sweep.plan",
    "sweep.execute",
    "sweep.solve",
    "sweep.merge",
)


def phase_totals(spans: Iterable[Mapping]) -> dict[str, dict[str, float]]:
    """Per-span-name totals: count, total/mean/max wall seconds."""
    totals: dict[str, dict[str, float]] = {}
    for span in spans:
        name = span["name"]
        entry = totals.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span["duration_s"]
        entry["max_s"] = max(entry["max_s"], span["duration_s"])
    for entry in totals.values():
        entry["mean_s"] = entry["total_s"] / entry["count"] if entry["count"] else 0.0
    return totals


def merged_counts(spans: Iterable[Mapping]) -> dict[str, float]:
    """Sum of every span-attached counter (cache hits, pack resumes, ...)."""
    merged: dict[str, float] = {}
    for span in spans:
        for name, amount in span.get("counts", {}).items():
            merged[name] = merged.get(name, 0) + amount
    return merged


def phase_summary(spans: Iterable[Mapping]) -> dict:
    """Phase totals restricted to :data:`PHASE_SPANS` plus merged counters."""
    spans = list(spans)
    totals = phase_totals(spans)
    return {
        "phases": {name: totals[name] for name in PHASE_SPANS if name in totals},
        "counts": merged_counts(spans),
    }


def _format_cell(entry: Mapping[str, float] | None) -> str:
    if entry is None:
        return "-"
    return f"{entry['total_s'] * 1e3:10.2f} {entry['count']:>6d}"


def render_phase_table(profiles: Mapping[str, Mapping]) -> str:
    """Render per-scheduler phase breakdowns as an aligned text table.

    ``profiles`` maps a column label (scheduler name) to a
    :func:`phase_summary` result.  Each cell shows total milliseconds and
    the span count; a trailing section lists the merged counters.
    """
    labels = list(profiles)
    row_names = [
        name
        for name in PHASE_SPANS
        if any(name in profiles[label]["phases"] for label in labels)
    ]
    name_width = max([len("phase")] + [len(name) for name in row_names])
    header = f"{'phase':<{name_width}}"
    for label in labels:
        header += f"  {label + ' (ms, count)':>18}"
    lines = [header, "-" * len(header)]
    for name in row_names:
        line = f"{name:<{name_width}}"
        for label in labels:
            line += f"  {_format_cell(profiles[label]['phases'].get(name)):>18}"
        lines.append(line)

    counter_names = sorted(
        {name for label in labels for name in profiles[label]["counts"]}
    )
    if counter_names:
        lines.append("")
        counter_width = max([len("counter")] + [len(name) for name in counter_names])
        header = f"{'counter':<{counter_width}}"
        for label in labels:
            header += f"  {label:>18}"
        lines.append(header)
        lines.append("-" * len(header))
        for name in counter_names:
            line = f"{name:<{counter_width}}"
            for label in labels:
                amount = profiles[label]["counts"].get(name)
                cell = "-" if amount is None else f"{amount:g}"
                line += f"  {cell:>18}"
            lines.append(line)
    return "\n".join(lines)
