"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class PlatformError(ReproError):
    """Raised for inconsistent platform descriptions.

    Examples include negative core counts, duplicated processor-type names or
    resource vectors whose dimensionality does not match the platform.
    """


class ConfigurationError(ReproError):
    """Raised for invalid operating points or configuration tables."""


class DataflowError(ReproError):
    """Raised for malformed dataflow (KPN) graphs or traces."""


class MappingError(ReproError):
    """Raised for invalid process-to-core mappings."""


class SchedulingError(ReproError):
    """Raised when a scheduler is invoked with an inconsistent problem."""


class InfeasibleScheduleError(SchedulingError):
    """Raised when a caller requires a schedule but none exists.

    The schedulers themselves report infeasibility through their result
    objects; this exception is used by convenience wrappers (e.g. the runtime
    manager in *strict* mode) that treat rejection as an error.
    """


class AdmissionError(ReproError):
    """Raised by the runtime manager for invalid request admissions."""


class EnergyError(ReproError):
    """Raised for invalid DVFS ladders, governors or energy budgets."""


class WorkloadError(ReproError):
    """Raised for invalid workload or test-case generator parameters."""


class RegistryError(ReproError):
    """Raised for invalid plugin registrations (see :mod:`repro.api.registry`).

    Lookup of an *unknown* name raises the registry's domain error
    (:class:`WorkloadError` for schedulers/platforms/trace sources,
    :class:`EnergyError` for governors) so existing callers keep catching
    what they always caught; this error covers registration mistakes such as
    duplicate names or non-callable factories.
    """


class SerializationError(ReproError):
    """Raised when (de)serialising library objects fails."""
