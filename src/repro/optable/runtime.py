"""Runtime switch between the columnar kernel and the seed list paths.

Every decision-making layer (schedulers, EDF packer, MMKP group building)
keeps its original ``list[OperatingPoint]`` implementation alive behind this
switch.  The columnar path is the default; the seed path exists for

* the equivalence suite, which runs every workload through both paths and
  asserts bit-identical schedules, fingerprints and energy accounting, and
* the benchmark harness, which reports the throughput of the columnar path
  *relative to* the list path on the same host.

The initial state comes from the ``REPRO_OPTABLE`` environment variable
(``0``/``false``/``no`` disables the columnar path); tests flip it locally
with :func:`columnar_disabled` / :func:`columnar_override`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_ENABLED = os.environ.get("REPRO_OPTABLE", "1") not in ("0", "false", "no")


def columnar_enabled() -> bool:
    """``True`` when the columnar OpTable fast paths are in force."""
    return _ENABLED


def set_columnar_enabled(enabled: bool) -> bool:
    """Set the switch globally; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def columnar_override(enabled: bool):
    """Context manager pinning the switch to ``enabled`` within the block."""
    previous = set_columnar_enabled(enabled)
    try:
        yield
    finally:
        set_columnar_enabled(previous)


def columnar_disabled():
    """Shorthand for ``columnar_override(False)`` (the seed list paths)."""
    return columnar_override(False)
