"""``repro.optable`` — the columnar operating-point kernel.

The paper's runtime manager is repeated selection over per-application
operating-point tables; this package is the shared, precomputed
representation of those tables that every decision layer (schedulers,
knapsack solvers, DSE, energy accounting, runtime manager) consumes instead
of re-materialising ad-hoc point lists per activation:

* :class:`OpTable` — parallel columns (makespan, energy, power, frequency
  scale, per-cluster demand) with canonical construction, content
  fingerprints and process-wide interning, plus precomputed aggregates
  (stable sort orders, first-minimum indices, per-cluster max demand, the
  dominance-filtered index set).
* :class:`ParetoFrontier` / :func:`pareto_select` — the incremental Pareto
  engine replacing the seed's O(n²) pairwise scan (numpy-vectorised for
  large inputs, auto-detected at import).
* :class:`ProblemView` — per-activation slices (capacity-feasible indices,
  MMKP weight rows) shared across segments — and :class:`SolveCache`, the
  thread-safe LRU memo (keyed by table fingerprints) each MMKP-LR scheduler
  instance owns for its Lagrangian segment relaxations.
* :func:`columnar_enabled` & friends — the switch that keeps the seed
  ``list[OperatingPoint]`` paths alive for equivalence testing and
  like-for-like benchmarking (``REPRO_OPTABLE=0``).

Boundary rule: every public API keeps accepting ``list[OperatingPoint]`` /
``ConfigTable``; :func:`as_optable` (and the lazy ``ConfigTable.optable``
property) is the only conversion point.
"""

from repro.optable._backend import HAVE_NUMPY
from repro.optable.adapters import (
    iter_point_rows,
    optables_for,
    segment_busy_counts,
    to_config_table,
)
from repro.optable.frontier import ParetoFrontier, pareto_select
from repro.optable.runtime import (
    columnar_disabled,
    columnar_enabled,
    columnar_override,
    set_columnar_enabled,
)
from repro.optable.table import (
    OpTable,
    as_optable,
    bind_intern_store,
    clear_intern_pool,
    fingerprint_points,
    intern_info,
)
from repro.optable.view import ProblemView, SolveCache

__all__ = [
    "HAVE_NUMPY",
    "OpTable",
    "ParetoFrontier",
    "ProblemView",
    "SolveCache",
    "as_optable",
    "bind_intern_store",
    "clear_intern_pool",
    "columnar_disabled",
    "columnar_enabled",
    "columnar_override",
    "fingerprint_points",
    "intern_info",
    "iter_point_rows",
    "optables_for",
    "pareto_select",
    "segment_busy_counts",
    "set_columnar_enabled",
    "to_config_table",
]
