"""Numeric backend of the columnar operating-point kernel.

The kernel is pure Python; when numpy is importable an accelerated code path
is selected automatically at import time.  Both paths implement *exactly* the
same semantics — every acceleration is a vectorisation of element-wise
comparisons or stable index sorts, never a reformulation that could change
results — so a machine without numpy produces bit-identical tables, fronts
and schedules (the equivalence tests assert this contract on the pure-Python
path, which is always available).

Set ``REPRO_OPTABLE_NUMPY=0`` to force the pure-Python path even when numpy
is installed (used by the benchmarks to measure the two paths against each
other).
"""

from __future__ import annotations

import os

try:  # pragma: no cover — exercised implicitly on numpy-equipped hosts
    import numpy as _np
except ImportError:  # pragma: no cover — the pure-Python fallback
    _np = None

if os.environ.get("REPRO_OPTABLE_NUMPY", "1") in ("0", "false", "no"):
    _np = None

#: True when the numpy fast path is active.
HAVE_NUMPY = _np is not None

#: Point-count threshold below which the pure-Python paths win (array set-up
#: costs more than the loop it saves for the paper's small per-app tables).
NUMPY_MIN_POINTS = 32


def numpy_module():
    """The numpy module when the fast path is active, else ``None``."""
    return _np


def stable_argsort(values) -> tuple[int, ...]:
    """Indices that sort ``values`` ascending, ties kept in input order.

    Identical to ``sorted(range(len(values)), key=values.__getitem__)`` — the
    numpy path uses a stable mergesort so equal keys preserve index order
    exactly like Python's stable sort.
    """
    if _np is not None and len(values) >= NUMPY_MIN_POINTS:
        return tuple(int(i) for i in _np.argsort(_np.asarray(values), kind="stable"))
    return tuple(sorted(range(len(values)), key=values.__getitem__))


def first_argmin(values) -> int:
    """Index of the first occurrence of the minimum of ``values``."""
    if _np is not None and len(values) >= NUMPY_MIN_POINTS:
        return int(_np.argmin(_np.asarray(values)))
    best = 0
    best_value = values[0]
    for index in range(1, len(values)):
        if values[index] < best_value:
            best, best_value = index, values[index]
    return best


def dominance_survivors(
    vectors: list[tuple[float, ...]], tolerances: tuple[float, ...]
) -> list[bool]:
    """Reference Pareto dominance over the *whole* input, vectorised.

    ``survivors[i]`` is ``True`` iff no other vector dominates ``vectors[i]``
    (minimisation, per-dimension numerical slack ``tolerances``).  This is the
    exact pairwise semantics of the seed's ``pareto_front``; the numpy path
    evaluates the same comparisons as a boolean matrix.  Returns ``None`` when
    the input is too small for the fast path to pay off (callers then use the
    incremental frontier).
    """
    if _np is None or len(vectors) < NUMPY_MIN_POINTS:
        return None
    a = _np.asarray(vectors, dtype=float)
    tol = _np.asarray(tolerances, dtype=float)
    # no_worse[i, j]: vector i is <= vector j + tol in every dimension.
    no_worse = (a[:, None, :] <= a[None, :, :] + tol).all(axis=2)
    strictly = (a[:, None, :] < a[None, :, :] - tol).any(axis=2)
    dominates = no_worse & strictly
    _np.fill_diagonal(dominates, False)
    dominated = dominates.any(axis=0)
    return [not bool(d) for d in dominated]
