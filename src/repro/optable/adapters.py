"""Adapters between the columnar kernel and the row-oriented boundary types.

Public APIs keep accepting ``list[OperatingPoint]`` / ``ConfigTable`` /
``Mapping[str, ConfigTable]`` everywhere; these helpers are the single place
where those boundary shapes meet the columnar kernel, so the conversion
logic (and the interning) is never duplicated in a consumer layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.optable.table import OpTable, as_optable

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.config import ConfigTable
    from repro.core.segment import MappingSegment


def optables_for(tables: Mapping[str, "ConfigTable"]) -> dict[str, OpTable]:
    """Interned columnar twins of a whole application-table mapping.

    Prefers each table's cached ``optable`` twin (no re-fingerprinting);
    plain point lists fall back to :func:`as_optable`.
    """
    result = {}
    for name, table in tables.items():
        columnar = getattr(table, "optable", None)
        result[name] = columnar if columnar is not None else as_optable(table)
    return result


def to_config_table(table: OpTable, application: str) -> "ConfigTable":
    """Materialise an :class:`OpTable` back into a named ``ConfigTable``."""
    from repro.core.config import ConfigTable

    return ConfigTable(application, table.points)


def segment_busy_counts(
    segment: "MappingSegment",
    tables: Mapping[str, "ConfigTable"],
    dimension: int,
) -> list[int]:
    """Per-cluster busy-core counts of one mapping segment.

    The columnar replacement for the governor/accounting pattern of resolving
    ``mapping.operating_point(tables).resources`` per mapping: demands come
    straight from the interned resource columns (via the table's cached
    ``optable`` property — never re-fingerprinting per call).  Accumulation
    order matches the seed loops (mappings in segment order, clusters in
    index order), so the counts — and everything integrated from them — are
    identical.
    """
    busy = [0] * dimension
    for mapping in segment:
        try:
            table = tables[mapping.application]
        except KeyError:
            from repro.exceptions import SchedulingError

            raise SchedulingError(
                f"no configuration table for application {mapping.application!r}"
            ) from None
        columnar = getattr(table, "optable", None)
        if columnar is None:
            columnar = as_optable(table)
        row = columnar.resources[mapping.config_index]
        for index, count in enumerate(row):
            busy[index] += count
    return busy


def iter_point_rows(source: Iterable) -> Iterable[tuple]:
    """Yield ``(index, resources, execution_time, energy)`` rows of a table.

    Accepts an :class:`OpTable`, a ``ConfigTable`` or a plain point list —
    the adapter consumers use for mixed-boundary iteration.
    """
    table = as_optable(source)
    for index in range(len(table)):
        yield index, table.resources[index], table.times[index], table.energies[index]
