"""Problem-scoped slicing of operating-point tables (:class:`ProblemView`).

The seed schedulers re-derived per-activation structures from the raw point
lists on every call: MMKP-LR re-wrapped points into ``MMKPItem`` groups per
segment, MMKP-MDF re-filtered feasibility per round, EX-MEM re-scanned for
minima per state.  A :class:`ProblemView` computes each capacity-dependent
slice once per (table, capacity) pair and shares everything that is
ratio-independent; the Lagrangian solve itself is memoised process-wide,
keyed by table fingerprints — two activations anywhere in a batch that pose
the same relaxation reuse one solve.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Mapping

from repro.obs import tracer as obs
from repro.optable.table import OpTable, as_optable

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.problem import SchedulingProblem


class SolveCache:
    """A small, thread-safe LRU memo for deterministic solver calls.

    Keys embed table fingerprints, capacities and exact remaining ratios, so
    a hit is guaranteed to describe the *same* mathematical problem and the
    cached result is bit-identical to a fresh solve (all solvers in this
    library are deterministic).

    Caches are owned by their consumer (e.g. one per
    :class:`~repro.schedulers.lr.MMKPLRScheduler` instance) rather than being
    process-wide: a runtime-manager run reuses its scheduler across arrivals
    and still benefits, while independent schedulers — and independent tests
    measuring solver wall time — never contaminate each other.  All
    operations take an internal lock, so one cache may also be shared across
    service worker threads deliberately.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise ValueError("cache capacity must be positive")
        self._max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """Return the cached value for ``key`` or ``None``."""
        # obs.count stays outside the lock: it reads a ContextVar and may
        # touch tracer state, and nothing under the lock depends on it —
        # keeping the critical section to pure dict work means a slow or
        # re-entrant tracer can never serialise cache readers.
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                value = None
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        obs.count("cache.solve.miss" if value is None else "cache.solve.hit")
        return value

    def put(self, key, value) -> None:
        """Insert ``key → value``, evicting the least-recently-used entry."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def info(self) -> dict[str, int]:
        """Cache statistics (entries, hits, misses)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class SharedSlices:
    """Capacity-dependent table slices shared across scheduler activations.

    A :class:`ProblemView` normally derives its slices per activation; the
    incremental kernel keeps one ``SharedSlices`` per runtime-manager run
    (and, via :class:`~repro.kernel.caches.KernelCaches`, per batch) so the
    (table, capacity)-pure dictionaries — interned tables, capacity-fitting
    index sets, MMKP weight rows — survive from one activation to the next.
    The slices are filled lazily by whichever view touches them first; the
    values are immutable, so sharing never changes what any activation sees.
    """

    __slots__ = ("optables", "fitting", "weight_rows")

    def __init__(self) -> None:
        self.optables: dict[str, OpTable] = {}
        self.fitting: dict[str, tuple[int, ...]] = {}
        self.weight_rows: dict[str, tuple[tuple[float, ...], ...]] = {}


class ProblemView:
    """Columnar view of one scheduler activation.

    Built lazily by :meth:`repro.core.problem.SchedulingProblem.view`; holds
    the capacity as a plain tuple, resolves each application's interned
    :class:`OpTable` on first use and caches the capacity-dependent slices
    (which points fit the whole platform, their MMKP weight rows) that the
    seed path rebuilt per segment.
    """

    def __init__(self, problem: "SchedulingProblem", shared: "SharedSlices | None" = None):
        self._problem = problem
        self.capacity = tuple(problem.capacity)
        self.now = problem.now
        self._tables = problem.tables
        if shared is not None:
            # Cross-activation reuse (the incremental kernel): the slices
            # depend only on (table content, capacity), both fixed for the
            # lifetime of one runtime manager, so consecutive activations
            # share one backing store instead of re-deriving them.
            self._optables = shared.optables
            self._fitting = shared.fitting
            self._weight_rows = shared.weight_rows
        else:
            self._optables: dict[str, OpTable] = {}
            #: app → indices of points whose demand fits the *full* capacity.
            self._fitting: dict[str, tuple[int, ...]] = {}
            #: app → per-fitting-point float weight rows for MMKP groups.
            self._weight_rows: dict[str, tuple[tuple[float, ...], ...]] = {}
        #: Per-activation prefix-resumable EDF pack trajectory (lazy).
        self._pack_memo = None

    def pack_memo(self):
        """The activation's :class:`~repro.kernel.packmemo.PackMemo` (lazy).

        One memo per view — i.e. per scheduler activation — because a pack
        trajectory is only a valid resume point while ``now``, the job set,
        the remaining ratios and the capacity are all unchanged.
        """
        if self._pack_memo is None:
            from repro.kernel.packmemo import PackMemo

            self._pack_memo = PackMemo()
        return self._pack_memo

    # ------------------------------------------------------------------ #
    # Table access
    # ------------------------------------------------------------------ #
    def optable(self, application: str) -> OpTable:
        """The interned columnar table of ``application``."""
        table = self._optables.get(application)
        if table is None:
            try:
                source = self._tables[application]
            except KeyError:
                from repro.exceptions import SchedulingError

                raise SchedulingError(
                    f"no configuration table for application {application!r}"
                ) from None
            # Prefer the table's cached twin over re-fingerprinting.
            table = getattr(source, "optable", None)
            if table is None:
                table = as_optable(source)
            self._optables[application] = table
        return table

    def fitting_indices(self, application: str) -> tuple[int, ...]:
        """Indices of the application's points that fit the platform capacity."""
        cached = self._fitting.get(application)
        if cached is None:
            cached = self.optable(application).fitting_indices(self.capacity)
            self._fitting[application] = cached
        return cached

    def mmkp_weight_rows(self, application: str) -> tuple[tuple[float, ...], ...]:
        """Float weight rows (one per *fitting* point) for MMKP groups.

        Matches the seed's ``tuple(float(c) for c in point.resources)`` per
        feasible point, computed once per (table, capacity) instead of per
        segment.
        """
        cached = self._weight_rows.get(application)
        if cached is None:
            table = self.optable(application)
            cached = tuple(
                tuple(float(c) for c in table.resources[index])
                for index in self.fitting_indices(application)
            )
            self._weight_rows[application] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Cache keys
    # ------------------------------------------------------------------ #
    def lagrangian_key(self, entries, max_iterations: int):
        """Memo key for one MMKP-LR segment relaxation.

        ``entries`` is the ordered ``(application, remaining_ratio)`` list of
        the segment's active jobs.  Fingerprints pin the table *content*;
        ratios are kept as exact floats, so equal keys imply an identical
        MMKP instance.
        """
        return (
            self.capacity,
            max_iterations,
            tuple(
                (self.optable(application).fingerprint, remaining_ratio)
                for application, remaining_ratio in entries
            ),
        )

    def signature(self) -> tuple:
        """Content signature of the whole activation (tables, jobs, time).

        Useful as a memo key for whole-activation caches layered above the
        schedulers: equal signatures imply an identical
        :class:`SchedulingProblem` up to job naming.
        """
        jobs = tuple(
            (
                self.optable(job.application).fingerprint,
                job.remaining_ratio,
                job.deadline,
            )
            for job in self._problem.jobs
        )
        return (self.capacity, self.now, jobs)
