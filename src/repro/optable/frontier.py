"""Incremental Pareto frontier.

The seed's :func:`repro.dse.pareto.pareto_front` compared every candidate
against every other candidate — an O(n²) scan repeated from scratch on every
DSE sweep.  :class:`ParetoFrontier` maintains the non-dominated set
*incrementally*: a new point is checked against the current frontier only
(typically far smaller than the full input), dominated members are evicted on
insertion, and exact duplicates collapse to their first occurrence.

Semantics contract
------------------
The library-wide dominance semantics is the *reference* one: a point survives
iff **no other input point** dominates it.  With ``tolerance == 0`` dominance
is a strict partial order (transitive), so the incremental frontier equals
the reference answer for any insertion order.  With a non-zero tolerance the
relation loses transitivity in pathological near-tie chains, so
:meth:`ParetoFrontier.survivors` finishes with a verification pass that
re-checks each frontier member against every seen vector — O(n·f) with
``f = |frontier|`` instead of the seed's O(n²) — and the numpy backend
vectorises the whole reference comparison for large inputs.  Either way the
result is exactly the reference set, in first-occurrence input order.
"""

from __future__ import annotations

from typing import Generic, Sequence, TypeVar

from repro.optable._backend import dominance_survivors

T = TypeVar("T")


def dominates(
    a: Sequence[float], b: Sequence[float], tolerances: Sequence[float]
) -> bool:
    """True iff ``a`` Pareto-dominates ``b`` (minimisation, per-dim slack)."""
    no_worse = True
    strictly = False
    for x, y, tol in zip(a, b, tolerances):
        if x > y + tol:
            no_worse = False
            break
        if x < y - tol:
            strictly = True
    return no_worse and strictly


class ParetoFrontier(Generic[T]):
    """Order-preserving incremental Pareto frontier (all objectives minimised).

    Parameters
    ----------
    dimension:
        Length of the objective vectors.
    tolerance:
        Either one scalar slack applied to every dimension or a per-dimension
        sequence (the operating-point filter uses exact comparison on the
        integer resource dimensions and a small slack on time/energy).

    Examples
    --------
    >>> frontier = ParetoFrontier(2)
    >>> for point in [(1.0, 5.0), (2.0, 2.0), (3.0, 3.0)]:
    ...     _ = frontier.add(point, point)
    >>> frontier.survivors()
    [(1.0, 5.0), (2.0, 2.0)]
    """

    def __init__(self, dimension: int, tolerance: float | Sequence[float] = 0.0):
        if dimension <= 0:
            raise ValueError("objective dimension must be positive")
        if isinstance(tolerance, (int, float)):
            self._tolerances = (float(tolerance),) * dimension
        else:
            self._tolerances = tuple(float(t) for t in tolerance)
            if len(self._tolerances) != dimension:
                raise ValueError(
                    f"{len(self._tolerances)} tolerances for {dimension} dimensions"
                )
        self._dimension = dimension
        #: Frontier entries in first-occurrence input order.
        self._items: list[T] = []
        self._vectors: list[tuple[float, ...]] = []
        #: Every vector ever seen (for the exact verification pass).
        self._seen: list[tuple[float, ...]] = []
        self._exact = all(t == 0.0 for t in self._tolerances)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def dimension(self) -> int:
        """Length of the objective vectors."""
        return self._dimension

    def add(self, item: T, vector: Sequence[float]) -> bool:
        """Offer one candidate; returns ``True`` iff it (currently) survives.

        Dominated candidates are rejected, newly dominated frontier members
        are evicted, and a vector exactly equal to a member collapses into
        the existing first occurrence.
        """
        vector = tuple(float(v) for v in vector)
        if len(vector) != self._dimension:
            raise ValueError(
                f"objective vector of length {len(vector)}, expected {self._dimension}"
            )
        self._seen.append(vector)
        tolerances = self._tolerances
        for existing in self._vectors:
            if existing == vector or dominates(existing, vector, tolerances):
                return False
        keep_items: list[T] = []
        keep_vectors: list[tuple[float, ...]] = []
        for other_item, other_vector in zip(self._items, self._vectors):
            if not dominates(vector, other_vector, tolerances):
                keep_items.append(other_item)
                keep_vectors.append(other_vector)
        keep_items.append(item)
        keep_vectors.append(vector)
        self._items = keep_items
        self._vectors = keep_vectors
        return True

    def extend(self, items: Sequence[T], vectors: Sequence[Sequence[float]]) -> None:
        """Offer many candidates at once (pairs are zipped)."""
        for item, vector in zip(items, vectors):
            self.add(item, vector)

    def survivors(self) -> list[T]:
        """The exact reference Pareto set, in first-occurrence input order.

        With exact tolerances the incremental frontier already *is* the
        reference set.  With slack, each member is re-verified against every
        seen vector so near-tie intransitivity chains cannot leak a dominated
        point through (O(n·f), still far below the seed's O(n²)).
        """
        if self._exact:
            return list(self._items)
        tolerances = self._tolerances
        verified: list[T] = []
        for item, vector in zip(self._items, self._vectors):
            if not any(
                other != vector and dominates(other, vector, tolerances)
                for other in self._seen
            ):
                verified.append(item)
        return verified

    def vectors(self) -> list[tuple[float, ...]]:
        """Objective vectors of the current (unverified) frontier members."""
        return list(self._vectors)


def pareto_select(
    vectors: Sequence[Sequence[float]],
    tolerance: float | Sequence[float] = 0.0,
) -> list[int]:
    """Indices of the reference Pareto set of ``vectors``.

    Exact duplicates collapse to the first occurrence; the surviving indices
    keep their input order.  Large inputs go through the vectorised backend
    (bit-identical comparisons); the rest through the incremental frontier.
    """
    if not vectors:
        return []
    dimension = len(vectors[0])
    if isinstance(tolerance, (int, float)):
        tolerances = (float(tolerance),) * dimension
    else:
        tolerances = tuple(float(t) for t in tolerance)
    rows = [tuple(float(v) for v in vector) for vector in vectors]
    for row in rows:
        if len(row) != dimension:
            raise ValueError(
                f"objective vectors have mixed lengths: "
                f"{sorted({len(r) for r in rows})}"
            )

    survivors = dominance_survivors(rows, tolerances)
    if survivors is not None:
        # Vectorised reference semantics; apply first-occurrence dedup.
        chosen: list[int] = []
        kept: set[tuple[float, ...]] = set()
        for index, keep in enumerate(survivors):
            if keep and rows[index] not in kept:
                kept.add(rows[index])
                chosen.append(index)
        return chosen

    frontier: ParetoFrontier[int] = ParetoFrontier(dimension, tolerances)
    for index, row in enumerate(rows):
        frontier.add(index, row)
    return frontier.survivors()
