"""The columnar operating-point table (:class:`OpTable`).

One :class:`OpTable` is the structure-of-arrays twin of a
:class:`~repro.core.config.ConfigTable`: parallel tuples for execution time
(makespan), energy, average power, DVFS frequency scale and per-cluster core
demand, plus the aggregates every decision layer keeps re-deriving on the
seed's list path — stable sort orders, first-minimum indices, per-cluster
maximum demand and the dominance-filtered (Pareto) index set.

Construction is canonical and *interned*: the packed column bytes are hashed
into a fingerprint and identical tables — the common case when many jobs of a
batch run the same application, or many sweep points share a platform — all
resolve to one shared ``OpTable`` instance.  Aggregates are therefore computed
once per distinct table per process, not once per job per scheduler
activation.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.optable import _backend
from repro.optable._backend import first_argmin, stable_argsort
from repro.optable.frontier import pareto_select

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids an import cycle
    from repro.core.config import ConfigTable, OperatingPoint

#: Dominance slack on the time/energy dimensions, matching
#: ``OperatingPoint.dominates`` (resource dimensions compare exactly).
POINT_TOLERANCE = 1e-12

#: Process-wide intern pool: fingerprint → the canonical OpTable instance.
#: Bounded LRU (like the Lagrangian solve memo) so a long-lived service
#: sweeping ever-new tables cannot grow without bound; eviction only costs a
#: rebuild on the next request — existing references stay valid.
_INTERN: OrderedDict[str, "OpTable"] = OrderedDict()
_INTERN_MAX_TABLES = 4096
_INTERN_HITS = 0
_INTERN_MISSES = 0
#: Guards the pool — service thread workers intern concurrently.
_INTERN_LOCK = threading.Lock()
#: Optional persistent second level (a :class:`repro.store.ContentStore`):
#: consulted on intern misses, written through on builds.  Bound per process
#: via :func:`bind_intern_store`; ``None`` keeps interning purely local.
_INTERN_STORE = None


class OpTable:
    """Columnar, interned view of one operating-point table.

    Do not call the constructor directly — go through :func:`as_optable` (or
    ``ConfigTable.optable``), which canonicalises and interns.  All columns
    are plain tuples: index ``j`` across every column describes configuration
    ``j``, exactly as in the row-oriented table.

    Examples
    --------
    >>> from repro.core.config import OperatingPoint
    >>> from repro.platforms.resources import ResourceVector
    >>> table = as_optable([
    ...     OperatingPoint(ResourceVector([1, 0]), 10.0, 2.0),
    ...     OperatingPoint(ResourceVector([0, 1]), 5.0, 7.5),
    ... ])
    >>> table.times
    (10.0, 5.0)
    >>> table.min_energy
    2.0
    >>> as_optable(list(table.points)) is table
    True
    """

    __slots__ = (
        "points",
        "times",
        "energies",
        "scales",
        "resources",
        "dimension",
        "fingerprint",
        "_powers",
        "_demand_columns",
        "_order_by_energy",
        "_order_by_makespan",
        "_argmin_time",
        "_argmin_energy",
        "_min_time",
        "_min_energy",
        "_max_demand",
        "_pareto_index",
    )

    def __init__(self, points: Sequence["OperatingPoint"], fingerprint: str):
        self.points = tuple(points)
        self.times = tuple(p.execution_time for p in self.points)
        self.energies = tuple(p.energy for p in self.points)
        self.scales = tuple(p.frequency_scale for p in self.points)
        self.resources = tuple(tuple(p.resources) for p in self.points)
        self.dimension = len(self.resources[0]) if self.resources else 0
        self.fingerprint = fingerprint
        # Derived columns and aggregates are filled lazily: many tables only
        # ever serve the hot columns above, and laziness keeps interning O(n).
        self._powers = None
        self._demand_columns = None
        self._order_by_energy = None
        self._order_by_makespan = None
        self._argmin_time = None
        self._argmin_energy = None
        self._min_time = None
        self._min_energy = None
        self._max_demand = None
        self._pareto_index = None

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __getitem__(self, index: int) -> "OperatingPoint":
        return self.points[index]

    def __repr__(self) -> str:
        return (
            f"OpTable({len(self.points)} points, dim={self.dimension}, "
            f"fp={self.fingerprint[:12]})"
        )

    # ------------------------------------------------------------------ #
    # Aggregates (computed once per interned table)
    # ------------------------------------------------------------------ #
    @property
    def powers(self) -> tuple[float, ...]:
        """Average power (energy / execution time) per configuration."""
        if self._powers is None:
            self._powers = tuple(
                e / t for e, t in zip(self.energies, self.times)
            )
        return self._powers

    @property
    def demand_columns(self) -> tuple[tuple[int, ...], ...]:
        """Per-cluster demand columns: ``demand_columns[k][j]`` is the core
        demand of configuration ``j`` on cluster ``k`` (the transpose of
        :attr:`resources`)."""
        if self._demand_columns is None:
            self._demand_columns = tuple(
                tuple(row[k] for row in self.resources)
                for k in range(self.dimension)
            )
        return self._demand_columns

    @property
    def order_by_energy(self) -> tuple[int, ...]:
        """Indices sorted ascending by energy; ties keep index order.

        Identical to ``sorted(range(n), key=energies.__getitem__)`` — and,
        because ``remaining_energy(r) = energy * r`` is monotone for any
        positive remaining ratio, also the remaining-energy order every
        scheduler needs.
        """
        if self._order_by_energy is None:
            self._order_by_energy = stable_argsort(self.energies)
        return self._order_by_energy

    @property
    def order_by_makespan(self) -> tuple[int, ...]:
        """Indices stably sorted by ``(execution_time, energy)``."""
        if self._order_by_makespan is None:
            keys = list(zip(self.times, self.energies))
            self._order_by_makespan = tuple(
                sorted(range(len(keys)), key=keys.__getitem__)
            )
        return self._order_by_makespan

    @property
    def argmin_time(self) -> int:
        """Index of the first point attaining the minimum execution time."""
        if self._argmin_time is None:
            self._argmin_time = first_argmin(self.times)
        return self._argmin_time

    @property
    def argmin_energy(self) -> int:
        """Index of the first point attaining the minimum energy."""
        if self._argmin_energy is None:
            self._argmin_energy = first_argmin(self.energies)
        return self._argmin_energy

    @property
    def min_time(self) -> float:
        """The fastest full-run execution time in the table."""
        if self._min_time is None:
            self._min_time = self.times[self.argmin_time]
        return self._min_time

    @property
    def min_energy(self) -> float:
        """The lowest full-run energy in the table."""
        if self._min_energy is None:
            self._min_energy = self.energies[self.argmin_energy]
        return self._min_energy

    @property
    def max_demand(self) -> tuple[int, ...]:
        """Per-cluster maximum core demand over all points."""
        if self._max_demand is None:
            self._max_demand = tuple(max(col) for col in self.demand_columns)
        return self._max_demand

    @property
    def pareto_index(self) -> tuple[int, ...]:
        """Indices of the non-dominated points (reference dominance).

        Resource dimensions compare exactly, time/energy with the
        :data:`POINT_TOLERANCE` slack — the same relation as
        ``OperatingPoint.dominates``.  A table built from a Pareto-filtered
        ``ConfigTable`` has every index here.
        """
        if self._pareto_index is None:
            vectors = [
                row + (t, e)
                for row, t, e in zip(self.resources, self.times, self.energies)
            ]
            tolerances = (0.0,) * self.dimension + (POINT_TOLERANCE, POINT_TOLERANCE)
            self._pareto_index = tuple(pareto_select(vectors, tolerances))
        return self._pareto_index

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def fitting_indices(self, capacity: Sequence[int]) -> tuple[int, ...]:
        """Indices of points whose demand fits ``capacity`` componentwise."""
        capacity = tuple(capacity)
        return tuple(
            i
            for i, row in enumerate(self.resources)
            if all(r <= c for r, c in zip(row, capacity))
        )

    def numpy_columns(self):
        """``(times, energies, resources)`` as numpy arrays, or ``None``.

        Only materialised on demand; pure-Python hosts get ``None`` and use
        the tuple columns.
        """
        np = _backend.numpy_module()
        if np is None:
            return None
        return (
            np.asarray(self.times),
            np.asarray(self.energies),
            np.asarray(self.resources, dtype=float),
        )


# ---------------------------------------------------------------------- #
# Canonical construction + interning
# ---------------------------------------------------------------------- #
def fingerprint_points(points: Sequence["OperatingPoint"]) -> str:
    """Content hash of a point list: the OpTable interning key.

    The fingerprint covers dimension, point count and every column value
    (resources, execution time, energy, frequency scale) in order — it is a
    pure *content* key, deliberately blind to application names, so tables of
    different applications with identical numbers share one instance.
    """
    hasher = hashlib.blake2b(digest_size=16)
    dimension = len(points[0].resources) if points else 0
    hasher.update(struct.pack("<II", dimension, len(points)))
    for point in points:
        hasher.update(struct.pack(f"<{dimension}d", *(float(c) for c in point.resources)))
        hasher.update(
            struct.pack("<3d", point.execution_time, point.energy, point.frequency_scale)
        )
    return hasher.hexdigest()


def as_optable(source) -> OpTable:
    """Canonicalise ``source`` into the interned :class:`OpTable`.

    ``source`` may be an :class:`OpTable` (returned as-is), a
    :class:`~repro.core.config.ConfigTable` (adapter for the row-oriented
    boundary type) or any iterable of
    :class:`~repro.core.config.OperatingPoint`.
    """
    global _INTERN_HITS, _INTERN_MISSES
    if isinstance(source, OpTable):
        return source
    points = getattr(source, "points", None)
    if points is None:
        points = tuple(source)
    if not points:
        raise ValueError("an OpTable needs at least one operating point")
    key = fingerprint_points(points)
    with _INTERN_LOCK:
        table = _INTERN.get(key)
        if table is not None:
            _INTERN_HITS += 1
            _INTERN.move_to_end(key)
            return table
        _INTERN_MISSES += 1
    # Column/aggregate construction happens outside the lock; a concurrent
    # builder of the same table just loses the insertion race below.  A bound
    # store is consulted first: a persisted table arrives with whatever lazy
    # aggregates its writer had already materialised.
    store = _INTERN_STORE
    table = store.get("optable", key) if store is not None else None
    if not isinstance(table, OpTable) or table.fingerprint != key:
        table = OpTable(points, key)
        if store is not None:
            store.put("optable", key, table)
    with _INTERN_LOCK:
        existing = _INTERN.get(key)
        if existing is not None:
            return existing
        _INTERN[key] = table
        while len(_INTERN) > _INTERN_MAX_TABLES:
            _INTERN.popitem(last=False)
    return table


def bind_intern_store(store):
    """Bind a ``ContentStore`` as the interning second level; returns the
    previous binding (``None`` unbinds).

    A module-level binding (rather than a parameter) because interning is
    itself process-global — every ``as_optable`` call site shares the pool,
    so they must share its persistent backing too.
    """
    global _INTERN_STORE
    previous = _INTERN_STORE
    _INTERN_STORE = store
    return previous


def intern_info() -> dict[str, int]:
    """Intern-pool statistics: distinct tables, hits and misses."""
    with _INTERN_LOCK:
        return {
            "tables": len(_INTERN),
            "hits": _INTERN_HITS,
            "misses": _INTERN_MISSES,
        }


def clear_intern_pool() -> None:
    """Drop every interned table (test isolation / long-lived services)."""
    global _INTERN_HITS, _INTERN_MISSES
    with _INTERN_LOCK:
        _INTERN.clear()
        _INTERN_HITS = 0
        _INTERN_MISSES = 0
