"""Exhaustive allocation-level design-space exploration.

For one application variant (a KPN graph) and one platform the explorer walks
over every core allocation (how many cores of each type the application may
use), builds a balanced process-to-core mapping, simulates it and records the
resulting operating point.  The final table is Pareto-filtered over the
objectives (per-type core usage, execution time, energy), which mirrors the
paper's statement that operating points handed to the runtime manager are
Pareto-filtered.

With ``opp_scales`` the walk additionally sweeps the platform's DVFS
operating points: every allocation is re-simulated on the platform re-pinned
at each uniform frequency scale (:func:`~repro.energy.opp.scaled_platform`),
and the surviving operating points carry the scale in their
``frequency_scale`` column — slower points trade execution time for energy
and enlarge the Pareto front the runtime manager can pick from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import ConfigTable, OperatingPoint
from repro.dataflow.graph import KPNGraph
from repro.dataflow.trace import TraceGenerator
from repro.dse.pareto import pareto_front
from repro.energy.opp import SCALE_EPSILON, scaled_platform
from repro.exceptions import MappingError
from repro.mapping.allocate import allocation_cores, balance_processes
from repro.mapping.mapping import ProcessMapping
from repro.mapping.simulate import MappingSimulator, SimulationResult
from repro.platforms.platform import Platform
from repro.platforms.resources import ResourceVector


@dataclass(frozen=True)
class ExplorationResult:
    """One evaluated design point.

    Attributes
    ----------
    allocation:
        The explored core allocation.
    mapping:
        The concrete process-to-core mapping built for the allocation.
    simulation:
        Execution time / energy estimate of the mapping.
    operating_point:
        The resulting operating point (resources are the *used* cores, which
        may be fewer than the allocation when the application has fewer
        processes than allocated cores).
    """

    allocation: ResourceVector
    mapping: ProcessMapping
    simulation: SimulationResult
    operating_point: OperatingPoint


class DesignSpaceExplorer:
    """Enumerate, simulate and Pareto-filter core allocations.

    Parameters
    ----------
    platform:
        The target platform.
    simulator:
        The mapping simulator to use; a default trace-driven simulator with a
        deterministic trace generator is created when omitted.
    max_cores_per_type:
        Optional cap on the allocation per resource type (defaults to the
        platform capacity).

    Examples
    --------
    >>> from repro.dataflow import pedestrian_recognition
    >>> from repro.platforms import odroid_xu4
    >>> explorer = DesignSpaceExplorer(odroid_xu4())
    >>> table = explorer.explore(pedestrian_recognition().graph)
    >>> len(table) > 0
    True
    """

    def __init__(
        self,
        platform: Platform,
        simulator: MappingSimulator | None = None,
        max_cores_per_type: Sequence[int] | None = None,
    ):
        self._platform = platform
        self._scaled_platforms: dict[float, Platform] = {}
        #: Allocation enumeration per graph process count (kernel-style
        #: incrementality: an OPP sweep walks the same allocations once per
        #: scale, and a table-set exploration walks them once per variant —
        #: one explorer instance derives them once and replays the tuple).
        self._allocation_cache: dict[int, tuple[ResourceVector, ...]] = {}
        self._simulator = simulator or MappingSimulator(
            trace_generator=TraceGenerator(iterations=20, jitter=0.1, seed=2020)
        )
        if max_cores_per_type is None:
            self._limit = platform.capacity
        else:
            limit = ResourceVector(max_cores_per_type)
            if not limit.fits_into(platform.capacity):
                raise MappingError(
                    f"allocation limit {limit.counts} exceeds platform capacity "
                    f"{platform.capacity.counts}"
                )
            self._limit = limit

    @classmethod
    def from_spec(
        cls,
        spec,
        *,
        platform: Platform | None = None,
        simulator: MappingSimulator | None = None,
    ) -> "DesignSpaceExplorer":
        """Build an explorer from a declarative spec.

        ``spec`` is an :class:`~repro.api.spec.ExperimentSpec` (the platform
        comes from its ``platform`` section) or a bare
        :class:`~repro.api.spec.DSESpec` (then ``platform`` is required).
        This is the DSE half of the ``repro.api`` front door; the
        :class:`~repro.api.session.Session` facade calls it for per-graph
        exploration.
        """
        from repro.api.spec import DSESpec, ExperimentSpec

        if isinstance(spec, ExperimentSpec):
            if platform is None:
                platform = spec.platform.build()
        elif not isinstance(spec, DSESpec):
            raise MappingError(
                f"from_spec expects an ExperimentSpec or DSESpec, "
                f"got {type(spec).__name__}"
            )
        if platform is None:
            raise MappingError("a DSESpec alone needs an explicit platform")
        return cls(platform, simulator=simulator)

    # ------------------------------------------------------------------ #
    # Exploration
    # ------------------------------------------------------------------ #
    def evaluate_allocation(
        self,
        graph: KPNGraph,
        allocation: ResourceVector,
        frequency_scale: float = 1.0,
    ) -> ExplorationResult:
        """Build, simulate and summarise one allocation.

        ``frequency_scale`` re-pins the platform at the given uniform DVFS
        scale before simulating (1.0, the default, is the nominal platform).
        """
        platform = self._platform_at(frequency_scale)
        cores = allocation_cores(platform, allocation)
        mapping = balance_processes(graph, platform, cores)
        simulation = self._simulator.simulate(mapping)
        point = OperatingPoint(
            resources=mapping.demand,
            execution_time=simulation.execution_time,
            energy=simulation.energy,
            frequency_scale=frequency_scale,
        )
        return ExplorationResult(allocation, mapping, simulation, point)

    def _platform_at(self, frequency_scale: float) -> Platform:
        """The platform re-pinned at ``frequency_scale`` (cached per scale)."""
        if abs(frequency_scale - 1.0) <= SCALE_EPSILON:
            return self._platform
        key = round(frequency_scale, 12)
        if key not in self._scaled_platforms:
            self._scaled_platforms[key] = scaled_platform(self._platform, frequency_scale)
        return self._scaled_platforms[key]

    def explore_all(
        self, graph: KPNGraph, opp_scales: Sequence[float] | None = None
    ) -> list[ExplorationResult]:
        """Evaluate every allocation whose core count does not exceed the processes.

        Allocating more cores than the application has processes cannot help
        (extra cores would stay idle but still burn static power), so such
        allocations are skipped.  With ``opp_scales`` every allocation is
        evaluated once per scale, slowest first.
        """
        scales = (1.0,) if opp_scales is None else tuple(opp_scales)
        allocations = self._allocations_for(graph.num_processes)
        results = []
        for scale in scales:
            for allocation in allocations:
                results.append(self.evaluate_allocation(graph, allocation, scale))
        return results

    def _allocations_for(self, num_processes: int) -> tuple[ResourceVector, ...]:
        """The admissible allocations for a graph of ``num_processes`` (cached).

        The enumeration (and its process-count filter) is a pure function of
        the platform limit and the process count, so one explorer derives it
        once per count and reuses it across every sweep point and variant —
        the same enumeration order the seed produced per scale.
        """
        cached = self._allocation_cache.get(num_processes)
        if cached is None:
            cached = tuple(
                allocation
                for allocation in self._platform.allocations(self._limit)
                if allocation.total <= num_processes
            )
            self._allocation_cache[num_processes] = cached
        return cached

    def explore(
        self,
        graph: KPNGraph,
        application_name: str | None = None,
        opp_scales: Sequence[float] | None = None,
    ) -> ConfigTable:
        """Return the Pareto-filtered operating-point table of ``graph``.

        Parameters
        ----------
        graph:
            The application variant to explore.
        application_name:
            Name under which the table is registered; defaults to the graph
            name.
        opp_scales:
            Uniform DVFS scales to sweep in addition to the allocations
            (typically :func:`~repro.energy.opp.available_scales` of the
            platform).  ``None`` keeps the seed's nominal-frequency-only
            exploration.
        """
        results = self.explore_all(graph, opp_scales=opp_scales)
        # ``pareto_front`` runs on the incremental frontier engine of
        # :mod:`repro.optable` (the seed's O(n²) pairwise scan is gone).
        # ``tie_key`` is deliberately NOT passed: the enumeration order of
        # ``explore_all`` is deterministic, and keeping the seed's
        # first-occurrence representative for equal-cost points preserves
        # bit-identical tables (an OPP sweep can produce equal (resources,
        # time, energy) vectors that differ in frequency_scale; re-picking
        # the representative would change the stored scale column).
        front = pareto_front(
            results,
            objectives=lambda r: tuple(r.operating_point.resources)
            + (r.operating_point.execution_time, r.operating_point.energy),
        )
        points = [r.operating_point for r in front]
        table = ConfigTable(application_name or graph.name, points, pareto_filter=True)
        # Pre-intern the columnar twin: identical tables produced anywhere in
        # a sweep (same platform, same variant) resolve to one shared OpTable.
        table.optable
        return table
