"""Ready-made operating-point tables for the evaluation applications.

These helpers run the full DSE pipeline (application model → allocations →
mapping → simulation → Pareto filter) for the three paper applications and
all their input-size variants on a given platform.  They are the entry point
used by the evaluation workload and the benchmarks.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.config import ConfigTable
from repro.dataflow.applications import paper_applications
from repro.dse.explorer import DesignSpaceExplorer
from repro.platforms.odroid import odroid_xu4
from repro.platforms.platform import Platform


def paper_operating_points(
    platform: Platform | None = None,
    input_sizes: tuple[str, ...] | None = None,
    sweep_opps: bool = False,
) -> dict[str, ConfigTable]:
    """Operating-point tables for every application/input-size variant.

    Parameters
    ----------
    platform:
        Target platform; the Odroid XU4 model by default.
    input_sizes:
        Restrict the variants to the given size labels (e.g. ``("medium",)``).
        All sizes are used by default, mirroring the paper's benchmarking with
        several input sizes per application.
    sweep_opps:
        Additionally sweep the platform's DVFS operating points, so the
        tables gain a frequency column (``OperatingPoint.frequency_scale``).
        Platforms without OPP ladders get synthetic default ladders.  The
        default ``False`` reproduces the paper's pinned-frequency tables
        bit-identically.

    Returns
    -------
    dict
        ``"<application>/<size>" → ConfigTable``.

    Examples
    --------
    >>> tables = paper_operating_points(input_sizes=("medium",))
    >>> sorted(t.split("/")[0] for t in tables)
    ['audio_filter', 'pedestrian_recognition', 'speaker_recognition']
    """
    platform = platform or odroid_xu4()
    opp_scales = None
    if sweep_opps:
        from repro.energy.opp import available_scales, ensure_opps

        platform = ensure_opps(platform)
        opp_scales = available_scales(platform)
    explorer = DesignSpaceExplorer(platform)
    tables: dict[str, ConfigTable] = {}
    for model in paper_applications().values():
        for variant_name, graph in model.variants().items():
            size = variant_name.split("/", 1)[1]
            if input_sizes is not None and size not in input_sizes:
                continue
            tables[variant_name] = explorer.explore(
                graph, application_name=variant_name, opp_scales=opp_scales
            )
    return tables


def reduced_tables(
    tables: Mapping[str, ConfigTable], max_points: int
) -> dict[str, ConfigTable]:
    """Restrict every table to ``max_points`` points spread across the Pareto front.

    The exhaustive EX-MEM reference scheduler is exponential in the table
    sizes; the benchmark harness uses this helper to keep its runs tractable
    (the restriction is documented in EXPERIMENTS.md).  The selection keeps
    the extreme points (most energy-efficient and fastest) and fills the rest
    evenly along the execution-time axis, so the reduced tables still span the
    whole latency/energy trade-off the schedulers rely on.
    """
    if max_points <= 0:
        raise ValueError("max_points must be positive")
    reduced = {}
    for name, table in tables.items():
        if len(table) <= max_points:
            reduced[name] = table
            continue
        # The makespan order is a precomputed OpTable aggregate (stable
        # ``(execution_time, energy)`` sort, identical to the seed's).
        columnar = table.optable
        by_time = [table.points[i] for i in columnar.order_by_makespan]
        if max_points == 1:
            selected = [min(by_time, key=lambda p: p.energy)]
        else:
            # Even spread over the time-sorted front; index 0 is the fastest
            # point, the last index is the slowest (typically most efficient).
            positions = [
                round(i * (len(by_time) - 1) / (max_points - 1))
                for i in range(max_points)
            ]
            selected = [by_time[i] for i in sorted(set(positions))]
            most_efficient = table.points[columnar.argmin_energy]
            if most_efficient not in selected:
                if len(selected) >= max_points and len(selected) > 1:
                    # Sacrifice an interior point, never the fastest one.
                    selected.pop(len(selected) // 2)
                selected.append(most_efficient)
        reduced[name] = ConfigTable(name, selected)
    return reduced
