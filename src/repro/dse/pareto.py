"""Generic Pareto-front filtering.

The DSE minimises several objectives at once (per-type core usage, execution
time, energy).  :func:`pareto_front` works on arbitrary objective vectors so
it can also be reused for other multi-objective sweeps (e.g. the ablation
benchmarks).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def _dominates(a: Sequence[float], b: Sequence[float], tolerance: float) -> bool:
    """True iff objective vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    no_worse = all(x <= y + tolerance for x, y in zip(a, b))
    strictly_better = any(x < y - tolerance for x, y in zip(a, b))
    return no_worse and strictly_better


def pareto_front(
    items: Iterable[T],
    objectives: Callable[[T], Sequence[float]],
    tolerance: float = 1e-12,
) -> list[T]:
    """Return the non-dominated subset of ``items`` (all objectives minimised).

    Exact duplicates (identical objective vectors) are collapsed to the first
    occurrence, preserving the input order of the survivors.

    Parameters
    ----------
    items:
        The candidate solutions.
    objectives:
        Function mapping an item to its objective vector.
    tolerance:
        Numerical slack used in the dominance comparison.

    Examples
    --------
    >>> pareto_front([(1, 5), (2, 2), (3, 3)], objectives=lambda p: p)
    [(1, 5), (2, 2)]
    """
    candidates = list(items)
    vectors = [tuple(objectives(item)) for item in candidates]
    lengths = {len(v) for v in vectors}
    if len(lengths) > 1:
        raise ValueError(f"objective vectors have mixed lengths: {lengths}")

    survivors: list[T] = []
    survivor_vectors: list[tuple[float, ...]] = []
    for item, vector in zip(candidates, vectors):
        if any(_dominates(other, vector, tolerance) for other in vectors if other is not vector):
            continue
        if vector in survivor_vectors:
            continue
        survivors.append(item)
        survivor_vectors.append(vector)
    return survivors
