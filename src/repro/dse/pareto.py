"""Generic Pareto-front filtering.

The DSE minimises several objectives at once (per-type core usage, execution
time, energy).  :func:`pareto_front` works on arbitrary objective vectors so
it can also be reused for other multi-objective sweeps (e.g. the ablation
benchmarks).

Since the ``repro.optable`` refactor the filtering runs on the incremental
:class:`~repro.optable.frontier.ParetoFrontier` engine (numpy-vectorised for
large inputs) instead of the seed's O(n²) pairwise scan; the *semantics* are
unchanged — an item survives iff no other input item dominates it — and
:func:`pareto_front_reference` keeps the seed implementation around as the
oracle for the equivalence tests and the ablation benchmark.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from repro.optable.frontier import pareto_select

T = TypeVar("T")

#: Default numerical slack of the dominance comparison.  Exposed (instead of
#: the old buried literal) so callers that need a different tolerance — or
#: want to report the one in force — reference one named constant.
DEFAULT_TOLERANCE = 1e-12


def _dominates(a: Sequence[float], b: Sequence[float], tolerance: float) -> bool:
    """True iff objective vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    no_worse = all(x <= y + tolerance for x, y in zip(a, b))
    strictly_better = any(x < y - tolerance for x, y in zip(a, b))
    return no_worse and strictly_better


def pareto_front(
    items: Iterable[T],
    objectives: Callable[[T], Sequence[float]],
    tolerance: float = DEFAULT_TOLERANCE,
    tie_key: Callable[[T], object] | None = None,
) -> list[T]:
    """Return the non-dominated subset of ``items`` (all objectives minimised).

    Exact duplicates (identical objective vectors) are collapsed to a single
    representative, preserving the input order of the survivors.

    Parameters
    ----------
    items:
        The candidate solutions.
    objectives:
        Function mapping an item to its objective vector.
    tolerance:
        Numerical slack used in the dominance comparison
        (:data:`DEFAULT_TOLERANCE` unless overridden).
    tie_key:
        Deterministic tie-breaker for equal-cost points.  Without one, the
        *first* of several items with identical objective vectors survives —
        which depends on the input order.  With a ``tie_key``, the item with
        the smallest key among each equal-cost group survives (occupying the
        group's first position), so shuffling the input can no longer change
        the selected representative.

    Examples
    --------
    >>> pareto_front([(1, 5), (2, 2), (3, 3)], objectives=lambda p: p)
    [(1, 5), (2, 2)]
    """
    candidates = list(items)
    vectors = [tuple(objectives(item)) for item in candidates]
    lengths = {len(v) for v in vectors}
    if len(lengths) > 1:
        raise ValueError(f"objective vectors have mixed lengths: {lengths}")

    selected = pareto_select(vectors, tolerance)
    if tie_key is None:
        return [candidates[index] for index in selected]

    # Deterministic tie-breaking: swap each surviving representative for the
    # smallest-keyed member of its equal-cost group (survival of the *group*
    # is order-independent already; only the representative was not).
    result: list[T] = []
    for index in selected:
        vector = vectors[index]
        group = [item for item, v in zip(candidates, vectors) if v == vector]
        result.append(min(group, key=tie_key))
    return result


def pareto_front_reference(
    items: Iterable[T],
    objectives: Callable[[T], Sequence[float]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[T]:
    """The seed's O(n²) pairwise implementation, kept as the test oracle."""
    candidates = list(items)
    vectors = [tuple(objectives(item)) for item in candidates]
    lengths = {len(v) for v in vectors}
    if len(lengths) > 1:
        raise ValueError(f"objective vectors have mixed lengths: {lengths}")

    survivors: list[T] = []
    survivor_vectors: list[tuple[float, ...]] = []
    for item, vector in zip(candidates, vectors):
        if any(_dominates(other, vector, tolerance) for other in vectors if other is not vector):
            continue
        if vector in survivor_vectors:
            continue
        survivors.append(item)
        survivor_vectors.append(vector)
    return survivors
