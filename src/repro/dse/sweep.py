"""Distributed, store-aware design-space sweeps (:func:`run_sweep`).

The paper's headline workflow sweeps platforms × operating points × policies
× scenarios and Pareto-filters the outcome.  :class:`DesignSpaceExplorer`
walks one (platform, variant) pair serially; this module turns a whole sweep
into a plan of deduplicated work units and runs them fast by composing the
three performance layers that already exist:

* **Plan** — sweep points that share a (platform fingerprint, workload
  fingerprint) pair share their allocation enumeration: the planner collapses
  the ``points × variants × scales`` demand down to the unique
  ``(platform, variant, scale)`` exploration tasks and records how many
  evaluations that saved (``explorations_deduped``).
* **Execute** — tasks fan out through the
  :class:`~repro.cluster.ShardCoordinator` (thread/process/cluster executors,
  work stealing, bounded retry); the :class:`~repro.store.ContentStore`
  memoises finished tasks under the ``"dse"`` kind so shards warm each other
  across workers and across reruns.
* **Merge** — shard results stream, in plan order, into one incremental
  Pareto frontier per (platform, variant); the resulting tables are
  bit-identical to :meth:`DesignSpaceExplorer.explore` and are summarised by
  a deterministic, executor-independent ``frontier_fingerprint``.
* **Policy phase** — every sweep point's scenario problems are scheduled;
  all points using a batching scheduler (MMKP-LR) are driven through a
  *single* :meth:`~repro.schedulers.lr.MMKPLRScheduler.schedule_many` call,
  so same-shape relaxations from *different* sweep points land in one
  stacked :func:`~repro.knapsack.solve_lagrangian_many` solve
  (``cross_group_deduped`` counts those cross-point shares).

Determinism: exploration is a pure function of (platform, graph, scale), the
merge consumes results in plan order, and batching never changes a schedule —
so the fingerprint and every point summary are independent of the executor,
worker count, store temperature and ``REPRO_SOLVER_NUMPY`` mode.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.config import ConfigTable, OperatingPoint
from repro.dataflow.applications import paper_applications
from repro.dataflow.graph import KPNGraph
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.pareto import pareto_front
from repro.dse.tables import reduced_tables
from repro.exceptions import WorkloadError
from repro.obs import tracer as obs
from repro.platforms.platform import Platform
from repro.store.content import ContentStore, resolve_store
from repro.workload.suite import EvaluationSuite, scaled_census

#: Executors accepted by :func:`run_sweep`.  ``"serial"`` runs inline;
#: the rest map onto :class:`~repro.cluster.ShardCoordinator` modes
#: (``"process"`` and ``"cluster"`` are synonyms — the cluster coordinator
#: *is* the process fan-out with work stealing and store warm starts).
EXECUTORS = ("serial", "thread", "process", "cluster")

#: Content-store namespace of memoised exploration tasks.  Bump when the
#: exploration pipeline changes incompatibly.
_STORE_KIND = "dse"
_STORE_VERSION = "v1"


# ---------------------------------------------------------------------- #
# Spec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepScenario:
    """One workload scenario of a sweep: a seeded, down-scaled census suite."""

    name: str
    fraction: float = 0.01
    seed: int = 2020
    minimum_per_bucket: int = 1

    def census(self) -> dict:
        return scaled_census(self.fraction, self.minimum_per_bucket)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fraction": self.fraction,
            "seed": self.seed,
            "minimum_per_bucket": self.minimum_per_bucket,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepScenario":
        return cls(
            name=str(data["name"]),
            fraction=float(data.get("fraction", 0.01)),
            seed=int(data.get("seed", 2020)),
            minimum_per_bucket=int(data.get("minimum_per_bucket", 1)),
        )


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a design-space sweep.

    A sweep point is one (platform, scheduler, scenario) combination; every
    point needs the full (variant × OPP scale) exploration of its platform,
    which is exactly the demand the planner deduplicates.  ``scenarios`` may
    be empty: the sweep then only generates tables (the
    :meth:`~repro.api.session.Session.explore` use).

    This is deliberately *not* part of :mod:`repro.api.spec`'s frozen schema
    snapshot — the sweep surface can evolve without a schema review.
    """

    platforms: tuple[str, ...] = ("odroid-xu4",)
    input_sizes: tuple[str, ...] | None = None
    sweep_opps: bool = False
    schedulers: tuple[str, ...] = ("mmkp-lr",)
    scenarios: tuple[SweepScenario, ...] = ()
    max_points: int | None = None

    def __post_init__(self) -> None:
        if not self.platforms:
            raise WorkloadError("a sweep needs at least one platform")
        if self.scenarios and not self.schedulers:
            raise WorkloadError("scenarios without schedulers: nothing to run")
        if self.max_points is not None and self.max_points <= 0:
            raise WorkloadError("max_points must be positive")

    def to_dict(self) -> dict:
        data: dict = {
            "platforms": list(self.platforms),
            "sweep_opps": self.sweep_opps,
            "schedulers": list(self.schedulers),
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
        }
        if self.input_sizes is not None:
            data["input_sizes"] = list(self.input_sizes)
        if self.max_points is not None:
            data["max_points"] = self.max_points
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        sizes = data.get("input_sizes")
        return cls(
            platforms=tuple(data.get("platforms", ("odroid-xu4",))),
            input_sizes=None if sizes is None else tuple(sizes),
            sweep_opps=bool(data.get("sweep_opps", False)),
            schedulers=tuple(data.get("schedulers", ("mmkp-lr",))),
            scenarios=tuple(
                SweepScenario.from_dict(entry) for entry in data.get("scenarios", ())
            ),
            max_points=data.get("max_points"),
        )


# ---------------------------------------------------------------------- #
# Fingerprints
# ---------------------------------------------------------------------- #
def platform_fingerprint(platform: Platform) -> str:
    """Content fingerprint of a platform, OPP ladders included.

    Two registry entries that build value-identical platforms collide — the
    planner then explores the design space once for both.  The ladder is part
    of the content because :func:`~repro.energy.opp.scaled_platform` derives
    the scaled platforms from it.
    """
    from repro.io.serialization import platform_to_dict

    payload = json.dumps(platform_to_dict(platform), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def graph_fingerprint(graph: KPNGraph) -> str:
    """Content fingerprint of a KPN graph (processes, cycles, channels)."""
    payload = repr(
        (
            graph.name,
            tuple((p.name, repr(p.cycles)) for p in graph),
            tuple(
                (c.name, c.source, c.target, repr(c.bytes_transferred))
                for c in graph.channels
            ),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def frontier_fingerprint(tables: Mapping[str, Mapping[str, ConfigTable]]) -> str:
    """Deterministic digest of a sweep's merged Pareto frontiers.

    Canonicalises every surviving operating point with ``repr`` floats (the
    shortest round-tripping form), sorted by platform and variant name — so
    the digest is independent of executor, worker count, store temperature
    and solver backend, and bit-equal tables always collide.
    """
    digest = hashlib.sha256()
    for platform_name in sorted(tables):
        digest.update(platform_name.encode())
        per_platform = tables[platform_name]
        for variant in sorted(per_platform):
            digest.update(variant.encode())
            for point in per_platform[variant]:
                digest.update(
                    repr(
                        (
                            tuple(point.resources),
                            repr(point.execution_time),
                            repr(point.energy),
                            repr(point.frequency_scale),
                        )
                    ).encode()
                )
    return digest.hexdigest()


# ---------------------------------------------------------------------- #
# Plan
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExplorationTask:
    """One deduplicated unit of exploration work: (platform, variant, scale)."""

    platform: Platform
    platform_fp: str
    variant: str
    graph: KPNGraph
    graph_fp: str
    scale: float

    @property
    def store_key(self) -> tuple:
        return (_STORE_VERSION, self.platform_fp, self.graph_fp, repr(self.scale))


@dataclass(frozen=True)
class SweepPoint:
    """One policy point of the sweep: (platform, scheduler, scenario)."""

    key: str
    platform_name: str
    scheduler: str
    scenario: SweepScenario


@dataclass
class SweepPlan:
    """The planner's output: deduplicated tasks plus the policy points."""

    spec: SweepSpec
    platforms: list[tuple[str, Platform, str, tuple[float, ...]]]
    variants: list[tuple[str, KPNGraph, str]]
    tasks: list[ExplorationTask]
    points: list[SweepPoint]
    stats: dict = field(default_factory=dict)


def _resolve_platform(entry) -> tuple[str, Platform]:
    if isinstance(entry, Platform):
        return entry.name, entry
    from repro.api.registry import platforms as platform_registry

    return str(entry), platform_registry.build(str(entry))


def plan_sweep(
    spec: SweepSpec, platforms: Sequence[Platform | str] | None = None
) -> SweepPlan:
    """Enumerate the sweep and collapse it to unique exploration tasks.

    ``platforms`` overrides the spec's registry names with live platforms
    (the :class:`~repro.api.session.Session` passes its materialised one).
    """
    resolved: list[tuple[str, Platform, str, tuple[float, ...]]] = []
    for entry in platforms if platforms is not None else spec.platforms:
        name, platform = _resolve_platform(entry)
        scales: tuple[float, ...] = (1.0,)
        if spec.sweep_opps:
            from repro.energy.opp import available_scales, ensure_opps

            platform = ensure_opps(platform)
            scales = available_scales(platform)
        fp = platform_fingerprint(platform)
        resolved.append((name, platform, fp, scales))

    variants: list[tuple[str, KPNGraph, str]] = []
    for model in paper_applications().values():
        for variant_name, graph in model.variants().items():
            size = variant_name.split("/", 1)[1]
            if spec.input_sizes is not None and size not in spec.input_sizes:
                continue
            variants.append((variant_name, graph, graph_fingerprint(graph)))
    if not variants:
        raise WorkloadError(
            f"no application variants match input_sizes={spec.input_sizes!r}"
        )

    # Unique tasks: one per (platform fingerprint, variant, scale).  Platforms
    # that fingerprint identically share their tasks; every *sweep point*
    # demands its platform's full variant × scale set, so the gap between
    # demanded and unique evaluations is the planner's structural dedupe.
    tasks: list[ExplorationTask] = []
    task_fps: set[tuple] = set()
    for _, platform, fp, scales in resolved:
        for variant_name, graph, graph_fp in variants:
            for scale in scales:
                task_key = (fp, graph_fp, repr(scale))
                if task_key in task_fps:
                    continue
                task_fps.add(task_key)
                tasks.append(
                    ExplorationTask(
                        platform=platform,
                        platform_fp=fp,
                        variant=variant_name,
                        graph=graph,
                        graph_fp=graph_fp,
                        scale=scale,
                    )
                )

    points: list[SweepPoint] = []
    for name, _, _, _ in resolved:
        for scheduler in spec.schedulers:
            for scenario in spec.scenarios:
                points.append(
                    SweepPoint(
                        key=f"{name}|{scheduler}|{scenario.name}",
                        platform_name=name,
                        scheduler=scheduler,
                        scenario=scenario,
                    )
                )

    per_platform_demand = {
        name: len(variants) * len(scales) for name, _, _, scales in resolved
    }
    # Every policy point re-demands its platform's exploration; with no
    # policy points each platform still demands its tables once.
    demanded = 0
    for name, _, _, _ in resolved:
        point_count = sum(1 for p in points if p.platform_name == name)
        demanded += per_platform_demand[name] * max(1, point_count)
    stats = {
        "platforms": len(resolved),
        "variants": len(variants),
        "points": len(points),
        "explorations_demanded": demanded,
        "explorations_unique": len(tasks),
        "explorations_deduped": demanded - len(tasks),
    }
    return SweepPlan(
        spec=spec,
        platforms=resolved,
        variants=variants,
        tasks=tasks,
        points=points,
        stats=stats,
    )


# ---------------------------------------------------------------------- #
# Task execution (shared by every executor and by worker processes)
# ---------------------------------------------------------------------- #
#: Per-process explorer memo: one explorer per platform fingerprint reuses
#: its allocation enumeration and scaled-platform cache across every task the
#: worker executes — the kernel-style incrementality of the serial path,
#: preserved inside each worker.
_EXPLORERS: dict[str, DesignSpaceExplorer] = {}


def _explorer_for(task: ExplorationTask) -> DesignSpaceExplorer:
    explorer = _EXPLORERS.get(task.platform_fp)
    if explorer is None:
        explorer = DesignSpaceExplorer(task.platform)
        _EXPLORERS[task.platform_fp] = explorer
    return explorer


def run_exploration_task(
    task: ExplorationTask, store: ContentStore | None = None
) -> dict:
    """Execute one exploration task, memoised in the content store.

    Returns ``{"points": [OperatingPoint, ...], "cached": bool}`` with the
    points in the exact enumeration order of
    :meth:`DesignSpaceExplorer.explore_all` for this (variant, scale) slice —
    concatenating slices in plan order reproduces the serial walk.
    """
    if store is not None:
        cached = store.get(_STORE_KIND, task.store_key)
        if cached is not None:
            return {"points": cached, "cached": True}
    explorer = _explorer_for(task)
    points = [
        explorer.evaluate_allocation(task.graph, allocation, task.scale).operating_point
        for allocation in explorer._allocations_for(task.graph.num_processes)
    ]
    if store is not None:
        store.put(_STORE_KIND, task.store_key, points)
    return {"points": points, "cached": False}


@dataclass(frozen=True)
class _TaskFailure:
    """Sentinel recorded when a shard exhausted its retries."""

    variant: str
    scale: float
    error: str


def _sweep_task_failure(task: ExplorationTask, error: str) -> _TaskFailure:
    return _TaskFailure(variant=task.variant, scale=task.scale, error=error)


def _sweep_process_entry(
    tasks: list[ExplorationTask], cache_size: int, token: str | None
) -> list[dict]:
    """Unit entry point inside a worker process (pickled by the pool)."""
    store = ContentStore.open(token) if token else None
    try:
        return [run_exploration_task(task, store) for task in tasks]
    finally:
        if store is not None:
            store.close()


def _task_identity(task: ExplorationTask) -> ExplorationTask:
    return task


# ---------------------------------------------------------------------- #
# Result
# ---------------------------------------------------------------------- #
@dataclass
class SweepResult:
    """Merged outcome of one sweep (tables, policy summaries, counters)."""

    spec: SweepSpec
    tables: dict[str, dict[str, ConfigTable]]
    frontier_fingerprint: str
    points: list[dict]
    stats: dict

    def tables_for(self, platform_name: str) -> dict[str, ConfigTable]:
        return self.tables[platform_name]

    def to_dict(self) -> dict:
        from repro.io.serialization import tables_to_dict

        return {
            "spec": self.spec.to_dict(),
            "frontier_fingerprint": self.frontier_fingerprint,
            "tables": {
                name: tables_to_dict(per_platform)
                for name, per_platform in self.tables.items()
            },
            "points": [dict(point) for point in self.points],
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepResult":
        from repro.io.serialization import tables_from_dict

        tables = {
            name: tables_from_dict(per_platform)
            for name, per_platform in data["tables"].items()
        }
        # Recompute rather than trust the archived digest: a JSON round trip
        # preserves every float (repr-shortest), so a mismatch means the
        # archive was edited or truncated.
        fingerprint = frontier_fingerprint(tables)
        stored = data.get("frontier_fingerprint")
        if stored is not None and stored != fingerprint:
            raise WorkloadError(
                "archived sweep fingerprint does not match its tables "
                f"({stored} != {fingerprint})"
            )
        return cls(
            spec=SweepSpec.from_dict(data.get("spec", {})),
            tables=tables,
            frontier_fingerprint=fingerprint,
            points=[dict(point) for point in data.get("points", ())],
            stats=dict(data.get("stats", {})),
        )

    def merge(self, other: "SweepResult") -> "SweepResult":
        """Combine two sweep halves (e.g. archived shards) into one result.

        Platforms present in both halves must carry bit-identical tables;
        policy points are unioned by key (first occurrence wins).
        """
        tables = {name: dict(per) for name, per in self.tables.items()}
        for name, per_platform in other.tables.items():
            if name in tables:
                mine = frontier_fingerprint({name: tables[name]})
                theirs = frontier_fingerprint({name: per_platform})
                if mine != theirs:
                    raise WorkloadError(
                        f"cannot merge sweeps: platform {name!r} tables differ"
                    )
            else:
                tables[name] = dict(per_platform)
        seen = {point["point"] for point in self.points}
        points = list(self.points) + [
            point for point in other.points if point["point"] not in seen
        ]
        return SweepResult(
            spec=self.spec,
            tables=tables,
            frontier_fingerprint=frontier_fingerprint(tables),
            points=points,
            stats={"merged_from": [self.stats, other.stats]},
        )


# ---------------------------------------------------------------------- #
# Merge
# ---------------------------------------------------------------------- #
def _merge_tables(
    plan: SweepPlan, outcomes: Sequence[dict]
) -> dict[str, dict[str, ConfigTable]]:
    """Stream task outcomes, in plan order, into per-variant Pareto fronts."""
    # Concatenate the per-(platform_fp, variant) slices in plan order: tasks
    # were generated scale-outer per variant, so the concatenation replays
    # ``explore_all(graph, opp_scales=scales)``'s enumeration exactly and the
    # first-occurrence Pareto representative matches the serial explorer.
    by_pair: dict[tuple[str, str], list[OperatingPoint]] = {}
    for task, outcome in zip(plan.tasks, outcomes):
        by_pair.setdefault((task.platform_fp, task.variant), []).extend(
            outcome["points"]
        )

    per_fp: dict[str, dict[str, ConfigTable]] = {}
    for (fp, variant), points in by_pair.items():
        front = pareto_front(
            points,
            objectives=lambda p: tuple(p.resources) + (p.execution_time, p.energy),
        )
        table = ConfigTable(variant, front, pareto_filter=True)
        # Pre-intern the columnar twin, as the serial explorer does.
        table.optable
        per_fp.setdefault(fp, {})[variant] = table

    return {name: per_fp[fp] for name, _, fp, _ in plan.platforms}


# ---------------------------------------------------------------------- #
# Policy phase
# ---------------------------------------------------------------------- #
def _run_policies(
    plan: SweepPlan,
    tables: Mapping[str, Mapping[str, ConfigTable]],
    store: ContentStore | None,
) -> tuple[list[dict], dict]:
    """Schedule every sweep point's scenario problems, batching across points."""
    from repro.api.registry import schedulers as scheduler_registry

    platform_by_name = {name: platform for name, platform, _, _ in plan.platforms}
    policy_tables: dict[str, Mapping[str, ConfigTable]] = {}
    for name in platform_by_name:
        per = tables[name]
        policy_tables[name] = (
            reduced_tables(per, plan.spec.max_points)
            if plan.spec.max_points is not None
            else per
        )

    suites: dict[tuple[str, str], EvaluationSuite] = {}

    def suite_for(point: SweepPoint) -> EvaluationSuite:
        cache_key = (point.platform_name, point.scenario.name)
        suite = suites.get(cache_key)
        if suite is None:
            suite = EvaluationSuite.generate(
                policy_tables[point.platform_name],
                point.scenario.census(),
                seed=point.scenario.seed,
            )
            suites[cache_key] = suite
        return suite

    # One scheduler instance per registry name, shared by every sweep point
    # using it: relaxation memo hits promote across points (and, with a
    # store-backed cache, across workers and reruns) without ever changing a
    # schedule — solve-cache keys are content-addressed.
    instances: dict[str, object] = {}

    def scheduler_for(name: str):
        instance = instances.get(name)
        if instance is None:
            instance = scheduler_registry.build(name)
            cache = getattr(instance, "solve_cache", None)
            if store is not None and cache is not None:
                from repro.store.bindings import StoreBackedSolveCache

                instance.solve_cache = StoreBackedSolveCache(store)
            instances[name] = instance
        return instance

    point_problems: list[tuple[SweepPoint, list]] = []
    for point in plan.points:
        suite = suite_for(point)
        platform = platform_by_name[point.platform_name]
        problems = [
            problem
            for _, problem in suite.problems(
                platform, policy_tables[point.platform_name]
            )
        ]
        point_problems.append((point, problems))

    # Bucket the points by scheduler: batching schedulers get ONE lock-step
    # schedule_many call spanning every point, which is what buckets
    # same-shape relaxations from different sweep points into single stacked
    # solves; the rest run sequentially per point.
    results_by_point: dict[str, list] = {}
    solver_stats = {
        "problems": 0,
        "rounds": 0,
        "requested": 0,
        "solved": 0,
        "deduped": 0,
        "cross_group_deduped": 0,
    }
    for scheduler_name in plan.spec.schedulers:
        scheduler = scheduler_for(scheduler_name)
        batch = [
            (point, problems)
            for point, problems in point_problems
            if point.scheduler == scheduler_name
        ]
        if not batch:
            continue
        if hasattr(scheduler, "schedule_many"):
            flat_problems: list = []
            flat_groups: list = []
            for point, problems in batch:
                flat_problems.extend(problems)
                flat_groups.extend([point.key] * len(problems))
            scheduled = scheduler.schedule_many(flat_problems, groups=flat_groups)
            cursor = 0
            for point, problems in batch:
                results_by_point[point.key] = scheduled[
                    cursor : cursor + len(problems)
                ]
                cursor += len(problems)
            stats = scheduler.last_batch_stats or {}
            for key in solver_stats:
                solver_stats[key] += stats.get(key, 0)
        else:
            for point, problems in batch:
                results_by_point[point.key] = [
                    scheduler.schedule(problem) for problem in problems
                ]
                solver_stats["problems"] += len(problems)

    summaries = []
    for point, problems in point_problems:
        results = results_by_point[point.key]
        feasible = [r for r in results if r.feasible]
        summaries.append(
            {
                "point": point.key,
                "platform": point.platform_name,
                "scheduler": point.scheduler,
                "scenario": point.scenario.name,
                "cases": len(results),
                "feasible": len(feasible),
                "energy": sum(r.energy for r in feasible),
                "subgradient_iterations": sum(
                    int(r.statistics.get("subgradient_iterations", 0))
                    for r in results
                ),
            }
        )
    return summaries, solver_stats


# ---------------------------------------------------------------------- #
# Driver
# ---------------------------------------------------------------------- #
def run_sweep(
    spec: SweepSpec,
    *,
    platforms: Sequence[Platform | str] | None = None,
    executor: str = "serial",
    workers: int = 1,
    unit_size: int | None = None,
    max_retries: int = 2,
    store: ContentStore | str | None = None,
    progress=None,
) -> SweepResult:
    """Plan, execute and merge one design-space sweep.

    Parameters
    ----------
    spec:
        The sweep description.
    platforms:
        Live platforms overriding the spec's registry names.
    executor:
        One of :data:`EXECUTORS`; ``"serial"`` runs inline, the others fan
        the plan out through a :class:`~repro.cluster.ShardCoordinator`.
    workers, unit_size, max_retries:
        Coordinator knobs (ignored by the serial executor).
    store:
        Content store (or path) memoising exploration tasks and Lagrangian
        solves across workers and reruns; ``None`` consults ``REPRO_STORE``.
    progress:
        Optional ``(task_index, outcome) -> None`` callback.
    """
    if executor not in EXECUTORS:
        raise WorkloadError(
            f"unknown sweep executor {executor!r}; choose from {EXECUTORS}"
        )
    store = resolve_store(store)

    with obs.span("sweep.plan", category="sweep") as span:
        plan = plan_sweep(spec, platforms)
        span.annotate(**plan.stats)
    obs.count("sweep.explorations_deduped", plan.stats["explorations_deduped"])

    with obs.span(
        "sweep.execute", category="sweep", executor=executor, workers=workers
    ) as span:
        coordinator_stats = None
        if executor == "serial":
            outcomes: list = []
            for index, task in enumerate(plan.tasks):
                outcome = run_exploration_task(task, store)
                outcomes.append(outcome)
                if progress is not None:
                    progress(index, outcome)
        else:
            from repro.cluster.coordinator import ShardCoordinator

            mode = "thread" if executor == "thread" else "process"
            coordinator = ShardCoordinator(
                workers,
                mode=mode,
                unit_size=unit_size,
                max_retries=max_retries,
                store=store,
                thread_runner=lambda task: run_exploration_task(task, store),
                process_entry=_sweep_process_entry,
                payload=_task_identity,
                failure=_sweep_task_failure,
            )
            outcomes = coordinator.run(plan.tasks, progress)
            coordinator_stats = coordinator.stats.as_dict()
        failures = [o for o in outcomes if isinstance(o, _TaskFailure)]
        if failures:
            first = failures[0]
            raise WorkloadError(
                f"{len(failures)} exploration task(s) failed; first: "
                f"{first.variant}@{first.scale}: {first.error}"
            )
        store_hits = sum(1 for outcome in outcomes if outcome["cached"])
        span.annotate(tasks=len(plan.tasks), store_hits=store_hits)
    obs.count("sweep.store_hits", store_hits)

    with obs.span("sweep.merge", category="sweep") as span:
        tables = _merge_tables(plan, outcomes)
        fingerprint = frontier_fingerprint(tables)
        span.annotate(fingerprint=fingerprint)

    point_summaries: list[dict] = []
    solver_stats: dict = {}
    if plan.points:
        with obs.span("sweep.solve", category="sweep") as span:
            point_summaries, solver_stats = _run_policies(plan, tables, store)
            span.annotate(**solver_stats)
        obs.count(
            "sweep.cross_point_deduped", solver_stats.get("cross_group_deduped", 0)
        )

    stats = dict(plan.stats)
    stats["executor"] = executor
    stats["workers"] = workers
    stats["store"] = store is not None
    stats["store_hits"] = store_hits
    stats["store_misses"] = len(plan.tasks) - store_hits
    if coordinator_stats is not None:
        stats["coordinator"] = coordinator_stats
    if solver_stats:
        stats["solver"] = solver_stats
    return SweepResult(
        spec=spec,
        tables=tables,
        frontier_fingerprint=fingerprint,
        points=point_summaries,
        stats=stats,
    )


__all__ = [
    "EXECUTORS",
    "ExplorationTask",
    "SweepPlan",
    "SweepPoint",
    "SweepResult",
    "SweepScenario",
    "SweepSpec",
    "frontier_fingerprint",
    "graph_fingerprint",
    "plan_sweep",
    "platform_fingerprint",
    "run_exploration_task",
    "run_sweep",
]
