"""Design-space exploration: from dataflow applications to operating points.

The hybrid mapping approach of the paper assumes that every application comes
with a *Pareto-filtered table of operating points* produced at design time.
This package regenerates those tables: it enumerates core allocations of the
platform, derives a balanced process-to-core mapping per allocation, simulates
it with the trace-driven simulator and Pareto-filters the results.
"""

from repro.dse.pareto import pareto_front
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult
from repro.dse.tables import paper_operating_points, reduced_tables
from repro.dse.sweep import (
    SweepResult,
    SweepScenario,
    SweepSpec,
    frontier_fingerprint,
    plan_sweep,
    run_sweep,
)

__all__ = [
    "pareto_front",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "paper_operating_points",
    "reduced_tables",
    "SweepResult",
    "SweepScenario",
    "SweepSpec",
    "frontier_fingerprint",
    "plan_sweep",
    "run_sweep",
]
