"""Command-line interface of the runtime-manager reproduction.

The CLI mirrors the typical usage of the library:

* ``repro-rm run`` — run one experiment described by an
  :class:`~repro.api.spec.ExperimentSpec` JSON file through the
  :class:`~repro.api.session.Session` facade (optionally streaming the run
  events, or fanning out into seeded trials).
* ``repro-rm dse`` — run the design-space exploration and export the
  operating-point tables as JSON.
* ``repro-rm workload`` — generate the evaluation test suite (Table III
  census) and export it as JSON.
* ``repro-rm schedule`` — run one scheduler on one exported test case and
  print the resulting mapping segments.
* ``repro-rm evaluate`` — run the full comparison (Fig. 2, Table IV, Fig. 3,
  Fig. 4) on a down-scaled census and print the text reports.
* ``repro-rm motivational`` — reproduce the motivational example (Fig. 1).
* ``repro-rm batch`` — run a batch of online runtime-manager simulations
  described by a :class:`~repro.service.jobs.BatchSpec` JSON file through the
  concurrent :class:`~repro.service.pool.SimulationService` (worker fan-out,
  activation caching, service metrics); see :mod:`repro.service`.
* ``repro-rm profile`` — run one experiment under several schedulers with
  span tracing enabled (see :mod:`repro.obs`) and print the per-scheduler
  phase-time breakdown; ``run``/``batch`` accept ``--trace out.json`` to
  export a Chrome-trace view of any run.
* ``repro-rm energy`` — replay a batch (or the motivational trace) under a
  frequency governor and report the per-cluster energy breakdown; see
  :mod:`repro.energy`.
* ``repro-rm serve`` — run the scheduler-as-a-service gateway daemon:
  REST submission of experiment specs, SSE streaming of run events,
  per-tenant concurrency limits and graceful drain; see
  :mod:`repro.gateway`.
* ``repro-rm submit`` — submit an :class:`~repro.api.spec.ExperimentSpec`
  JSON file to a running gateway and wait for (or stream) the result.

All name-based choices (``--scheduler``, ``--governor``, platform names in
spec files) resolve through the plugin registries of
:mod:`repro.api.registry`, so registered third-party plugins are accepted
everywhere without CLI edits.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import os
import sys
from typing import Sequence

from repro.analysis import (
    evaluate_suite,
    format_energy_breakdown,
    format_fig2_scheduling_rate,
    format_fig3_scurve,
    format_fig4_search_time,
    format_table_iii,
    format_table_iv,
)
from repro.api.registry import governors as GOVERNORS
from repro.api.registry import schedulers as SCHEDULERS
from repro.api.spec import (
    DSESpec,
    EnergySpec,
    ExperimentSpec,
    SchedulerSpec,
    WorkloadSpec,
)
from repro.io import (
    load_json,
    save_json,
    tables_from_dict,
    tables_to_dict,
    test_case_from_dict,
    test_case_to_dict,
)
from repro.platforms import odroid_xu4
from repro.workload import EvaluationSuite
from repro.workload.suite import scaled_census, table_iii_census


def _add_service_options(parser: argparse.ArgumentParser) -> None:
    """The shared SimulationService flags (one definition for every command)."""
    parser.add_argument(
        "--workers", type=int, default=1, help="worker count for the fan-out"
    )
    parser.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process", "cluster"],
        default="auto",
        help="fan-out backend (auto: serial for one worker, threads otherwise; "
        "cluster: sharded process pool with work stealing)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the activation cache"
    )
    parser.add_argument(
        "--cache-size", type=int, default=4096, help="activation cache capacity"
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="persistent content-addressed cache store (SQLite file); warm "
        "reruns reuse solves across invocations ($REPRO_STORE also works, "
        "REPRO_STORE=0 force-disables)",
    )


def _make_service(args: argparse.Namespace):
    """Build the SimulationService described by the shared flags."""
    from repro.service import SimulationService

    service = SimulationService(
        workers=args.workers,
        executor=getattr(args, "executor", "auto"),
        use_cache=not getattr(args, "no_cache", False),
        cache_size=getattr(args, "cache_size", 4096),
        store=getattr(args, "store", None),
    )
    if service.store is not None:
        # One CLI invocation is one process, so binding the process-global
        # OpTable intern pool to the store is safe — and lets table builds
        # warm across invocations like every other cache kind.
        from repro.optable import bind_intern_store

        bind_intern_store(service.store)
    return service


def _load_batch(path: str):
    """Load a BatchSpec file, returning ``None`` after printing the error."""
    from repro.exceptions import ReproError
    from repro.service import BatchSpec

    try:
        return BatchSpec.load(path)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def _broken_pipe_exit() -> int:
    """Exit cleanly after stdout went away mid-stream (e.g. piped to head).

    Redirects stdout to /dev/null so the interpreter's shutdown flush does
    not traceback on the closed pipe; a consumer closing its end is a
    normal way to end a stream, not an error.
    """
    try:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    except OSError:
        pass
    return 0


def _make_tracer(args: argparse.Namespace, name: str):
    """A :class:`~repro.obs.Tracer` when ``--trace`` was given, else ``None``."""
    if not getattr(args, "trace", None):
        return None
    from repro.obs import Tracer

    return Tracer(name=name)


def _write_trace(args: argparse.Namespace, tracer) -> None:
    """Export a finished tracer to the ``--trace`` path (Chrome trace JSON)."""
    if tracer is None:
        return
    from repro.obs import write_chrome_trace

    write_chrome_trace(args.trace, tracer)
    print(
        f"wrote {len(tracer)} spans to {args.trace} "
        "(load in Perfetto or chrome://tracing)"
    )


def _print_aggregate(name: str, aggregate: dict) -> None:
    print(
        f"batch {name}: {aggregate['traces']} traces "
        f"({aggregate['failed']} failed), "
        f"{aggregate['requests']} requests, "
        f"acceptance {aggregate['acceptance_rate'] * 100:.1f} %, "
        f"energy {aggregate['total_energy']:.2f} J, "
        f"{aggregate['activations']} activations"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rm",
        description="Energy-efficient runtime resource management (DATE 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run",
        help="run one experiment from an ExperimentSpec JSON file",
        description=(
            "Load a typed ExperimentSpec (see repro.api.spec), open a Session "
            "over it and run it: a single observed simulation by default, or "
            "a seeded multi-trial batch with --trials."
        ),
    )
    run.add_argument("spec", help="ExperimentSpec JSON file (see repro.api.spec)")
    run.add_argument(
        "--trials",
        type=int,
        default=1,
        help="fan the spec out into N seeded trials (seeded workloads only)",
    )
    run.add_argument(
        "--stream",
        action="store_true",
        help="print every run event (arrivals, commits, finishes, energy ticks)",
    )
    run.add_argument(
        "--engine",
        choices=["events", "linear"],
        default=None,
        help="override the spec's time-advance engine",
    )
    run.add_argument("--output", default=None, help="write the run summary JSON")
    run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome-trace JSON of the run (Perfetto / chrome://tracing)",
    )
    _add_service_options(run)

    dse = subparsers.add_parser("dse", help="generate operating-point tables")
    dse.add_argument("--output", default="operating_points.json", help="output JSON file")
    dse.add_argument(
        "--sizes", nargs="*", default=None, help="input sizes to include (default: all)"
    )
    dse.add_argument(
        "--sweep-opps",
        action="store_true",
        help="also sweep the DVFS operating points (adds a frequency column)",
    )
    dse.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="cap every table at N points (the EX-MEM-sized reduction)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="distributed store-aware design-space sweep",
        description=(
            "Plan a sweep over platforms × OPP scales × schedulers × "
            "scenarios, deduplicate the shared exploration work, fan it out "
            "through the shard coordinator and merge the shards into one "
            "fingerprinted Pareto frontier (see repro.dse.sweep)."
        ),
    )
    sweep.add_argument(
        "--platforms", nargs="*", default=["odroid-xu4"],
        help="platform registry names to sweep",
    )
    sweep.add_argument(
        "--sizes", nargs="*", default=None,
        help="input sizes to include (default: all)",
    )
    sweep.add_argument(
        "--sweep-opps", action="store_true",
        help="also sweep the DVFS operating points per platform",
    )
    sweep.add_argument(
        "--schedulers", nargs="*", default=["mmkp-lr"],
        help="schedulers evaluated per sweep point",
    )
    sweep.add_argument(
        "--scenarios", type=int, default=2,
        help="number of seeded census scenarios per (platform, scheduler)",
    )
    sweep.add_argument(
        "--fraction", type=float, default=0.005,
        help="census fraction of each scenario (Table III down-scaling)",
    )
    sweep.add_argument(
        "--seed", type=int, default=2020,
        help="base seed; scenario i uses seed+i",
    )
    sweep.add_argument(
        "--max-points", type=int, default=None,
        help="cap every policy table at N points",
    )
    sweep.add_argument(
        "--workers", type=int, default=1, help="worker count for the fan-out"
    )
    sweep.add_argument(
        "--executor",
        choices=["serial", "thread", "process", "cluster"],
        default="serial",
        help="sweep executor (serial: inline; thread/process/cluster: "
        "shard coordinator with work stealing)",
    )
    sweep.add_argument(
        "--store", default=None, metavar="PATH",
        help="content store memoising exploration tasks and solves across "
        "workers and reruns ($REPRO_STORE also works)",
    )
    sweep.add_argument(
        "--output", default=None, help="write the full SweepResult JSON"
    )

    workload = subparsers.add_parser("workload", help="generate the evaluation suite")
    workload.add_argument("--tables", default=None, help="operating-point JSON (default: run DSE)")
    workload.add_argument("--output", default="workload.json", help="output JSON file")
    workload.add_argument("--fraction", type=float, default=1.0, help="census scale factor")
    workload.add_argument("--seed", type=int, default=2020, help="generator seed")

    schedule = subparsers.add_parser("schedule", help="schedule one exported test case")
    schedule.add_argument("testcase", help="JSON file with one test case")
    schedule.add_argument("--tables", required=True, help="operating-point JSON")
    schedule.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="mmkp-mdf")

    evaluate = subparsers.add_parser("evaluate", help="run the full comparison")
    evaluate.add_argument("--fraction", type=float, default=0.05, help="census scale factor")
    evaluate.add_argument("--max-points", type=int, default=8, help="table size cap for EX-MEM")
    evaluate.add_argument("--seed", type=int, default=2020, help="workload seed")
    evaluate.add_argument(
        "--skip-exmem", action="store_true", help="skip the exhaustive reference scheduler"
    )

    subparsers.add_parser("motivational", help="reproduce the motivational example (Fig. 1)")

    batch = subparsers.add_parser(
        "batch",
        help="run a batch of online simulations from a BatchSpec JSON file",
        description=(
            "Run every simulation job of a BatchSpec file through the "
            "concurrent SimulationService: per-job seeding keeps results "
            "bit-identical for any worker count, repeated scheduler "
            "activations are served from the activation cache, and one "
            "failing trace does not abort the batch."
        ),
    )
    batch.add_argument("spec", help="BatchSpec JSON file (see repro.service.jobs)")
    _add_service_options(batch)
    batch.add_argument(
        "--shard", default=None, metavar="I/N", help="run only shard I of N"
    )
    batch.add_argument("--output", default=None, help="write result summaries JSON")
    batch.add_argument(
        "--quiet", action="store_true", help="omit the service metrics block"
    )
    batch.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome-trace JSON of the batch (Perfetto / chrome://tracing)",
    )

    profile = subparsers.add_parser(
        "profile",
        help="per-scheduler phase-time breakdown of a traced run",
        description=(
            "Run one experiment under several schedulers with span tracing "
            "enabled and print where the time went: per-phase durations "
            "(arrival handling, pipeline snapshot/candidates/solve/commit, "
            "solver activations, energy accounting) plus cache and packer "
            "counters.  Without a spec file, profiles the motivational "
            "scenario workload."
        ),
    )
    profile.add_argument(
        "spec", nargs="?", default=None,
        help="ExperimentSpec JSON file (default: the motivational scenario)",
    )
    profile.add_argument(
        "--scenario", choices=["S1", "S2"], default="S1",
        help="motivational scenario to profile when no spec is given",
    )
    profile.add_argument(
        "--schedulers", nargs="+", default=None, metavar="NAME",
        help="schedulers to profile (default: ex-mem mmkp-lr mmkp-mdf fixed)",
    )
    profile.add_argument(
        "--engine",
        choices=["events", "linear"],
        default=None,
        help="override the time-advance engine",
    )
    profile.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also write the merged Chrome trace of every profiled run",
    )

    energy = subparsers.add_parser(
        "energy",
        help="per-cluster energy breakdown under a frequency governor",
        description=(
            "Replay a BatchSpec (or, without --spec, the motivational "
            "scenarios) with the chosen frequency governor and optional "
            "power-cap / energy-budget admission control, then report the "
            "per-cluster busy/idle energy breakdown the incremental "
            "EnergyMeter integrated online."
        ),
    )
    energy.add_argument(
        "--spec", default=None, help="BatchSpec JSON file (default: motivational trace)"
    )
    energy.add_argument(
        "--governor",
        choices=sorted(GOVERNORS),
        default="performance",
        help="frequency governor to run under",
    )
    energy.add_argument(
        "--compare",
        action="store_true",
        help="also print total energy under every other governor",
    )
    energy.add_argument(
        "--power-cap", type=float, default=None, metavar="WATTS",
        help="reject requests whose schedule would exceed this platform power",
    )
    energy.add_argument(
        "--energy-budget", type=float, default=None, metavar="JOULES",
        help="reject requests once the run would exceed this energy budget",
    )
    _add_service_options(energy)
    energy.add_argument("--output", default=None, help="write the breakdown JSON")

    serve = subparsers.add_parser(
        "serve",
        help="run the scheduler-as-a-service gateway daemon",
        description=(
            "Start the asyncio gateway daemon (see repro.gateway): POST "
            "ExperimentSpec JSON to /runs or /batches, stream run events "
            "over SSE from /runs/{id}/events, scrape Prometheus metrics "
            "from /metrics.  SIGTERM/SIGINT drain gracefully: in-flight "
            "runs finish, new submissions get 503."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8023, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=8,
        help="total runs executing at once (excess queue fairly)",
    )
    serve.add_argument(
        "--max-per-tenant", type=int, default=2,
        help="runs one tenant may execute at once",
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=None, metavar="SECONDS",
        help="fail queued submissions that wait longer than this",
    )
    serve.add_argument(
        "--batch-workers", type=int, default=1,
        help="SimulationService workers per batch submission",
    )
    serve.add_argument(
        "--store", default=None, metavar="PATH",
        help="persistent content-addressed cache store shared by all tenants "
        "(SQLite file; $REPRO_STORE also works, REPRO_STORE=0 disables)",
    )

    store = subparsers.add_parser(
        "store",
        help="inspect or maintain a persistent cache store",
        description=(
            "Maintenance surface of the repro.store content-addressed cache "
            "(the --store flag of run/batch/serve): print hit/size statistics, "
            "garbage-collect entries written by other repro versions, or wipe "
            "the store entirely."
        ),
    )
    store.add_argument("action", choices=["stats", "gc", "clear"])
    store.add_argument(
        "--store", default=None, metavar="PATH",
        help="store path (defaults to $REPRO_STORE)",
    )
    store.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="gc: additionally trim every cache kind to its N newest entries",
    )
    store.add_argument(
        "--json", action="store_true", help="stats: print the raw JSON"
    )

    submit = subparsers.add_parser(
        "submit",
        help="submit an ExperimentSpec to a running gateway",
        description=(
            "Submit an ExperimentSpec JSON file to a gateway daemon "
            "(repro-rm serve) and wait for the result — or follow the run's "
            "event stream live with --stream.  With --trials N the spec "
            "fans out into a seeded batch on the daemon."
        ),
    )
    submit.add_argument("spec", help="ExperimentSpec JSON file (see repro.api.spec)")
    submit.add_argument(
        "--url",
        default=os.environ.get("REPRO_GATEWAY_URL", "http://127.0.0.1:8023"),
        help="gateway base URL (default: $REPRO_GATEWAY_URL or localhost:8023)",
    )
    submit.add_argument("--tenant", default=None, help="tenant label for admission")
    submit.add_argument(
        "--session", default=None,
        help="named gateway session to reuse (warm kernel caches)",
    )
    submit.add_argument(
        "--trials", type=int, default=1,
        help="fan the spec out into N seeded trials on the daemon",
    )
    submit.add_argument(
        "--stream", action="store_true",
        help="follow the run's event stream (single runs only)",
    )
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="queue-to-finish deadline enforced by the daemon",
    )
    submit.add_argument("--output", default=None, help="write the result JSON")
    return parser


# ---------------------------------------------------------------------- #
# Sub-command implementations
# ---------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.events import RunEventKind
    from repro.api.session import Session
    from repro.exceptions import ReproError

    try:
        spec = ExperimentSpec.load(args.spec)
        if args.engine:
            # Override on the spec itself so both the single-run and the
            # batch path honour it (batch jobs carry the spec's engine).
            spec = dataclasses.replace(spec, engine=args.engine)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = Session.from_spec(spec)
    tracer = _make_tracer(args, spec.name)
    scope = tracer if tracer is not None else contextlib.nullcontext()

    if args.trials > 1:
        if args.stream:
            print("error: --stream applies to single runs, not --trials batches",
                  file=sys.stderr)
            return 2
        try:
            with scope:
                results = session.run_batch(
                    trials=args.trials, service=_make_service(args)
                )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        _print_aggregate(spec.name, results.aggregate())
        for failure in results.failures:
            print(f"  FAILED {failure.job_name}: {failure.error}")
        _write_trace(args, tracer)
        if args.output:
            save_json(results.to_dict(), args.output)
            print(f"wrote {len(results)} trial summaries to {args.output}")
        return 1 if results.failures else 0

    try:
        with scope:
            if args.stream:
                log = None
                try:
                    # The stream is a context manager: leaving the block — for
                    # any reason — cancels and joins the worker thread, so a
                    # consumer like ``| head`` never leaves a simulation running.
                    with session.stream() as events:
                        for event in events:
                            if event.kind is RunEventKind.END:
                                log = event.data["log"]
                            else:
                                print(event, flush=True)
                except BrokenPipeError:
                    return _broken_pipe_exit()
                except KeyboardInterrupt:
                    print("interrupted", file=sys.stderr)
                    return 130
            else:
                log = session.run()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _write_trace(args, tracer)

    misses = len(log.deadline_misses)
    print(
        f"experiment {spec.name} ({spec.scheduler.name} on "
        f"{spec.platform.name or 'inline platform'}): "
        f"{len(log.outcomes)} requests, "
        f"acceptance {log.acceptance_rate * 100:.1f} %, "
        f"energy {log.total_energy:.2f} J, makespan {log.makespan:.2f} s, "
        f"{misses} deadline misses, {log.budget_rejections} budget rejections"
    )
    if args.output:
        save_json(
            {
                "name": spec.name,
                "scheduler": spec.scheduler.name,
                "engine": spec.engine,
                "requests": len(log.outcomes),
                "accepted": len(log.accepted),
                "rejected": len(log.rejected),
                "acceptance_rate": log.acceptance_rate,
                "total_energy": log.total_energy,
                "makespan": log.makespan,
                "activations": log.activations,
                "deadline_misses": misses,
                "budget_rejections": log.budget_rejections,
                "cluster_energy": log.cluster_energy,
            },
            args.output,
        )
        print(f"wrote run summary to {args.output}")
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    spec = DSESpec(
        input_sizes=tuple(args.sizes) if args.sizes else None,
        sweep_opps=args.sweep_opps,
        max_points=args.max_points,
    )
    tables = spec.build_tables()
    save_json(tables_to_dict(tables), args.output)
    print(f"wrote {len(tables)} operating-point tables to {args.output}")
    for name, table in sorted(tables.items()):
        scales = {point.frequency_scale for point in table}
        note = f", {len(scales)} frequency scales" if len(scales) > 1 else ""
        print(f"  {name}: {len(table)} Pareto points{note}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.dse.sweep import SweepScenario, SweepSpec, run_sweep

    spec = SweepSpec(
        platforms=tuple(args.platforms),
        input_sizes=tuple(args.sizes) if args.sizes else None,
        sweep_opps=args.sweep_opps,
        schedulers=tuple(args.schedulers),
        scenarios=tuple(
            SweepScenario(f"s{index}", fraction=args.fraction, seed=args.seed + index)
            for index in range(args.scenarios)
        ),
        max_points=args.max_points,
    )
    result = run_sweep(
        spec,
        executor=args.executor,
        workers=args.workers,
        store=args.store,
    )
    stats = result.stats
    print(
        f"sweep: {stats['platforms']} platform(s), {stats['variants']} variant(s), "
        f"{stats['points']} point(s) via {stats['executor']}"
        f" ({stats['workers']} worker(s))"
    )
    print(
        f"  explorations: {stats['explorations_unique']} unique of "
        f"{stats['explorations_demanded']} demanded "
        f"({stats['explorations_deduped']} deduped), "
        f"store hits {stats['store_hits']}/{stats['store_hits'] + stats['store_misses']}"
    )
    solver = stats.get("solver")
    if solver:
        print(
            f"  solver: {solver['solved']} solved of {solver['requested']} requested "
            f"in {solver['rounds']} round(s), {solver['deduped']} deduped "
            f"({solver['cross_group_deduped']} cross-point)"
        )
    print(f"  frontier fingerprint: {result.frontier_fingerprint}")
    for point in result.points:
        print(
            f"  {point['point']}: {point['feasible']}/{point['cases']} feasible, "
            f"energy {point['energy']:.3f} J"
        )
    if args.output:
        save_json(result.to_dict(), args.output)
        print(f"wrote sweep result to {args.output}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    if args.tables:
        tables = tables_from_dict(load_json(args.tables))
    else:
        tables = DSESpec().build_tables()
    census = table_iii_census() if args.fraction >= 1.0 else scaled_census(args.fraction)
    suite = EvaluationSuite.generate(tables, census, seed=args.seed)
    save_json(
        {"cases": [test_case_to_dict(case) for case in suite]},
        args.output,
    )
    print(format_table_iii(suite))
    print(f"wrote {len(suite)} test cases to {args.output}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    tables = tables_from_dict(load_json(args.tables))
    case = test_case_from_dict(load_json(args.testcase))
    problem = case.problem(odroid_xu4(), tables)
    scheduler = SCHEDULERS.build(args.scheduler)
    result = scheduler.schedule(problem)
    if not result.feasible:
        print(f"{scheduler.name}: test case {case.name} rejected")
        return 1
    print(f"{scheduler.name}: energy {result.energy:.3f} J, "
          f"search time {result.search_time * 1000:.2f} ms")
    for segment in result.schedule:
        jobs = ", ".join(
            f"{m.job_name}:{m.config_index}" for m in segment
        )
        print(f"  [{segment.start:8.3f}, {segment.end:8.3f})  {jobs}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    platform = odroid_xu4()
    tables = DSESpec(max_points=args.max_points).build_tables()
    suite = EvaluationSuite.generate(tables, scaled_census(args.fraction), seed=args.seed)
    names = ["mmkp-lr", "mmkp-mdf"]
    if not args.skip_exmem:
        names.insert(0, "ex-mem")
    schedulers = [SCHEDULERS.build(name) for name in names]
    results = evaluate_suite(suite, platform, tables, schedulers)
    print(format_table_iii(suite))
    print()
    print(format_fig2_scheduling_rate(results, names))
    print()
    if not args.skip_exmem:
        print(format_table_iv(results, ["mmkp-lr", "mmkp-mdf"], "ex-mem"))
        print()
        print(format_fig3_scurve(results, ["mmkp-lr", "mmkp-mdf"], "ex-mem"))
        print()
    print(format_fig4_search_time(results, names))
    return 0


def _cmd_motivational(args: argparse.Namespace) -> int:
    from repro.api.session import Session

    for scenario in ("S1", "S2"):
        print(f"Scenario {scenario}")
        variants = [
            ("fixed mapper, remap at start", "fixed", False),
            ("fixed mapper, remap at start+finish", "fixed", True),
            ("adaptive mapper (MMKP-MDF)", "mmkp-mdf", False),
        ]
        for label, scheduler, remap in variants:
            spec = ExperimentSpec(
                name=f"motivational-{scenario.lower()}",
                workload=WorkloadSpec.scenario(scenario),
                scheduler=SchedulerSpec(name=scheduler, remap_on_finish=remap),
            )
            log = Session.from_spec(spec).run()
            print(
                f"  {label:38s} energy = {log.total_energy:6.2f} J, "
                f"acceptance = {log.acceptance_rate * 100:5.1f} %"
            )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.exceptions import WorkloadError

    spec = _load_batch(args.spec)
    if spec is None:
        return 2
    if args.shard:
        try:
            index, count = (int(part) for part in args.shard.split("/"))
        except ValueError:
            print(f"invalid --shard {args.shard!r}; expected I/N", file=sys.stderr)
            return 2
        try:
            spec = spec.shard(index, count)
        except WorkloadError as error:
            # Well-formed but out of range — report the real reason.
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        service = _make_service(args)
    except WorkloadError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    tracer = _make_tracer(args, spec.name)
    scope = tracer if tracer is not None else contextlib.nullcontext()
    with scope:
        results = service.run_batch(spec)
    _print_aggregate(spec.name, results.aggregate())
    for failure in results.failures:
        print(f"  FAILED {failure.job_name}: {failure.error}")
    _write_trace(args, tracer)
    if not args.quiet:
        print(service.metrics.format())
    if args.output:
        save_json(results.to_dict(), args.output)
        print(f"wrote {len(results)} result summaries to {args.output}")
    return 1 if results.failures else 0


#: Default scheduler line-up of ``repro-rm profile``.
_PROFILE_SCHEDULERS = ("ex-mem", "mmkp-lr", "mmkp-mdf", "fixed")


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.api.session import Session
    from repro.exceptions import ReproError
    from repro.obs import (
        Tracer,
        chrome_trace,
        merge_chrome_traces,
        phase_summary,
        render_phase_table,
    )

    names = list(args.schedulers) if args.schedulers else list(_PROFILE_SCHEDULERS)
    unknown = [name for name in names if name not in SCHEDULERS]
    if unknown:
        print(
            f"error: unknown scheduler(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(SCHEDULERS))}",
            file=sys.stderr,
        )
        return 2
    try:
        if args.spec:
            base = ExperimentSpec.load(args.spec)
        else:
            base = ExperimentSpec(
                name=f"profile-{args.scenario.lower()}",
                workload=WorkloadSpec.scenario(args.scenario),
            )
        if args.engine:
            base = dataclasses.replace(base, engine=args.engine)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    profiles: dict = {}
    documents = []
    for index, name in enumerate(names):
        spec = dataclasses.replace(
            base, scheduler=dataclasses.replace(base.scheduler, name=name)
        )
        tracer = Tracer(name=name)
        try:
            with tracer:
                log = Session.from_spec(spec).run()
        except ReproError as error:
            print(f"error: {name}: {error}", file=sys.stderr)
            return 2
        profiles[name] = phase_summary(tracer.span_dicts())
        print(
            f"{name:10s} {len(log.outcomes)} requests, "
            f"acceptance {log.acceptance_rate * 100:5.1f} %, "
            f"energy {log.total_energy:7.2f} J, "
            f"{len(tracer)} spans"
        )
        if args.trace:
            # One Chrome-trace process per scheduler, so the merged view
            # shows the four runs side by side.
            documents.append(
                chrome_trace(tracer, pid=index + 1, process_name=name)
            )
    print()
    print(render_phase_table(profiles))
    if args.trace:
        save_json(merge_chrome_traces(documents), args.trace)
        print(
            f"wrote the merged trace of {len(documents)} runs to {args.trace} "
            "(load in Perfetto or chrome://tracing)"
        )
    return 0


def _motivational_energy_run(governor_name: str, power_cap, energy_budget):
    """Run both motivational scenarios under one governor; return the logs."""
    from repro.api.session import Session

    logs = []
    for scenario in ("S1", "S2"):
        spec = ExperimentSpec(
            name=f"motivational-{scenario.lower()}",
            workload=WorkloadSpec.scenario(scenario),
            energy=EnergySpec(
                governor=governor_name,
                power_cap_watts=power_cap,
                energy_budget_joules=energy_budget,
            ),
        )
        logs.append(Session.from_spec(spec).run())
    return logs


def _cmd_energy(args: argparse.Namespace) -> int:
    governors = sorted(GOVERNORS) if args.compare else [args.governor]
    report: dict = {"governor": args.governor, "totals": {}}
    failures = []

    if args.spec:
        base = _load_batch(args.spec)
        if base is None:
            return 2
        # One service for every governor replay, so --compare reuses the
        # activation cache across replays.  Cache keys are per-problem
        # signatures (job residuals included), so a hit returns a valid
        # schedule for the same problem; per the documented cache semantics
        # it may differ from the uncached run in heuristic tie-breaks —
        # pass --no-cache to force plain scheduler runs.
        service = _make_service(args)
        for governor in governors:
            # Only the flags the user actually passed override the spec's
            # per-job policies; the governor is this command's subject and
            # is always applied.
            overrides = {"governor": governor}
            if args.power_cap is not None:
                overrides["power_cap_watts"] = args.power_cap
            if args.energy_budget is not None:
                overrides["energy_budget_joules"] = args.energy_budget
            spec = base.with_energy_policy(**overrides)
            results = service.run_batch(spec)
            aggregate = results.aggregate()
            report["totals"][governor] = aggregate["total_energy"]
            # Failures of *every* governor replay count: a partially failed
            # replay would make the comparison apples-to-oranges.
            failures.extend((governor, failure) for failure in results.failures)
            if governor == args.governor:
                report["clusters"] = results.cluster_energy()
                report["aggregate"] = aggregate
                print(
                    f"batch {base.name}: {aggregate['traces']} traces, "
                    f"acceptance {aggregate['acceptance_rate'] * 100:.1f} %, "
                    f"{aggregate['budget_rejections']} budget rejections"
                )
                print(
                    format_energy_breakdown(
                        report["clusters"],
                        title=f"energy breakdown ({governor} governor)",
                    )
                )
    else:
        for governor in governors:
            logs = _motivational_energy_run(governor, args.power_cap, args.energy_budget)
            report["totals"][governor] = sum(log.total_energy for log in logs)
            if governor == args.governor:
                clusters: dict = {}
                for log in logs:
                    for name, entry in log.cluster_energy.items():
                        merged = clusters.setdefault(
                            name, {"busy": 0.0, "idle": 0.0, "total": 0.0}
                        )
                        for key in merged:
                            merged[key] += entry[key]
                report["clusters"] = clusters
                misses = sum(len(log.deadline_misses) for log in logs)
                print(f"motivational scenarios S1+S2, {misses} deadline misses")
                print(
                    format_energy_breakdown(
                        clusters, title=f"energy breakdown ({governor} governor)"
                    )
                )

    if args.compare:
        failed_by_governor = {}
        for governor, failure in failures:
            failed_by_governor[governor] = failed_by_governor.get(governor, 0) + 1
        print("total energy by governor:")
        for governor in governors:
            marker = " <- selected" if governor == args.governor else ""
            failed = failed_by_governor.get(governor, 0)
            note = f" ({failed} traces FAILED)" if failed else ""
            print(f"  {governor:16s} {report['totals'][governor]:10.3f} J{note}{marker}")
    for governor, failure in failures:
        print(f"  FAILED [{governor}] {failure.job_name}: {failure.error}")
    if args.output:
        save_json(report, args.output)
        print(f"wrote energy report to {args.output}")
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.gateway.server import GatewayConfig, serve

    config = GatewayConfig(
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        max_per_tenant=args.max_per_tenant,
        queue_timeout_s=args.queue_timeout,
        batch_workers=args.batch_workers,
        store_path=args.store,
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:
        # The daemon's own SIGINT handler drains before the loop exits;
        # this catches a second Ctrl-C pressed during the drain.
        pass
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from repro.store import resolve_store

    store = resolve_store(args.store)
    if store is None:
        print(
            "error: no store configured (pass --store PATH or set REPRO_STORE)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.action == "stats":
            stats = store.stats()
            if args.json:
                print(json.dumps(stats, indent=2, sort_keys=True))
                return 0
            print(f"store {stats['path'] or '(in memory)'} "
                  f"(version {stats['version']})")
            namespaces = stats["namespaces"]
            if not namespaces:
                print("  empty")
            for namespace, entry in sorted(namespaces.items()):
                print(f"  {namespace}: {entry['entries']} entries, "
                      f"{entry['bytes']} bytes")
            for kind, counters in sorted(stats["kinds"].items()):
                print(f"  [{kind}] hits {counters['hits']} "
                      f"(local {counters['local_hits']}), "
                      f"misses {counters['misses']}, puts {counters['puts']}")
        elif args.action == "gc":
            outcome = store.gc(max_entries_per_kind=args.max_entries)
            print(f"gc: dropped {outcome['dropped']} stale entries, "
                  f"trimmed {outcome['trimmed']}")
        else:
            store.clear()
            print("store cleared")
        return 0
    finally:
        store.close()


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.api.events import RunEvent, RunEventKind
    from repro.exceptions import ReproError
    from repro.gateway.client import GatewayClient, GatewayError

    try:
        spec = ExperimentSpec.load(args.spec)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.trials > 1 and args.stream:
        print("error: --stream applies to single runs, not --trials batches",
              file=sys.stderr)
        return 2

    client = GatewayClient(args.url, tenant=args.tenant)
    try:
        if args.trials > 1:
            record = client.submit_batch(
                spec,
                trials=args.trials,
                session=args.session,
                timeout_s=args.timeout,
            )
            status = client.wait_batch(record["id"])
            if status["state"] != "done":
                error = status.get("error", {})
                print(f"error: batch {record['id']} failed: "
                      f"{error.get('message', error)}", file=sys.stderr)
                return 1
            result = status["result"]
            _print_aggregate(spec.name, result["aggregate"])
            print(f"batch fingerprint {result['fingerprint']}")
        else:
            record = client.submit_run(
                spec, session=args.session, timeout_s=args.timeout
            )
            if args.stream:
                try:
                    for payload in client.events(record["id"]):
                        if payload.get("kind") in (
                            RunEventKind.END.value, "error"
                        ):
                            continue  # the final status below reports both
                        print(RunEvent.from_dict(payload), flush=True)
                except BrokenPipeError:
                    return _broken_pipe_exit()
                except KeyboardInterrupt:
                    print("interrupted (the run keeps going on the daemon; "
                          f"check it with GET /runs/{record['id']})",
                          file=sys.stderr)
                    return 130
            status = client.wait_run(record["id"])
            if status["state"] != "done":
                error = status.get("error", {})
                print(f"error: run {record['id']} failed: "
                      f"{error.get('message', error)}", file=sys.stderr)
                return 1
            result = status["result"]
            print(
                f"run {record['id']} ({spec.name}): "
                f"{result['requests']} requests, "
                f"acceptance {result['acceptance_rate'] * 100:.1f} %, "
                f"energy {result['total_energy']:.2f} J, "
                f"fingerprint {result['fingerprint']}"
            )
        if args.output:
            save_json(status, args.output)
            print(f"wrote gateway result to {args.output}")
        return 0
    except GatewayError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach gateway at {args.url}: {error}",
              file=sys.stderr)
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (also installed as the ``repro-rm`` script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "dse": _cmd_dse,
        "sweep": _cmd_sweep,
        "workload": _cmd_workload,
        "schedule": _cmd_schedule,
        "evaluate": _cmd_evaluate,
        "motivational": _cmd_motivational,
        "batch": _cmd_batch,
        "profile": _cmd_profile,
        "energy": _cmd_energy,
        "serve": _cmd_serve,
        "store": _cmd_store,
        "submit": _cmd_submit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
