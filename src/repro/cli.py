"""Command-line interface of the runtime-manager reproduction.

The CLI mirrors the typical usage of the library:

* ``repro-rm dse`` — run the design-space exploration and export the
  operating-point tables as JSON.
* ``repro-rm workload`` — generate the evaluation test suite (Table III
  census) and export it as JSON.
* ``repro-rm schedule`` — run one scheduler on one exported test case and
  print the resulting mapping segments.
* ``repro-rm evaluate`` — run the full comparison (Fig. 2, Table IV, Fig. 3,
  Fig. 4) on a down-scaled census and print the text reports.
* ``repro-rm motivational`` — reproduce the motivational example (Fig. 1).
* ``repro-rm batch`` — run a batch of online runtime-manager simulations
  described by a :class:`~repro.service.jobs.BatchSpec` JSON file through the
  concurrent :class:`~repro.service.pool.SimulationService` (worker fan-out,
  activation caching, service metrics); see :mod:`repro.service`.
* ``repro-rm energy`` — replay a batch (or the motivational trace) under a
  frequency governor and report the per-cluster energy breakdown; see
  :mod:`repro.energy`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import (
    evaluate_suite,
    format_energy_breakdown,
    format_fig2_scheduling_rate,
    format_fig3_scurve,
    format_fig4_search_time,
    format_table_iii,
    format_table_iv,
)
from repro.dse import paper_operating_points, reduced_tables
from repro.energy import GOVERNORS, EnergyBudget, build_governor
from repro.io import (
    load_json,
    save_json,
    tables_from_dict,
    tables_to_dict,
    test_case_from_dict,
    test_case_to_dict,
)
from repro.platforms import odroid_xu4
from repro.runtime import RuntimeManager
from repro.schedulers import (
    ExMemScheduler,
    FixedMinEnergyScheduler,
    MMKPLRScheduler,
    MMKPMDFScheduler,
)
from repro.service.jobs import SCHEDULERS
from repro.workload import EvaluationSuite
from repro.workload.motivational import (
    motivational_platform,
    motivational_tables,
    motivational_trace,
)
from repro.workload.suite import scaled_census, table_iii_census

# Scheduler registry shared with the batch service, so the names accepted by
# ``--scheduler`` and by BatchSpec JSON files can never drift apart.


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rm",
        description="Energy-efficient runtime resource management (DATE 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    dse = subparsers.add_parser("dse", help="generate operating-point tables")
    dse.add_argument("--output", default="operating_points.json", help="output JSON file")
    dse.add_argument(
        "--sizes", nargs="*", default=None, help="input sizes to include (default: all)"
    )
    dse.add_argument(
        "--sweep-opps",
        action="store_true",
        help="also sweep the DVFS operating points (adds a frequency column)",
    )

    workload = subparsers.add_parser("workload", help="generate the evaluation suite")
    workload.add_argument("--tables", default=None, help="operating-point JSON (default: run DSE)")
    workload.add_argument("--output", default="workload.json", help="output JSON file")
    workload.add_argument("--fraction", type=float, default=1.0, help="census scale factor")
    workload.add_argument("--seed", type=int, default=2020, help="generator seed")

    schedule = subparsers.add_parser("schedule", help="schedule one exported test case")
    schedule.add_argument("testcase", help="JSON file with one test case")
    schedule.add_argument("--tables", required=True, help="operating-point JSON")
    schedule.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="mmkp-mdf")

    evaluate = subparsers.add_parser("evaluate", help="run the full comparison")
    evaluate.add_argument("--fraction", type=float, default=0.05, help="census scale factor")
    evaluate.add_argument("--max-points", type=int, default=8, help="table size cap for EX-MEM")
    evaluate.add_argument("--seed", type=int, default=2020, help="workload seed")
    evaluate.add_argument(
        "--skip-exmem", action="store_true", help="skip the exhaustive reference scheduler"
    )

    subparsers.add_parser("motivational", help="reproduce the motivational example (Fig. 1)")

    batch = subparsers.add_parser(
        "batch",
        help="run a batch of online simulations from a BatchSpec JSON file",
        description=(
            "Run every simulation job of a BatchSpec file through the "
            "concurrent SimulationService: per-job seeding keeps results "
            "bit-identical for any worker count, repeated scheduler "
            "activations are served from the activation cache, and one "
            "failing trace does not abort the batch."
        ),
    )
    batch.add_argument("spec", help="BatchSpec JSON file (see repro.service.jobs)")
    batch.add_argument(
        "--workers", type=int, default=1, help="worker count for the fan-out"
    )
    batch.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default="auto",
        help="fan-out backend (auto: serial for one worker, threads otherwise)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable the activation cache"
    )
    batch.add_argument(
        "--cache-size", type=int, default=4096, help="activation cache capacity"
    )
    batch.add_argument(
        "--shard", default=None, metavar="I/N", help="run only shard I of N"
    )
    batch.add_argument("--output", default=None, help="write result summaries JSON")
    batch.add_argument(
        "--quiet", action="store_true", help="omit the service metrics block"
    )

    energy = subparsers.add_parser(
        "energy",
        help="per-cluster energy breakdown under a frequency governor",
        description=(
            "Replay a BatchSpec (or, without --spec, the motivational "
            "scenarios) with the chosen frequency governor and optional "
            "power-cap / energy-budget admission control, then report the "
            "per-cluster busy/idle energy breakdown the incremental "
            "EnergyMeter integrated online."
        ),
    )
    energy.add_argument(
        "--spec", default=None, help="BatchSpec JSON file (default: motivational trace)"
    )
    energy.add_argument(
        "--governor",
        choices=sorted(GOVERNORS),
        default="performance",
        help="frequency governor to run under",
    )
    energy.add_argument(
        "--compare",
        action="store_true",
        help="also print total energy under every other governor",
    )
    energy.add_argument(
        "--power-cap", type=float, default=None, metavar="WATTS",
        help="reject requests whose schedule would exceed this platform power",
    )
    energy.add_argument(
        "--energy-budget", type=float, default=None, metavar="JOULES",
        help="reject requests once the run would exceed this energy budget",
    )
    energy.add_argument(
        "--workers", type=int, default=1, help="worker count for batch replays"
    )
    energy.add_argument("--output", default=None, help="write the breakdown JSON")
    return parser


# ---------------------------------------------------------------------- #
# Sub-command implementations
# ---------------------------------------------------------------------- #
def _cmd_dse(args: argparse.Namespace) -> int:
    sizes = tuple(args.sizes) if args.sizes else None
    tables = paper_operating_points(input_sizes=sizes, sweep_opps=args.sweep_opps)
    save_json(tables_to_dict(tables), args.output)
    print(f"wrote {len(tables)} operating-point tables to {args.output}")
    for name, table in sorted(tables.items()):
        scales = {point.frequency_scale for point in table}
        note = f", {len(scales)} frequency scales" if len(scales) > 1 else ""
        print(f"  {name}: {len(table)} Pareto points{note}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    if args.tables:
        tables = tables_from_dict(load_json(args.tables))
    else:
        tables = paper_operating_points()
    census = table_iii_census() if args.fraction >= 1.0 else scaled_census(args.fraction)
    suite = EvaluationSuite.generate(tables, census, seed=args.seed)
    save_json(
        {"cases": [test_case_to_dict(case) for case in suite]},
        args.output,
    )
    print(format_table_iii(suite))
    print(f"wrote {len(suite)} test cases to {args.output}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    tables = tables_from_dict(load_json(args.tables))
    case = test_case_from_dict(load_json(args.testcase))
    problem = case.problem(odroid_xu4(), tables)
    scheduler = SCHEDULERS[args.scheduler]()
    result = scheduler.schedule(problem)
    if not result.feasible:
        print(f"{scheduler.name}: test case {case.name} rejected")
        return 1
    print(f"{scheduler.name}: energy {result.energy:.3f} J, "
          f"search time {result.search_time * 1000:.2f} ms")
    for segment in result.schedule:
        jobs = ", ".join(
            f"{m.job_name}:{m.config_index}" for m in segment
        )
        print(f"  [{segment.start:8.3f}, {segment.end:8.3f})  {jobs}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    platform = odroid_xu4()
    tables = reduced_tables(paper_operating_points(), max_points=args.max_points)
    suite = EvaluationSuite.generate(tables, scaled_census(args.fraction), seed=args.seed)
    schedulers = [MMKPLRScheduler(), MMKPMDFScheduler()]
    if not args.skip_exmem:
        schedulers.insert(0, ExMemScheduler())
    results = evaluate_suite(suite, platform, tables, schedulers)
    names = [s.name for s in schedulers]
    print(format_table_iii(suite))
    print()
    print(format_fig2_scheduling_rate(results, names))
    print()
    if not args.skip_exmem:
        print(format_table_iv(results, ["mmkp-lr", "mmkp-mdf"], "ex-mem"))
        print()
        print(format_fig3_scurve(results, ["mmkp-lr", "mmkp-mdf"], "ex-mem"))
        print()
    print(format_fig4_search_time(results, names))
    return 0


def _cmd_motivational(args: argparse.Namespace) -> int:
    platform = motivational_platform()
    tables = motivational_tables()
    for scenario in ("S1", "S2"):
        trace = motivational_trace(scenario)
        print(f"Scenario {scenario}")
        variants = [
            ("fixed mapper, remap at start", FixedMinEnergyScheduler(), False),
            ("fixed mapper, remap at start+finish", FixedMinEnergyScheduler(), True),
            ("adaptive mapper (MMKP-MDF)", MMKPMDFScheduler(), False),
        ]
        for label, scheduler, remap in variants:
            manager = RuntimeManager(platform, tables, scheduler, remap_on_finish=remap)
            log = manager.run(trace)
            print(
                f"  {label:38s} energy = {log.total_energy:6.2f} J, "
                f"acceptance = {log.acceptance_rate * 100:5.1f} %"
            )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.exceptions import SerializationError, WorkloadError
    from repro.service import BatchSpec, SimulationService

    try:
        spec = BatchSpec.load(args.spec)
        if args.shard:
            try:
                index, count = (int(part) for part in args.shard.split("/"))
            except ValueError:
                print(f"invalid --shard {args.shard!r}; expected I/N", file=sys.stderr)
                return 2
            spec = spec.shard(index, count)
        service = SimulationService(
            workers=args.workers,
            executor=args.executor,
            use_cache=not args.no_cache,
            cache_size=args.cache_size,
        )
    except (SerializationError, WorkloadError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    results = service.run_batch(spec)
    aggregate = results.aggregate()
    print(
        f"batch {spec.name}: {aggregate['traces']} traces "
        f"({aggregate['failed']} failed), "
        f"{aggregate['requests']} requests, "
        f"acceptance {aggregate['acceptance_rate'] * 100:.1f} %, "
        f"energy {aggregate['total_energy']:.2f} J, "
        f"{aggregate['activations']} activations"
    )
    for failure in results.failures:
        print(f"  FAILED {failure.job_name}: {failure.error}")
    if not args.quiet:
        print(service.metrics.format())
    if args.output:
        save_json(results.to_dict(), args.output)
        print(f"wrote {len(results)} result summaries to {args.output}")
    return 1 if results.failures else 0


def _motivational_energy_run(governor_name: str, power_cap, energy_budget):
    """Run both motivational scenarios under one governor; return the logs."""
    platform = motivational_platform()
    tables = motivational_tables()
    budget = None
    if power_cap is not None or energy_budget is not None:
        budget = EnergyBudget(
            power_cap_watts=power_cap, energy_budget_joules=energy_budget
        )
    logs = []
    for scenario in ("S1", "S2"):
        manager = RuntimeManager(
            platform,
            tables,
            MMKPMDFScheduler(),
            governor=build_governor(governor_name),
            budget=budget,
        )
        logs.append(manager.run(motivational_trace(scenario)))
    return logs


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.exceptions import SerializationError, WorkloadError
    from repro.service import BatchSpec, SimulationService

    governors = sorted(GOVERNORS) if args.compare else [args.governor]
    report: dict = {"governor": args.governor, "totals": {}}
    failures = []

    if args.spec:
        try:
            base = BatchSpec.load(args.spec)
        except (SerializationError, WorkloadError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        for governor in governors:
            # Only the flags the user actually passed override the spec's
            # per-job policies; the governor is this command's subject and
            # is always applied.
            overrides = {"governor": governor}
            if args.power_cap is not None:
                overrides["power_cap_watts"] = args.power_cap
            if args.energy_budget is not None:
                overrides["energy_budget_joules"] = args.energy_budget
            spec = base.with_energy_policy(**overrides)
            service = SimulationService(workers=args.workers)
            results = service.run_batch(spec)
            aggregate = results.aggregate()
            report["totals"][governor] = aggregate["total_energy"]
            # Failures of *every* governor replay count: a partially failed
            # replay would make the comparison apples-to-oranges.
            failures.extend((governor, failure) for failure in results.failures)
            if governor == args.governor:
                report["clusters"] = results.cluster_energy()
                report["aggregate"] = aggregate
                print(
                    f"batch {base.name}: {aggregate['traces']} traces, "
                    f"acceptance {aggregate['acceptance_rate'] * 100:.1f} %, "
                    f"{aggregate['budget_rejections']} budget rejections"
                )
                print(
                    format_energy_breakdown(
                        report["clusters"],
                        title=f"energy breakdown ({governor} governor)",
                    )
                )
    else:
        for governor in governors:
            logs = _motivational_energy_run(governor, args.power_cap, args.energy_budget)
            report["totals"][governor] = sum(log.total_energy for log in logs)
            if governor == args.governor:
                clusters: dict = {}
                for log in logs:
                    for name, entry in log.cluster_energy.items():
                        merged = clusters.setdefault(
                            name, {"busy": 0.0, "idle": 0.0, "total": 0.0}
                        )
                        for key in merged:
                            merged[key] += entry[key]
                report["clusters"] = clusters
                misses = sum(len(log.deadline_misses) for log in logs)
                print(f"motivational scenarios S1+S2, {misses} deadline misses")
                print(
                    format_energy_breakdown(
                        clusters, title=f"energy breakdown ({governor} governor)"
                    )
                )

    if args.compare:
        failed_by_governor = {}
        for governor, failure in failures:
            failed_by_governor[governor] = failed_by_governor.get(governor, 0) + 1
        print("total energy by governor:")
        for governor in governors:
            marker = " <- selected" if governor == args.governor else ""
            failed = failed_by_governor.get(governor, 0)
            note = f" ({failed} traces FAILED)" if failed else ""
            print(f"  {governor:16s} {report['totals'][governor]:10.3f} J{note}{marker}")
    for governor, failure in failures:
        print(f"  FAILED [{governor}] {failure.job_name}: {failure.error}")
    if args.output:
        save_json(report, args.output)
        print(f"wrote energy report to {args.output}")
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (also installed as the ``repro-rm`` script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "dse": _cmd_dse,
        "workload": _cmd_workload,
        "schedule": _cmd_schedule,
        "evaluate": _cmd_evaluate,
        "motivational": _cmd_motivational,
        "batch": _cmd_batch,
        "energy": _cmd_energy,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
