"""Process-to-core mappings and the trace-driven mapping simulator.

This package is the design-time substrate the paper obtains by benchmarking on
real hardware: given a dataflow application, a platform and a concrete
process-to-core mapping, it estimates the execution time and the energy of one
full application run.  The design-space exploration in :mod:`repro.dse` uses
it to derive the operating-point tables consumed by the runtime manager.
"""

from repro.mapping.mapping import Core, ProcessMapping
from repro.mapping.allocate import allocation_cores, balance_processes
from repro.mapping.simulate import MappingSimulator, SimulationResult

__all__ = [
    "Core",
    "ProcessMapping",
    "allocation_cores",
    "balance_processes",
    "MappingSimulator",
    "SimulationResult",
]
