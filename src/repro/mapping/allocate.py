"""Core allocation and load-balancing heuristics.

The DSE explores *allocations* — how many cores of each type an application
gets — and for every allocation it needs a concrete process-to-core mapping.
We use the classic Longest Processing Time (LPT) heuristic on processing
*time* (reference cycles divided by the speed of the candidate core), which is
the standard way to balance a KPN across a heterogeneous core set.
"""

from __future__ import annotations

from typing import Sequence

from repro.dataflow.graph import KPNGraph
from repro.exceptions import MappingError
from repro.mapping.mapping import Core, ProcessMapping
from repro.platforms.platform import Platform
from repro.platforms.resources import ResourceVector


def allocation_cores(
    platform: Platform, allocation: Sequence[int] | ResourceVector
) -> list[Core]:
    """Materialise an allocation vector into concrete core instances.

    Parameters
    ----------
    platform:
        The target platform.
    allocation:
        Number of cores per resource type; must fit into the platform.

    Examples
    --------
    >>> from repro.platforms import odroid_xu4
    >>> [c.name for c in allocation_cores(odroid_xu4(), [1, 2])]
    ['A7.0', 'A15.0', 'A15.1']
    """
    vector = (
        allocation
        if isinstance(allocation, ResourceVector)
        else ResourceVector(allocation)
    )
    if len(vector) != platform.num_resource_types:
        raise MappingError(
            f"allocation has {len(vector)} entries, platform has "
            f"{platform.num_resource_types} resource types"
        )
    if not vector.fits_into(platform.capacity):
        raise MappingError(
            f"allocation {vector.counts} exceeds platform capacity "
            f"{platform.capacity.counts}"
        )
    cores: list[Core] = []
    for type_index, count in enumerate(vector):
        ptype = platform.processor_types[type_index]
        cores.extend(Core(ptype, core_index) for core_index in range(count))
    return cores


def balance_processes(
    graph: KPNGraph, platform: Platform, cores: Sequence[Core]
) -> ProcessMapping:
    """Map the processes of ``graph`` onto ``cores`` with the LPT heuristic.

    Processes are considered in decreasing order of their reference cycles;
    each is placed on the core whose finish time (current load plus the
    process's execution time on that core) is smallest.  Faster cores
    therefore attract the heavy processes first, which matches how the
    original applications were parallelised on big.LITTLE.
    """
    if not cores:
        raise MappingError("cannot balance processes over an empty core set")

    loads = {core.name: 0.0 for core in cores}
    core_by_name = {core.name: core for core in cores}
    assignment: dict[str, Core] = {}

    for process in sorted(graph.processes, key=lambda p: p.cycles, reverse=True):
        best_core_name = None
        best_finish = float("inf")
        for core in cores:
            execution = core.processor_type.cycles_to_seconds(process.cycles)
            finish = loads[core.name] + execution
            if finish < best_finish - 1e-15:
                best_finish = finish
                best_core_name = core.name
        assignment[process.name] = core_by_name[best_core_name]
        loads[best_core_name] = best_finish

    return ProcessMapping(graph, platform, assignment)
