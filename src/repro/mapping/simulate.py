"""Trace-driven mapping simulator.

Given a process-to-core mapping and the per-process traces, the simulator
replays the application iteration by iteration: within an iteration every core
executes its processes' trace segments back to back, inter-core channel
traffic adds communication latency, and the iteration completes when the
slowest core (plus its communication) is done — the usual self-timed execution
model for KPN applications where every process works throughout the run (the
paper assumes all threads progress at a constant rate in a fixed
configuration).

Energy combines three parts: busy energy of the cores while they compute, idle
energy of allocated-but-waiting cores for the rest of the iteration, and a
per-byte energy charge for inter-core communication.  This substitutes the
power-analyzer measurements of the paper; the resulting numbers exhibit the
same qualitative big/little trade-offs as Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.dataflow.trace import ProcessTrace, TraceGenerator
from repro.exceptions import MappingError
from repro.mapping.mapping import ProcessMapping

#: Default DRAM/interconnect bandwidth used for inter-core channel traffic.
DEFAULT_BANDWIDTH_BYTES_PER_S = 800.0e6
#: Default energy cost of moving one byte between two cores.
DEFAULT_ENERGY_PER_BYTE = 0.3e-9


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one full application run under a mapping.

    Attributes
    ----------
    execution_time:
        Estimated wall-clock time of a full run in seconds.
    energy:
        Estimated energy of a full run in joules.
    core_busy_time:
        Per-core busy seconds (keyed by core name).
    communication_bytes:
        Total bytes moved between distinct cores.
    """

    execution_time: float
    energy: float
    core_busy_time: Mapping[str, float]
    communication_bytes: float

    @property
    def average_power(self) -> float:
        """Average power in watts over the run."""
        return self.energy / self.execution_time if self.execution_time > 0 else 0.0


class MappingSimulator:
    """Estimate execution time and energy of process-to-core mappings.

    Parameters
    ----------
    trace_generator:
        Generator used to synthesise per-process traces when the caller does
        not supply measured traces.
    bandwidth_bytes_per_s:
        Inter-core channel bandwidth.
    energy_per_byte:
        Energy charge per inter-core byte.

    Examples
    --------
    >>> from repro.dataflow import audio_filter
    >>> from repro.platforms import odroid_xu4
    >>> from repro.mapping import allocation_cores, balance_processes
    >>> platform = odroid_xu4()
    >>> graph = audio_filter().graph
    >>> mapping = balance_processes(graph, platform, allocation_cores(platform, [0, 2]))
    >>> result = MappingSimulator().simulate(mapping)
    >>> result.execution_time > 0
    True
    """

    def __init__(
        self,
        trace_generator: TraceGenerator | None = None,
        bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH_BYTES_PER_S,
        energy_per_byte: float = DEFAULT_ENERGY_PER_BYTE,
    ):
        if bandwidth_bytes_per_s <= 0:
            raise MappingError("bandwidth must be positive")
        if energy_per_byte < 0:
            raise MappingError("energy per byte must be non-negative")
        self._trace_generator = trace_generator or TraceGenerator()
        self._bandwidth = bandwidth_bytes_per_s
        self._energy_per_byte = energy_per_byte

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        mapping: ProcessMapping,
        traces: Mapping[str, ProcessTrace] | None = None,
    ) -> SimulationResult:
        """Simulate one full run of the mapped application.

        Parameters
        ----------
        mapping:
            The process-to-core mapping to evaluate.
        traces:
            Optional measured traces; synthetic traces are generated when
            omitted.
        """
        graph = mapping.graph
        if traces is None:
            traces = self._trace_generator.generate(graph)
        missing = set(graph.process_names) - set(traces)
        if missing:
            raise MappingError(f"traces missing for processes: {sorted(missing)}")

        iterations = min(len(traces[name]) for name in graph.process_names)
        cores = mapping.used_cores()
        busy_time = {core.name: 0.0 for core in cores}
        total_time = 0.0
        communication_bytes = 0.0
        communication_time_total = 0.0

        # Hoist the per-process placement out of the iteration loop: the DSE
        # simulates thousands of mappings per sweep, and the core / processor
        # type / trace-segment lookups are iteration-invariant.  The same
        # holds for the inter-core channel traffic — identical in every
        # iteration — so its bytes are derived once and accumulated per
        # iteration in the seed's order (the floats are unchanged).
        placements = [
            (
                mapping.core_of(process_name).name,
                mapping.core_of(process_name).processor_type,
                traces[process_name].segments,
            )
            for process_name in graph.process_names
        ]
        iteration_bytes = 0.0
        for channel in graph.channels:
            if mapping.core_of(channel.source).name == mapping.core_of(channel.target).name:
                continue
            iteration_bytes += channel.bytes_transferred / iterations
        communication_time = iteration_bytes / self._bandwidth

        for iteration in range(iterations):
            # Compute load of every core in this iteration.
            iteration_load = {core.name: 0.0 for core in cores}
            for core_name, processor_type, segments in placements:
                seconds = processor_type.cycles_to_seconds(segments[iteration].cycles)
                iteration_load[core_name] += seconds
                busy_time[core_name] += seconds

            communication_bytes += iteration_bytes
            communication_time_total += communication_time

            # Self-timed execution: the iteration ends when the most loaded
            # core has finished and the data has been moved.
            total_time += max(iteration_load.values()) + communication_time

        energy = self._energy(mapping, busy_time, total_time, communication_bytes)
        return SimulationResult(
            execution_time=total_time,
            energy=energy,
            core_busy_time=busy_time,
            communication_bytes=communication_bytes,
        )

    # ------------------------------------------------------------------ #
    # Energy model
    # ------------------------------------------------------------------ #
    def _energy(
        self,
        mapping: ProcessMapping,
        busy_time: Mapping[str, float],
        total_time: float,
        communication_bytes: float,
    ) -> float:
        """Busy + idle energy of the allocated cores plus communication energy."""
        energy = 0.0
        for core in mapping.used_cores():
            busy = min(busy_time[core.name], total_time)
            idle = max(0.0, total_time - busy)
            energy += core.processor_type.busy_energy(busy)
            energy += core.processor_type.idle_energy(idle)
        energy += communication_bytes * self._energy_per_byte
        return energy
