"""Process-to-core mapping representation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.dataflow.graph import KPNGraph
from repro.exceptions import MappingError
from repro.platforms.platform import Platform
from repro.platforms.processor import ProcessorType
from repro.platforms.resources import ResourceVector


@dataclass(frozen=True)
class Core:
    """One physical core instance of a platform.

    Parameters
    ----------
    processor_type:
        The core's type (defines speed and power).
    index:
        Index of the core within its type (0-based).
    """

    processor_type: ProcessorType
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise MappingError("core index must be non-negative")

    @property
    def name(self) -> str:
        """Unique name, e.g. ``"A15.2"``."""
        return f"{self.processor_type.name}.{self.index}"

    def __repr__(self) -> str:
        return f"Core({self.name})"


class ProcessMapping:
    """A full mapping of every process of a KPN graph to one core.

    Parameters
    ----------
    graph:
        The mapped application.
    platform:
        The target platform (used to validate core identities and to compute
        the resource-demand vector).
    assignment:
        Process name → :class:`Core`.

    Examples
    --------
    >>> from repro.dataflow import audio_filter
    >>> from repro.platforms import odroid_xu4
    >>> from repro.mapping import allocation_cores, balance_processes
    >>> platform = odroid_xu4()
    >>> graph = audio_filter().graph
    >>> cores = allocation_cores(platform, [2, 1])
    >>> mapping = balance_processes(graph, platform, cores)
    >>> mapping.demand.counts
    (2, 1)
    """

    def __init__(
        self,
        graph: KPNGraph,
        platform: Platform,
        assignment: Mapping[str, Core],
    ):
        self._graph = graph
        self._platform = platform
        self._assignment = dict(assignment)

        missing = set(graph.process_names) - set(self._assignment)
        if missing:
            raise MappingError(f"processes without a core: {sorted(missing)}")
        unknown = set(self._assignment) - set(graph.process_names)
        if unknown:
            raise MappingError(f"mapping references unknown processes: {sorted(unknown)}")
        for process_name, core in self._assignment.items():
            type_names = platform.type_names
            if core.processor_type.name not in type_names:
                raise MappingError(
                    f"process {process_name!r} mapped to unknown core type "
                    f"{core.processor_type.name!r}"
                )
            count = platform.core_counts[platform.type_index(core.processor_type.name)]
            if core.index >= count:
                raise MappingError(
                    f"process {process_name!r} mapped to {core.name} but the platform "
                    f"only has {count} cores of that type"
                )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> KPNGraph:
        """The mapped application graph."""
        return self._graph

    @property
    def platform(self) -> Platform:
        """The target platform."""
        return self._platform

    @property
    def assignment(self) -> dict[str, Core]:
        """Process name → core (a copy)."""
        return dict(self._assignment)

    def core_of(self, process_name: str) -> Core:
        """The core the named process runs on."""
        try:
            return self._assignment[process_name]
        except KeyError:
            raise MappingError(f"no core assigned to process {process_name!r}") from None

    def used_cores(self) -> list[Core]:
        """The distinct cores that host at least one process."""
        seen: dict[str, Core] = {}
        for core in self._assignment.values():
            seen.setdefault(core.name, core)
        return sorted(seen.values(), key=lambda c: c.name)

    def processes_on(self, core: Core) -> list[str]:
        """Names of the processes hosted by ``core``."""
        return sorted(
            name for name, assigned in self._assignment.items() if assigned.name == core.name
        )

    @property
    def demand(self) -> ResourceVector:
        """Cores used per resource type (the :math:`\\vec{\\theta}` of an operating point)."""
        counts = [0] * self._platform.num_resource_types
        for core in self.used_cores():
            counts[self._platform.type_index(core.processor_type.name)] += 1
        return ResourceVector(counts)

    def __repr__(self) -> str:
        return (
            f"ProcessMapping({self._graph.name!r} -> {self._platform.name!r}, "
            f"demand={self.demand.counts})"
        )


def cores_of_platform(platform: Platform) -> list[Core]:
    """Enumerate every physical core of a platform."""
    cores = []
    for type_index, ptype in enumerate(platform.processor_types):
        for index in range(platform.core_counts[type_index]):
            cores.append(Core(ptype, index))
    return cores
