"""The online runtime manager (RM).

The manager owns the platform and the design-time operating-point tables,
receives request arrivals from a :class:`~repro.runtime.trace.RequestTrace`
and drives one of the schedulers:

* On every arrival it advances simulated time to the arrival instant
  (executing the current schedule, tracking job progress and energy), builds a
  :class:`~repro.core.problem.SchedulingProblem` with all unfinished jobs plus
  the new one and activates the scheduler.  If a feasible schedule is found
  the request is admitted and the schedule replaced; otherwise the new request
  is rejected and the previous schedule remains in force — exactly the
  admission policy described in Section IV of the paper.
* Optionally it also re-activates the scheduler whenever a job finishes
  (``remap_on_finish=True``), which is how the "fixed mapper with remapping at
  application start and finish" of Fig. 1(b) behaves.

Two time-advance engines are available.  The default ``"events"`` engine
drives the simulation from a heap-based
:class:`~repro.service.events.EventQueue`: arrivals and segment boundaries
become events (job finishes coincide with the end of the job's last segment,
so boundary events cover them), and picking the next time step costs
``O(log n)``.
The ``"linear"`` engine reproduces the seed implementation's outer loop
(advance to each arrival in trace order); both engines share the execution
primitives and produce identical :class:`~repro.runtime.log.ExecutionLog`
contents, which the equivalence tests assert.

All per-run state lives in a private run context, so ``run()`` itself is
reentrant and one manager instance can be shared across concurrent callers —
*provided the scheduler is*.  The scheduler instance is shared between runs,
and some schedulers keep per-solve state on ``self`` (EX-MEM's memo tables,
for example), so concurrent runs are only safe with stateless or thread-safe
schedulers such as MMKP-MDF;
:class:`~repro.service.pool.SimulationService` side-steps this by building a
fresh scheduler instance per simulation job.

The result of a run is an :class:`~repro.runtime.log.ExecutionLog` with the
admission decisions, the executed timeline and the total consumed energy.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Mapping

import inspect

from repro.api.events import RunEvent, RunEventKind
from repro.core.config import ConfigTable
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.core.segment import MappingSegment, Schedule
from repro.energy.accounting import EnergyMeter
from repro.energy.budget import EnergyBudget
from repro.energy.governor import FrequencyGovernor, stretch_schedule
from repro.energy.opp import OPPDecision, decide, ensure_opps
from repro.exceptions import AdmissionError, SchedulingError
from repro.kernel.caches import KernelCaches
from repro.kernel.pipeline import AdmissionPipeline, KernelRun
from repro.kernel.runtime import kernel_enabled
from repro.kernel.state import LoadLedger
from repro.obs import tracer as obs
from repro.optable.adapters import optables_for
from repro.optable.runtime import columnar_enabled
from repro.platforms.platform import Platform
from repro.platforms.resources import ResourceVector
from repro.runtime.log import ExecutedInterval, ExecutionLog, RequestOutcome
from repro.runtime.trace import RequestEvent, RequestTrace
from repro.schedulers.base import Scheduler
from repro.service.events import Event, EventKind, EventQueue

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.api.spec import ExperimentSpec

#: Remaining-ratio threshold below which a job counts as completed.
_FINISH_TOLERANCE = 1e-6
_TIME_EPSILON = 1e-9

#: The supported time-advance engines.
ENGINES = ("events", "linear")
#: Speeds within this tolerance of 1.0 leave the schedule unstretched.
_SCALE_EPSILON = 1e-9


@dataclass(frozen=True)
class _Plan:
    """A schedule ready to commit plus the DVFS state it executes under."""

    schedule: Schedule
    speed: float = 1.0
    decision: OPPDecision | None = None


@dataclass
class _RunContext:
    """All mutable state of one simulation run.

    Keeping the state here (instead of on the manager) makes
    :meth:`RuntimeManager.run` reentrant: a single manager instance can be
    shared by concurrent workers, each run owning its private context.
    """

    now: float = 0.0
    active: dict[str, Job] = field(default_factory=dict)
    schedule: Schedule = field(default_factory=Schedule)
    #: Index of the first committed segment that may still execute.  The
    #: cursor only moves forward and is reset when a schedule is committed,
    #: making the next-segment lookup O(1) amortised instead of the seed's
    #: O(n) rescan per advance.
    cursor: int = 0
    #: Schedule generation counter used to lazily invalidate queued
    #: segment-boundary events after a new schedule is committed.
    epoch: int = 0
    queue: EventQueue | None = None
    log: ExecutionLog = field(default_factory=ExecutionLog)
    completions: dict[str, float] = field(default_factory=dict)
    request_info: dict[str, RequestEvent] = field(default_factory=dict)
    admissions: dict[str, tuple[bool, float]] = field(default_factory=dict)
    #: Incremental energy accounting (None when disabled).
    meter: EnergyMeter | None = None
    #: Uniform execution speed of the committed schedule (1.0 = nominal).
    speed: float = 1.0
    #: Per-cluster OPPs in force; ``None`` selects the seed's table-energy
    #: accounting, an :class:`OPPDecision` selects analytical accounting.
    decision: OPPDecision | None = None
    #: Streaming observer for this run (``None`` = no observation).  Events
    #: describe transitions the manager performs anyway, so observed and
    #: unobserved runs produce bit-identical logs.
    observer: Callable[[RunEvent], None] | None = None
    #: Incremental-kernel context of this run (``None`` when the kernel is
    #: disabled, i.e. ``REPRO_KERNEL=0`` or non-columnar mode): shared
    #: warm-start caches, the explicit schedule state and delta counters.
    kernel: KernelRun | None = None


class RuntimeManager:
    """Event-driven runtime manager simulation.

    Parameters
    ----------
    platform:
        The platform (or a bare capacity vector).
    tables:
        Application name → configuration table (the design-time data).
    scheduler:
        The scheduling algorithm activated on arrivals (and finishes).
    remap_on_finish:
        Re-activate the scheduler whenever a job completes.  The adaptive
        schedulers do not need this (their schedules already cover the whole
        horizon); the fixed mapper of Fig. 1(b) does.
    engine:
        Default time-advance engine: ``"events"`` (heap-based event queue) or
        ``"linear"`` (the seed's arrival-by-arrival loop).  Both produce the
        same execution log; ``run()`` may override the choice per call.
    governor:
        Optional :class:`~repro.energy.governor.FrequencyGovernor`.  When
        set, every schedule commit picks a uniform platform speed from the
        platform's OPP ladders (synthetic default ladders are attached if
        the platform has none), stretches the committed schedule
        accordingly, and energy is integrated analytically from the
        per-core power models at the selected OPPs.  Requires a full
        :class:`Platform`.  ``None`` (the default) keeps the seed's
        pinned-frequency behaviour bit-identical.
    budget:
        Optional :class:`~repro.energy.budget.EnergyBudget`.  A request
        whose feasible schedule would violate the power cap or energy
        budget is rejected exactly like an infeasible one.
    account_energy:
        Feed every executed interval into an incremental
        :class:`~repro.energy.accounting.EnergyMeter`, filling
        ``ExecutionLog.cluster_energy`` / ``job_energy``.  Accounting never
        changes the logged totals in the default mode; disable it only to
        shave the last few percent off simulation hot loops.

    Construction
    ------------
    :meth:`from_components` is the canonical programmatic constructor and
    :meth:`from_spec` builds a manager straight from a declarative
    :class:`~repro.api.spec.ExperimentSpec` (most callers should go through
    :class:`repro.api.Session` instead).  The historical keyword form
    ``RuntimeManager(platform, tables, scheduler, ...)`` still works and
    produces bit-identical logs, but emits a :class:`DeprecationWarning`.

    Examples
    --------
    >>> from repro.schedulers import MMKPMDFScheduler
    >>> from repro.workload.motivational import motivational_platform, motivational_tables
    >>> from repro.runtime import RequestEvent, RequestTrace
    >>> manager = RuntimeManager.from_components(
    ...     motivational_platform(), motivational_tables(), MMKPMDFScheduler())
    >>> trace = RequestTrace([RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
    ...                       RequestEvent(1.0, "lambda2", 4.0, "sigma2")])
    >>> log = manager.run(trace)
    >>> log.acceptance_rate
    1.0
    """

    def __init__(
        self,
        platform: Platform | ResourceVector,
        tables: Mapping[str, ConfigTable],
        scheduler: Scheduler,
        remap_on_finish: bool = False,
        engine: str = "events",
        governor: FrequencyGovernor | None = None,
        budget: EnergyBudget | None = None,
        account_energy: bool = True,
    ):
        warnings.warn(
            "direct RuntimeManager(...) construction is deprecated; use "
            "RuntimeManager.from_components(...), RuntimeManager.from_spec(spec) "
            "or repro.api.Session",
            DeprecationWarning,
            stacklevel=2,
        )
        self._configure(
            platform,
            tables,
            scheduler,
            remap_on_finish=remap_on_finish,
            engine=engine,
            governor=governor,
            budget=budget,
            account_energy=account_energy,
        )

    @classmethod
    def from_components(
        cls,
        platform: Platform | ResourceVector,
        tables: Mapping[str, ConfigTable],
        scheduler: Scheduler,
        *,
        remap_on_finish: bool = False,
        engine: str = "events",
        governor: FrequencyGovernor | None = None,
        budget: EnergyBudget | None = None,
        account_energy: bool = True,
        kernel_caches: KernelCaches | None = None,
    ) -> "RuntimeManager":
        """Build a manager from live components (the canonical constructor).

        ``kernel_caches`` optionally injects a shared
        :class:`~repro.kernel.caches.KernelCaches` so several managers (the
        batch service's per-job managers, a DSE sweep) pool their
        content-keyed warm starts; by default each manager owns one.
        """
        manager = cls.__new__(cls)
        manager._configure(
            platform,
            tables,
            scheduler,
            remap_on_finish=remap_on_finish,
            engine=engine,
            governor=governor,
            budget=budget,
            account_energy=account_energy,
            kernel_caches=kernel_caches,
        )
        return manager

    @classmethod
    def from_spec(
        cls,
        spec: "ExperimentSpec",
        *,
        platform: Platform | ResourceVector | None = None,
        tables: Mapping[str, ConfigTable] | None = None,
        scheduler: Scheduler | None = None,
        kernel_caches: KernelCaches | None = None,
    ) -> "RuntimeManager":
        """Build a manager from a declarative :class:`ExperimentSpec`.

        ``platform``/``tables``/``scheduler`` short-circuit the spec's
        registry lookups when the caller already materialised them (the
        :class:`~repro.api.session.Session` cache, or a
        :class:`~repro.service.cache.CachingScheduler` wrapper);
        ``kernel_caches`` shares the caller's incremental-kernel warm
        starts across the managers it builds.
        """
        if platform is None:
            platform = spec.platform.build()
        if tables is None:
            tables = spec.resolve_tables(platform)
        if scheduler is None:
            scheduler = spec.scheduler.build()
        return cls.from_components(
            platform,
            tables,
            scheduler,
            remap_on_finish=spec.scheduler.remap_on_finish,
            engine=spec.engine,
            governor=spec.energy.build_governor(),
            budget=spec.energy.build_budget(),
            account_energy=spec.energy.account_energy,
            kernel_caches=kernel_caches,
        )

    def _configure(
        self,
        platform: Platform | ResourceVector,
        tables: Mapping[str, ConfigTable],
        scheduler: Scheduler,
        *,
        remap_on_finish: bool,
        engine: str,
        governor: FrequencyGovernor | None,
        budget: EnergyBudget | None,
        account_energy: bool,
        kernel_caches: KernelCaches | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise SchedulingError(
                f"unknown time-advance engine {engine!r}; choose from {ENGINES}"
            )
        self._capacity = (
            platform.capacity if isinstance(platform, Platform) else platform
        )
        self._platform = platform if isinstance(platform, Platform) else None
        if governor is not None:
            if self._platform is None:
                raise SchedulingError(
                    "a frequency governor needs a full Platform, "
                    "not a bare capacity vector"
                )
            self._platform = ensure_opps(self._platform)
        self._tables = dict(tables)
        if governor is not None:
            # DVFS-swept tables already embody a frequency choice per point;
            # stretching them again with a runtime governor would double-apply
            # the slow-down and misprice energy.  Swept tables are for offline
            # analysis and governor-free managers (where picking a slow point
            # *is* the DVFS decision).
            for name, table in self._tables.items():
                if any(point.frequency_scale != 1.0 for point in table):
                    raise SchedulingError(
                        f"table {name!r} contains DVFS-swept operating points "
                        f"(frequency_scale != 1); a frequency governor needs "
                        f"nominal-frequency tables"
                    )
        # Interned columnar twins of the design-time tables: one build per
        # manager (shared process-wide via fingerprints), consumed by the
        # execution hot loop instead of per-interval point lookups.
        self._optables = optables_for(self._tables)
        self._scheduler = scheduler
        self._remap_on_finish = remap_on_finish
        self._engine = engine
        self._governor = governor
        self._budget = None if budget is not None and budget.unconstrained else budget
        self._account_energy = account_energy
        # Incremental-kernel plumbing: one admission pipeline per manager and
        # one warm-start cache store (shared across this manager's runs; a
        # batch service may inject its own to share across jobs).
        self._pipeline = AdmissionPipeline(self)
        if kernel_caches is None:
            kernel_caches = KernelCaches()
        self._kernel_caches = kernel_caches
        self._governor_takes_ledger = governor is not None and (
            "ledger" in inspect.signature(governor.select_scale).parameters
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        trace: RequestTrace,
        engine: str | None = None,
        observer: Callable[[RunEvent], None] | None = None,
    ) -> ExecutionLog:
        """Simulate the runtime manager over a full request trace.

        Parameters
        ----------
        trace:
            The request arrivals to simulate.
        engine:
            Override the manager's default time-advance engine for this run.
        observer:
            Optional callback receiving a :class:`~repro.api.events.RunEvent`
            for every arrival, admission decision, schedule commit, executed
            interval and job finish, plus a final ``END`` event carrying the
            completed log.  Observation never changes the simulation.
        """
        engine = self._engine if engine is None else engine
        if engine not in ENGINES:
            raise SchedulingError(
                f"unknown time-advance engine {engine!r}; choose from {ENGINES}"
            )
        ctx = _RunContext(observer=observer)
        if self._account_energy or self._governor is not None:
            ctx.meter = EnergyMeter(self._platform)
        if self._governor is not None:
            # Even before the first commit the platform idles at nominal
            # frequency; analytical accounting starts from that decision.
            ctx.decision = decide(self._platform, 1.0)
        if kernel_enabled() and columnar_enabled():
            ctx.kernel = KernelRun(
                self._kernel_caches,
                self._kernel_caches.shared_slices(self._capacity, self._tables),
            )
            # Immediately before the try whose finally releases it, so a
            # failing run can never leave the scheduler's adoption dangling.
            self._scheduler.begin_run(ctx.kernel)
        with obs.span(
            "rm.run",
            category="runtime",
            scheduler=self._scheduler.name,
            engine=engine,
            kernel=ctx.kernel is not None,
        ) as run_span:
            try:
                if engine == "events":
                    self._run_events(trace, ctx)
                else:
                    self._run_linear(trace, ctx)
            finally:
                if ctx.kernel is not None:
                    self._scheduler.end_run(ctx.kernel)
            self._finalise_outcomes(ctx)
            run_span.annotate(
                requests=len(ctx.log.outcomes),
                accepted=len(ctx.log.accepted),
                activations=ctx.log.activations,
                total_energy=ctx.log.total_energy,
                makespan=ctx.log.makespan,
            )
        if observer is not None:
            if ctx.kernel is not None:
                # One summary event of the incremental engine's delta work;
                # purely observational, like every other stream event.
                observer(
                    RunEvent(RunEventKind.KERNEL, ctx.now, data=ctx.kernel.summary())
                )
            observer(RunEvent(RunEventKind.END, ctx.now, data={"log": ctx.log}))
        return ctx.log

    # ------------------------------------------------------------------ #
    # Drivers
    # ------------------------------------------------------------------ #
    def _run_linear(self, trace: RequestTrace, ctx: _RunContext) -> None:
        """The seed driver: advance to each arrival in trace order."""
        for event in trace:
            self._check_application(event)
            self._advance_to(ctx, event.time)
            self._handle_arrival(ctx, event)
        self._advance_to(ctx, float("inf"))

    def _run_events(self, trace: RequestTrace, ctx: _RunContext) -> None:
        """The event-engine driver: hop from event to event via a heap."""
        ctx.queue = EventQueue()
        for request in trace:
            ctx.queue.push(Event(request.time, EventKind.ARRIVAL, payload=request))
        while ctx.queue:
            event = ctx.queue.pop()
            if event.kind is EventKind.ARRIVAL:
                request = event.payload
                self._check_application(request)
                self._advance_to(ctx, event.time)
                self._handle_arrival(ctx, request)
            elif event.epoch == ctx.epoch:
                # A segment boundary of the current schedule (job finishes
                # coincide with segment ends, so boundary events cover them).
                # Boundaries of superseded schedules are lazily invalidated:
                # their epoch no longer matches and they are simply skipped.
                self._advance_to(ctx, event.time)
        # Defensive: execute anything the boundary events did not cover.
        self._advance_to(ctx, float("inf"))

    def _check_application(self, event: RequestEvent) -> None:
        if event.application not in self._tables:
            raise AdmissionError(
                f"request {event.name!r} asks for unknown application "
                f"{event.application!r}"
            )

    # ------------------------------------------------------------------ #
    # Arrival handling
    # ------------------------------------------------------------------ #
    def _handle_arrival(self, ctx: _RunContext, event: RequestEvent) -> None:
        with obs.span("rm.arrival", category="runtime", request=event.name):
            self._admit_arrival(ctx, event)

    def _admit_arrival(self, ctx: _RunContext, event: RequestEvent) -> None:
        if ctx.kernel is not None:
            # The incremental kernel's admission pipeline (snapshot →
            # candidates → solve → commit); the inline body below is the
            # seed path kept alive for REPRO_KERNEL=0.
            self._pipeline.admit(ctx, event)
            return
        job = Job(
            name=event.name,
            application=event.application,
            arrival=event.time,
            deadline=event.absolute_deadline,
        )
        ctx.request_info[event.name] = event
        if ctx.observer is not None:
            ctx.observer(
                RunEvent(
                    RunEventKind.ARRIVAL,
                    event.time,
                    event.name,
                    {
                        "application": event.application,
                        "deadline": event.absolute_deadline,
                    },
                )
            )
        candidate_jobs = self._active_for_problem(ctx, event.time) + [job]
        problem = SchedulingProblem(
            self._capacity, self._tables, candidate_jobs, now=event.time
        )
        result = self._scheduler.schedule(problem)
        ctx.log.activations += 1

        if result.feasible:
            candidates = dict(ctx.active)
            candidates[job.name] = job
            plan = self._plan(ctx, result.schedule, candidates)
            if self._budget is not None:
                verdict = self._budget.admits(
                    plan.schedule,
                    self._tables,
                    now=event.time,
                    consumed_joules=ctx.log.total_energy,
                    platform=self._platform,
                    decision=plan.decision,
                )
                if not verdict:
                    # Deadline-feasible but over the power/energy envelope:
                    # rejected like an infeasible request.
                    ctx.log.budget_rejections += 1
                    ctx.admissions[event.name] = (False, result.search_time)
                    self._emit_decision(ctx, event, False, result, reason="budget")
                    return
            ctx.active[job.name] = job
            self._commit(ctx, plan=plan)
            ctx.admissions[event.name] = (True, result.search_time)
            self._emit_decision(ctx, event, True, result)
        else:
            # The new request is rejected; the previously committed schedule
            # keeps serving the already admitted jobs.
            ctx.admissions[event.name] = (False, result.search_time)
            self._emit_decision(ctx, event, False, result, reason="infeasible")

    def _emit_decision(
        self,
        ctx: _RunContext,
        event: RequestEvent,
        accepted: bool,
        result,
        reason: str | None = None,
    ) -> None:
        """Stream one admission decision to the run observer (if any)."""
        if ctx.observer is None:
            return
        data: dict = {"search_time": result.search_time}
        if reason is not None:
            data["reason"] = reason
        kind = RunEventKind.ADMIT if accepted else RunEventKind.REJECT
        ctx.observer(RunEvent(kind, event.time, event.name, data))

    # ------------------------------------------------------------------ #
    # Schedule commits
    # ------------------------------------------------------------------ #
    def _plan(
        self,
        ctx: _RunContext,
        schedule: Schedule,
        active: Mapping[str, Job],
        fresh: bool = False,
        ledger: LoadLedger | None = None,
    ) -> _Plan:
        """Prepare ``schedule`` for commit: prune ghosts, apply the governor.

        Without a governor this is just the ghost-mapping prune of the seed.
        With one, the governor picks a uniform speed for the committed
        schedule, every cluster moves to the slowest OPP sustaining it and
        the schedule stretches by the inverse speed.

        ``fresh=True`` (kernel pipeline only) marks a schedule the scheduler
        just produced: every mapped job is a problem job and every problem
        job is active, so the ghost prune is the identity by construction
        and the scan is skipped.  ``ledger`` shares busy-count rows between
        the governor and the budget admission check.
        """
        if not (fresh and ctx.kernel is not None):
            schedule = self._without_finished(schedule, active, ctx.now)
        if self._governor is None:
            return _Plan(schedule)
        with obs.span(
            "governor", category="energy", governor=self._governor.name
        ) as governor_span:
            if ledger is not None and self._governor_takes_ledger:
                scale = self._governor.select_scale(
                    schedule,
                    active,
                    ctx.now,
                    self._platform,
                    self._tables,
                    ledger=ledger,
                )
            else:
                scale = self._governor.select_scale(
                    schedule, active, ctx.now, self._platform, self._tables
                )
            governor_span.annotate(scale=scale)
        if not 0.0 < scale <= 1.0 + _SCALE_EPSILON:
            raise SchedulingError(
                f"governor {self._governor.name!r} selected invalid speed {scale}"
            )
        scale = min(scale, 1.0)
        if scale < 1.0 - _SCALE_EPSILON:
            schedule = stretch_schedule(schedule, ctx.now, scale)
        return _Plan(schedule, scale, decide(self._platform, scale))

    def _commit(
        self,
        ctx: _RunContext,
        schedule: Schedule | None = None,
        plan: _Plan | None = None,
    ) -> None:
        """Install a schedule as the in-force schedule.

        Callers either pass a raw ``schedule`` (planned here) or a ``plan``
        prepared by :meth:`_plan` (the arrival path, which plans early for
        the budget admission check).  Mappings of jobs that are no longer
        active are dropped and segments that become empty disappear, so the
        executed timeline never carries ghost entries for finished jobs.
        The segment cursor resets and, in event-engine runs, the schedule's
        boundary events are queued under a fresh epoch (stale events of the
        superseded schedule are skipped on pop).
        """
        if plan is None:
            plan = self._plan(ctx, schedule, ctx.active)
        ctx.schedule = plan.schedule
        if self._governor is not None:
            ctx.speed = plan.speed
            ctx.decision = plan.decision
        ctx.cursor = 0
        ctx.epoch += 1
        if ctx.kernel is not None:
            ctx.kernel.state.rebind(ctx.schedule)
        if ctx.observer is not None:
            ctx.observer(
                RunEvent(
                    RunEventKind.COMMIT,
                    ctx.now,
                    data={
                        "segments": len(ctx.schedule.segments),
                        "speed": ctx.speed,
                        "jobs": sorted(ctx.active),
                    },
                )
            )
        if ctx.queue is not None:
            # One boundary event per future segment end.  Job finishes need no
            # separate events: a job completes exactly at the end of its last
            # segment, so the boundary events already cover them.
            for segment in ctx.schedule:
                if segment.end > ctx.now + _TIME_EPSILON:
                    ctx.queue.push(
                        Event(segment.end, EventKind.SEGMENT_END, epoch=ctx.epoch)
                    )

    def _without_finished(
        self, schedule: Schedule, active: Mapping[str, Job], now: float
    ) -> Schedule:
        """Strip not-yet-executed mappings whose job already finished."""
        changed = False
        kept: list[MappingSegment] = []
        for segment in schedule:
            if segment.end <= now + _TIME_EPSILON:
                kept.append(segment)
                continue
            live = [m for m in segment if m.job_name in active]
            if len(live) == len(segment.mappings):
                kept.append(segment)
            else:
                changed = True
                if live:
                    kept.append(MappingSegment(segment.start, segment.end, live))
        return Schedule(kept) if changed else schedule

    # ------------------------------------------------------------------ #
    # Time advance / schedule execution
    # ------------------------------------------------------------------ #
    def _advance_to(self, ctx: _RunContext, target: float) -> None:
        """Execute the committed schedule from the current time up to ``target``."""
        while ctx.now < target - _TIME_EPSILON:
            segment = self._next_segment(ctx)
            if segment is None:
                # Nothing left to execute; jump straight to the target time.
                if target != float("inf"):
                    ctx.now = target
                return

            if segment.start > ctx.now + _TIME_EPSILON:
                # Idle gap before the next planned segment.
                if segment.start >= target - _TIME_EPSILON:
                    ctx.now = target
                    return
                ctx.now = segment.start
                continue

            interval_end = min(segment.end, target)
            if interval_end <= ctx.now + _TIME_EPSILON:
                return
            self._execute_interval(ctx, segment, ctx.now, interval_end)
            ctx.now = interval_end

            if interval_end >= segment.end - _TIME_EPSILON:
                finished = self._collect_finished(ctx, segment.end)
                if finished and self._remap_on_finish and ctx.active:
                    self._reschedule_at(ctx, ctx.now)

    def _next_segment(self, ctx: _RunContext) -> MappingSegment | None:
        """The first committed segment that has not fully executed yet.

        The cursor is monotonic within one committed schedule (it resets on
        commit), so the lookup is O(1) amortised over a run instead of the
        seed's O(n) rescan from index 0 on every advance.
        """
        segments = ctx.schedule.segments
        while (
            ctx.cursor < len(segments)
            and segments[ctx.cursor].end <= ctx.now + _TIME_EPSILON
        ):
            ctx.cursor += 1
        if ctx.cursor < len(segments):
            return segments[ctx.cursor]
        return None

    def _execute_interval(
        self, ctx: _RunContext, segment: MappingSegment, start: float, end: float
    ) -> None:
        """Account progress and energy of one executed interval."""
        duration = end - start
        job_configs = []
        if ctx.decision is not None:
            # DVFS mode: work retires at the uniform speed the governor
            # selected and energy is integrated from the per-core power
            # models at the in-force OPPs.
            active_points = []
            for mapping in segment:
                job = ctx.active.get(mapping.job_name)
                if job is None:
                    continue
                table = self._optables[mapping.application]
                config_index = mapping.config_index
                progress = duration * ctx.speed / table.times[config_index]
                ctx.active[job.name] = job.with_progress(
                    min(progress, job.remaining_ratio)
                )
                active_points.append((mapping.job_name, table.points[config_index]))
                job_configs.append((mapping.job_name, config_index))
            if not job_configs:
                return
            energy = ctx.meter.record_analytical(duration, active_points, ctx.decision)
        else:
            # Seed mode: operating-point energies, bit-identical to pre-DVFS
            # behaviour; the meter only attributes the charged joules.  The
            # per-interval table lookups read the interned OpTable columns.
            energy = 0.0
            contributions = []
            for mapping in segment:
                job = ctx.active.get(mapping.job_name)
                if job is None:
                    continue
                table = self._optables[mapping.application]
                config_index = mapping.config_index
                progress = duration / table.times[config_index]
                share = table.energies[config_index] * progress
                energy += share
                ctx.active[job.name] = job.with_progress(
                    min(progress, job.remaining_ratio)
                )
                job_configs.append((mapping.job_name, config_index))
                contributions.append(
                    (mapping.job_name, table.points[config_index], share)
                )
            if not job_configs:
                # Every mapped job already finished (possible only for
                # schedules kept in force past a failed re-activation):
                # nothing ran, so nothing is logged.
                return
            if ctx.meter is not None:
                ctx.meter.record_table(contributions)
        ctx.log.timeline.append(
            ExecutedInterval(start, end, tuple(job_configs), energy)
        )
        ctx.log.total_energy += energy
        # Energy-accounting breadcrumbs on the enclosing span (too frequent
        # for spans of their own): interval count and charged joules, with
        # one ContextVar read for the pair.
        current = obs.current_span()
        if current is not None:
            current.count("energy.intervals")
            current.count("energy.joules", energy)
        if ctx.observer is not None:
            # The energy tick of a streaming consumer: what ran, for how
            # long, and the joules charged for it.
            ctx.observer(
                RunEvent(
                    RunEventKind.INTERVAL,
                    end,
                    data={
                        "start": start,
                        "end": end,
                        "energy": energy,
                        "jobs": [name for name, _ in job_configs],
                        "total_energy": ctx.log.total_energy,
                    },
                )
            )

    def _collect_finished(self, ctx: _RunContext, time: float) -> list[str]:
        """Remove completed jobs from the active set and record their completion."""
        finished = []
        for name, job in list(ctx.active.items()):
            if job.remaining_ratio <= _FINISH_TOLERANCE:
                ctx.completions[name] = time
                del ctx.active[name]
                finished.append(name)
                if ctx.observer is not None:
                    ctx.observer(RunEvent(RunEventKind.FINISH, time, name))
        if finished and ctx.active:
            kernel = ctx.kernel
            if kernel is not None:
                # The ledger knows each job's last committed segment end, so
                # the common no-ghost case skips the prune scan entirely;
                # the scan only runs when it will produce a changed
                # schedule (the gate mirrors its boundary comparison).
                kernel.state.dirty.update(finished)
                if not kernel.state.needs_prune(finished, ctx.now):
                    kernel.stats["prunes_skipped"] += 1
                    return finished
                kernel.stats["prune_scans"] += 1
            pruned = self._without_finished(ctx.schedule, ctx.active, ctx.now)
            if pruned is not ctx.schedule:
                # Prune-only commit: the in-force schedule is already planned
                # (and, with a governor, already stretched), so the current
                # speed and OPP decision are reused as-is.
                self._commit(ctx, plan=_Plan(pruned, ctx.speed, ctx.decision))
        return finished

    def _active_for_problem(self, ctx: _RunContext, now: float) -> list[Job]:
        """The active jobs as scheduler candidates.

        Under deadline-violating governors (powersave, ondemand) an admitted
        job can still be running past its deadline when the next activation
        fires.  Its deadline is relaxed to its committed completion time —
        the in-force schedule is a feasibility witness for that bound — so
        the overdue job stays schedulable and new arrivals are judged on
        capacity, not doomed by an already-lost deadline.  The true deadline
        is kept for the outcome report.  Without a governor committed
        schedules always meet their deadlines and this is the identity.
        """
        candidates = []
        for job in ctx.active.values():
            if job.deadline < now:
                committed = ctx.schedule.completion_time(job.name)
                relaxed = max(now, committed if committed is not None else now)
                candidates.append(replace(job, deadline=relaxed))
            else:
                candidates.append(job)
        return candidates

    def _reschedule_at(self, ctx: _RunContext, time: float) -> None:
        """Re-activate the scheduler for the remaining jobs (remap on finish)."""
        with obs.span("rm.reschedule", category="runtime"):
            if ctx.kernel is not None:
                self._pipeline.reschedule(ctx, time)
                return
            problem = SchedulingProblem(
                self._capacity,
                self._tables,
                self._active_for_problem(ctx, time),
                now=time,
            )
            result = self._scheduler.schedule(problem)
            ctx.log.activations += 1
            if result.feasible:
                self._commit(ctx, result.schedule)
            # If rescheduling fails the previously committed schedule (which
            # is still feasible for the remaining jobs) stays in force.

    # ------------------------------------------------------------------ #
    # Final bookkeeping
    # ------------------------------------------------------------------ #
    def _finalise_outcomes(self, ctx: _RunContext) -> None:
        with obs.span("energy.accounting", category="energy") as energy_span:
            if ctx.meter is not None:
                ctx.log.job_energy = dict(ctx.meter.job_joules)
                ctx.log.cluster_energy = ctx.meter.cluster_breakdown()
            energy_span.annotate(
                total_energy=ctx.log.total_energy,
                clusters=len(ctx.log.cluster_energy),
            )
        for name, event in ctx.request_info.items():
            accepted, search_time = ctx.admissions[name]
            ctx.log.outcomes.append(
                RequestOutcome(
                    name=name,
                    application=event.application,
                    arrival=event.time,
                    deadline=event.absolute_deadline,
                    accepted=accepted,
                    completion_time=ctx.completions.get(name),
                    scheduler_time=search_time,
                    energy=ctx.log.job_energy.get(name, 0.0),
                )
            )
