"""The online runtime manager (RM).

The manager owns the platform and the design-time operating-point tables,
receives request arrivals from a :class:`~repro.runtime.trace.RequestTrace`
and drives one of the schedulers:

* On every arrival it advances simulated time to the arrival instant
  (executing the current schedule, tracking job progress and energy), builds a
  :class:`~repro.core.problem.SchedulingProblem` with all unfinished jobs plus
  the new one and activates the scheduler.  If a feasible schedule is found
  the request is admitted and the schedule replaced; otherwise the new request
  is rejected and the previous schedule remains in force — exactly the
  admission policy described in Section IV of the paper.
* Optionally it also re-activates the scheduler whenever a job finishes
  (``remap_on_finish=True``), which is how the "fixed mapper with remapping at
  application start and finish" of Fig. 1(b) behaves.

The result of a run is an :class:`~repro.runtime.log.ExecutionLog` with the
admission decisions, the executed timeline and the total consumed energy.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.config import ConfigTable
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.core.segment import Schedule
from repro.exceptions import AdmissionError
from repro.platforms.platform import Platform
from repro.platforms.resources import ResourceVector
from repro.runtime.log import ExecutedInterval, ExecutionLog, RequestOutcome
from repro.runtime.trace import RequestEvent, RequestTrace
from repro.schedulers.base import Scheduler

#: Remaining-ratio threshold below which a job counts as completed.
_FINISH_TOLERANCE = 1e-6
_TIME_EPSILON = 1e-9


class RuntimeManager:
    """Event-driven runtime manager simulation.

    Parameters
    ----------
    platform:
        The platform (or a bare capacity vector).
    tables:
        Application name → configuration table (the design-time data).
    scheduler:
        The scheduling algorithm activated on arrivals (and finishes).
    remap_on_finish:
        Re-activate the scheduler whenever a job completes.  The adaptive
        schedulers do not need this (their schedules already cover the whole
        horizon); the fixed mapper of Fig. 1(b) does.

    Examples
    --------
    >>> from repro.schedulers import MMKPMDFScheduler
    >>> from repro.workload.motivational import motivational_platform, motivational_tables
    >>> from repro.runtime import RequestEvent, RequestTrace
    >>> manager = RuntimeManager(
    ...     motivational_platform(), motivational_tables(), MMKPMDFScheduler())
    >>> trace = RequestTrace([RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
    ...                       RequestEvent(1.0, "lambda2", 4.0, "sigma2")])
    >>> log = manager.run(trace)
    >>> log.acceptance_rate
    1.0
    """

    def __init__(
        self,
        platform: Platform | ResourceVector,
        tables: Mapping[str, ConfigTable],
        scheduler: Scheduler,
        remap_on_finish: bool = False,
    ):
        self._capacity = (
            platform.capacity if isinstance(platform, Platform) else platform
        )
        self._tables = dict(tables)
        self._scheduler = scheduler
        self._remap_on_finish = remap_on_finish

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, trace: RequestTrace) -> ExecutionLog:
        """Simulate the runtime manager over a full request trace."""
        self._now = 0.0
        self._active: dict[str, Job] = {}
        self._schedule: Schedule = Schedule()
        self._log = ExecutionLog()
        self._completions: dict[str, float] = {}
        self._request_info: dict[str, RequestEvent] = {}
        self._admissions: dict[str, tuple[bool, float]] = {}

        for event in trace:
            if event.application not in self._tables:
                raise AdmissionError(
                    f"request {event.name!r} asks for unknown application "
                    f"{event.application!r}"
                )
            self._advance_to(event.time)
            self._handle_arrival(event)

        # Run the remaining schedule to completion.
        self._advance_to(float("inf"))
        self._finalise_outcomes()
        return self._log

    # ------------------------------------------------------------------ #
    # Arrival handling
    # ------------------------------------------------------------------ #
    def _handle_arrival(self, event: RequestEvent) -> None:
        job = Job(
            name=event.name,
            application=event.application,
            arrival=event.time,
            deadline=event.absolute_deadline,
        )
        self._request_info[event.name] = event
        candidate_jobs = list(self._active.values()) + [job]
        problem = SchedulingProblem(
            self._capacity, self._tables, candidate_jobs, now=event.time
        )
        result = self._scheduler.schedule(problem)
        self._log.activations += 1

        if result.feasible:
            self._active[job.name] = job
            self._schedule = result.schedule
            self._admissions[event.name] = (True, result.search_time)
        else:
            # The new request is rejected; the previously committed schedule
            # keeps serving the already admitted jobs.
            self._admissions[event.name] = (False, result.search_time)

    # ------------------------------------------------------------------ #
    # Time advance / schedule execution
    # ------------------------------------------------------------------ #
    def _advance_to(self, target: float) -> None:
        """Execute the committed schedule from the current time up to ``target``."""
        while self._now < target - _TIME_EPSILON:
            segment = self._next_segment()
            if segment is None:
                # Nothing left to execute; jump straight to the target time.
                if target != float("inf"):
                    self._now = target
                return

            if segment.start > self._now + _TIME_EPSILON:
                # Idle gap before the next planned segment.
                if segment.start >= target - _TIME_EPSILON:
                    self._now = target
                    return
                self._now = segment.start
                continue

            interval_end = min(segment.end, target)
            if interval_end <= self._now + _TIME_EPSILON:
                return
            self._execute_interval(segment, self._now, interval_end)
            self._now = interval_end

            if interval_end >= segment.end - _TIME_EPSILON:
                finished = self._collect_finished(segment.end)
                if finished and self._remap_on_finish and self._active:
                    self._reschedule_at(self._now)

    def _next_segment(self):
        """The first committed segment that has not fully executed yet."""
        for segment in self._schedule:
            if segment.end > self._now + _TIME_EPSILON:
                return segment
        return None

    def _execute_interval(self, segment, start: float, end: float) -> None:
        """Account progress and energy of one executed interval."""
        duration = end - start
        energy = 0.0
        job_configs = []
        for mapping in segment:
            job = self._active.get(mapping.job_name)
            if job is None:
                continue
            point = mapping.operating_point(self._tables)
            progress = duration / point.execution_time
            energy += point.energy * progress
            self._active[job.name] = job.with_progress(
                min(progress, job.remaining_ratio)
            )
            job_configs.append((mapping.job_name, mapping.config_index))
        self._log.timeline.append(
            ExecutedInterval(start, end, tuple(job_configs), energy)
        )
        self._log.total_energy += energy

    def _collect_finished(self, time: float) -> list[str]:
        """Remove completed jobs from the active set and record their completion."""
        finished = []
        for name, job in list(self._active.items()):
            if job.remaining_ratio <= _FINISH_TOLERANCE:
                self._completions[name] = time
                del self._active[name]
                finished.append(name)
        return finished

    def _reschedule_at(self, time: float) -> None:
        """Re-activate the scheduler for the remaining jobs (remap on finish)."""
        problem = SchedulingProblem(
            self._capacity, self._tables, list(self._active.values()), now=time
        )
        result = self._scheduler.schedule(problem)
        self._log.activations += 1
        if result.feasible:
            self._schedule = result.schedule
        # If rescheduling fails the previously committed schedule (which is
        # still feasible for the remaining jobs) stays in force.

    # ------------------------------------------------------------------ #
    # Final bookkeeping
    # ------------------------------------------------------------------ #
    def _finalise_outcomes(self) -> None:
        for name, event in self._request_info.items():
            accepted, search_time = self._admissions[name]
            self._log.outcomes.append(
                RequestOutcome(
                    name=name,
                    application=event.application,
                    arrival=event.time,
                    deadline=event.absolute_deadline,
                    accepted=accepted,
                    completion_time=self._completions.get(name),
                    scheduler_time=search_time,
                )
            )
