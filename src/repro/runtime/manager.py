"""The online runtime manager (RM).

The manager owns the platform and the design-time operating-point tables,
receives request arrivals from a :class:`~repro.runtime.trace.RequestTrace`
and drives one of the schedulers:

* On every arrival it advances simulated time to the arrival instant
  (executing the current schedule, tracking job progress and energy), builds a
  :class:`~repro.core.problem.SchedulingProblem` with all unfinished jobs plus
  the new one and activates the scheduler.  If a feasible schedule is found
  the request is admitted and the schedule replaced; otherwise the new request
  is rejected and the previous schedule remains in force — exactly the
  admission policy described in Section IV of the paper.
* Optionally it also re-activates the scheduler whenever a job finishes
  (``remap_on_finish=True``), which is how the "fixed mapper with remapping at
  application start and finish" of Fig. 1(b) behaves.

Two time-advance engines are available.  The default ``"events"`` engine
drives the simulation from a heap-based
:class:`~repro.service.events.EventQueue`: arrivals and segment boundaries
become events (job finishes coincide with the end of the job's last segment,
so boundary events cover them), and picking the next time step costs
``O(log n)``.
The ``"linear"`` engine reproduces the seed implementation's outer loop
(advance to each arrival in trace order); both engines share the execution
primitives and produce identical :class:`~repro.runtime.log.ExecutionLog`
contents, which the equivalence tests assert.

All per-run state lives in a private run context, so ``run()`` itself is
reentrant and one manager instance can be shared across concurrent callers —
*provided the scheduler is*.  The scheduler instance is shared between runs,
and some schedulers keep per-solve state on ``self`` (EX-MEM's memo tables,
for example), so concurrent runs are only safe with stateless or thread-safe
schedulers such as MMKP-MDF;
:class:`~repro.service.pool.SimulationService` side-steps this by building a
fresh scheduler instance per simulation job.

The result of a run is an :class:`~repro.runtime.log.ExecutionLog` with the
admission decisions, the executed timeline and the total consumed energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.config import ConfigTable
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.core.segment import MappingSegment, Schedule
from repro.exceptions import AdmissionError, SchedulingError
from repro.platforms.platform import Platform
from repro.platforms.resources import ResourceVector
from repro.runtime.log import ExecutedInterval, ExecutionLog, RequestOutcome
from repro.runtime.trace import RequestEvent, RequestTrace
from repro.schedulers.base import Scheduler
from repro.service.events import Event, EventKind, EventQueue

#: Remaining-ratio threshold below which a job counts as completed.
_FINISH_TOLERANCE = 1e-6
_TIME_EPSILON = 1e-9

#: The supported time-advance engines.
ENGINES = ("events", "linear")


@dataclass
class _RunContext:
    """All mutable state of one simulation run.

    Keeping the state here (instead of on the manager) makes
    :meth:`RuntimeManager.run` reentrant: a single manager instance can be
    shared by concurrent workers, each run owning its private context.
    """

    now: float = 0.0
    active: dict[str, Job] = field(default_factory=dict)
    schedule: Schedule = field(default_factory=Schedule)
    #: Index of the first committed segment that may still execute.  The
    #: cursor only moves forward and is reset when a schedule is committed,
    #: making the next-segment lookup O(1) amortised instead of the seed's
    #: O(n) rescan per advance.
    cursor: int = 0
    #: Schedule generation counter used to lazily invalidate queued
    #: segment-boundary events after a new schedule is committed.
    epoch: int = 0
    queue: EventQueue | None = None
    log: ExecutionLog = field(default_factory=ExecutionLog)
    completions: dict[str, float] = field(default_factory=dict)
    request_info: dict[str, RequestEvent] = field(default_factory=dict)
    admissions: dict[str, tuple[bool, float]] = field(default_factory=dict)


class RuntimeManager:
    """Event-driven runtime manager simulation.

    Parameters
    ----------
    platform:
        The platform (or a bare capacity vector).
    tables:
        Application name → configuration table (the design-time data).
    scheduler:
        The scheduling algorithm activated on arrivals (and finishes).
    remap_on_finish:
        Re-activate the scheduler whenever a job completes.  The adaptive
        schedulers do not need this (their schedules already cover the whole
        horizon); the fixed mapper of Fig. 1(b) does.
    engine:
        Default time-advance engine: ``"events"`` (heap-based event queue) or
        ``"linear"`` (the seed's arrival-by-arrival loop).  Both produce the
        same execution log; ``run()`` may override the choice per call.

    Examples
    --------
    >>> from repro.schedulers import MMKPMDFScheduler
    >>> from repro.workload.motivational import motivational_platform, motivational_tables
    >>> from repro.runtime import RequestEvent, RequestTrace
    >>> manager = RuntimeManager(
    ...     motivational_platform(), motivational_tables(), MMKPMDFScheduler())
    >>> trace = RequestTrace([RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
    ...                       RequestEvent(1.0, "lambda2", 4.0, "sigma2")])
    >>> log = manager.run(trace)
    >>> log.acceptance_rate
    1.0
    """

    def __init__(
        self,
        platform: Platform | ResourceVector,
        tables: Mapping[str, ConfigTable],
        scheduler: Scheduler,
        remap_on_finish: bool = False,
        engine: str = "events",
    ):
        if engine not in ENGINES:
            raise SchedulingError(
                f"unknown time-advance engine {engine!r}; choose from {ENGINES}"
            )
        self._capacity = (
            platform.capacity if isinstance(platform, Platform) else platform
        )
        self._tables = dict(tables)
        self._scheduler = scheduler
        self._remap_on_finish = remap_on_finish
        self._engine = engine

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, trace: RequestTrace, engine: str | None = None) -> ExecutionLog:
        """Simulate the runtime manager over a full request trace.

        Parameters
        ----------
        trace:
            The request arrivals to simulate.
        engine:
            Override the manager's default time-advance engine for this run.
        """
        engine = self._engine if engine is None else engine
        if engine not in ENGINES:
            raise SchedulingError(
                f"unknown time-advance engine {engine!r}; choose from {ENGINES}"
            )
        ctx = _RunContext()
        if engine == "events":
            self._run_events(trace, ctx)
        else:
            self._run_linear(trace, ctx)
        self._finalise_outcomes(ctx)
        return ctx.log

    # ------------------------------------------------------------------ #
    # Drivers
    # ------------------------------------------------------------------ #
    def _run_linear(self, trace: RequestTrace, ctx: _RunContext) -> None:
        """The seed driver: advance to each arrival in trace order."""
        for event in trace:
            self._check_application(event)
            self._advance_to(ctx, event.time)
            self._handle_arrival(ctx, event)
        self._advance_to(ctx, float("inf"))

    def _run_events(self, trace: RequestTrace, ctx: _RunContext) -> None:
        """The event-engine driver: hop from event to event via a heap."""
        ctx.queue = EventQueue()
        for request in trace:
            ctx.queue.push(Event(request.time, EventKind.ARRIVAL, payload=request))
        while ctx.queue:
            event = ctx.queue.pop()
            if event.kind is EventKind.ARRIVAL:
                request = event.payload
                self._check_application(request)
                self._advance_to(ctx, event.time)
                self._handle_arrival(ctx, request)
            elif event.epoch == ctx.epoch:
                # A segment boundary of the current schedule (job finishes
                # coincide with segment ends, so boundary events cover them).
                # Boundaries of superseded schedules are lazily invalidated:
                # their epoch no longer matches and they are simply skipped.
                self._advance_to(ctx, event.time)
        # Defensive: execute anything the boundary events did not cover.
        self._advance_to(ctx, float("inf"))

    def _check_application(self, event: RequestEvent) -> None:
        if event.application not in self._tables:
            raise AdmissionError(
                f"request {event.name!r} asks for unknown application "
                f"{event.application!r}"
            )

    # ------------------------------------------------------------------ #
    # Arrival handling
    # ------------------------------------------------------------------ #
    def _handle_arrival(self, ctx: _RunContext, event: RequestEvent) -> None:
        job = Job(
            name=event.name,
            application=event.application,
            arrival=event.time,
            deadline=event.absolute_deadline,
        )
        ctx.request_info[event.name] = event
        candidate_jobs = list(ctx.active.values()) + [job]
        problem = SchedulingProblem(
            self._capacity, self._tables, candidate_jobs, now=event.time
        )
        result = self._scheduler.schedule(problem)
        ctx.log.activations += 1

        if result.feasible:
            ctx.active[job.name] = job
            self._commit(ctx, result.schedule)
            ctx.admissions[event.name] = (True, result.search_time)
        else:
            # The new request is rejected; the previously committed schedule
            # keeps serving the already admitted jobs.
            ctx.admissions[event.name] = (False, result.search_time)

    # ------------------------------------------------------------------ #
    # Schedule commits
    # ------------------------------------------------------------------ #
    def _commit(self, ctx: _RunContext, schedule: Schedule) -> None:
        """Install ``schedule`` as the in-force schedule.

        Mappings of jobs that are no longer active are dropped and segments
        that become empty disappear, so the executed timeline never carries
        ghost entries for finished jobs.  The segment cursor resets and, in
        event-engine runs, the schedule's boundary events are queued under a
        fresh epoch (stale events of the superseded schedule are skipped on
        pop).
        """
        ctx.schedule = self._without_finished(ctx, schedule)
        ctx.cursor = 0
        ctx.epoch += 1
        if ctx.queue is not None:
            # One boundary event per future segment end.  Job finishes need no
            # separate events: a job completes exactly at the end of its last
            # segment, so the boundary events already cover them.
            for segment in ctx.schedule:
                if segment.end > ctx.now + _TIME_EPSILON:
                    ctx.queue.push(
                        Event(segment.end, EventKind.SEGMENT_END, epoch=ctx.epoch)
                    )

    def _without_finished(self, ctx: _RunContext, schedule: Schedule) -> Schedule:
        """Strip not-yet-executed mappings whose job already finished."""
        changed = False
        kept: list[MappingSegment] = []
        for segment in schedule:
            if segment.end <= ctx.now + _TIME_EPSILON:
                kept.append(segment)
                continue
            live = [m for m in segment if m.job_name in ctx.active]
            if len(live) == len(segment.mappings):
                kept.append(segment)
            else:
                changed = True
                if live:
                    kept.append(MappingSegment(segment.start, segment.end, live))
        return Schedule(kept) if changed else schedule

    # ------------------------------------------------------------------ #
    # Time advance / schedule execution
    # ------------------------------------------------------------------ #
    def _advance_to(self, ctx: _RunContext, target: float) -> None:
        """Execute the committed schedule from the current time up to ``target``."""
        while ctx.now < target - _TIME_EPSILON:
            segment = self._next_segment(ctx)
            if segment is None:
                # Nothing left to execute; jump straight to the target time.
                if target != float("inf"):
                    ctx.now = target
                return

            if segment.start > ctx.now + _TIME_EPSILON:
                # Idle gap before the next planned segment.
                if segment.start >= target - _TIME_EPSILON:
                    ctx.now = target
                    return
                ctx.now = segment.start
                continue

            interval_end = min(segment.end, target)
            if interval_end <= ctx.now + _TIME_EPSILON:
                return
            self._execute_interval(ctx, segment, ctx.now, interval_end)
            ctx.now = interval_end

            if interval_end >= segment.end - _TIME_EPSILON:
                finished = self._collect_finished(ctx, segment.end)
                if finished and self._remap_on_finish and ctx.active:
                    self._reschedule_at(ctx, ctx.now)

    def _next_segment(self, ctx: _RunContext) -> MappingSegment | None:
        """The first committed segment that has not fully executed yet.

        The cursor is monotonic within one committed schedule (it resets on
        commit), so the lookup is O(1) amortised over a run instead of the
        seed's O(n) rescan from index 0 on every advance.
        """
        segments = ctx.schedule.segments
        while (
            ctx.cursor < len(segments)
            and segments[ctx.cursor].end <= ctx.now + _TIME_EPSILON
        ):
            ctx.cursor += 1
        if ctx.cursor < len(segments):
            return segments[ctx.cursor]
        return None

    def _execute_interval(
        self, ctx: _RunContext, segment: MappingSegment, start: float, end: float
    ) -> None:
        """Account progress and energy of one executed interval."""
        duration = end - start
        energy = 0.0
        job_configs = []
        for mapping in segment:
            job = ctx.active.get(mapping.job_name)
            if job is None:
                continue
            point = mapping.operating_point(self._tables)
            progress = duration / point.execution_time
            energy += point.energy * progress
            ctx.active[job.name] = job.with_progress(
                min(progress, job.remaining_ratio)
            )
            job_configs.append((mapping.job_name, mapping.config_index))
        if not job_configs:
            # Every mapped job already finished (possible only for schedules
            # kept in force past a failed re-activation): nothing ran, so
            # nothing is logged.
            return
        ctx.log.timeline.append(
            ExecutedInterval(start, end, tuple(job_configs), energy)
        )
        ctx.log.total_energy += energy

    def _collect_finished(self, ctx: _RunContext, time: float) -> list[str]:
        """Remove completed jobs from the active set and record their completion."""
        finished = []
        for name, job in list(ctx.active.items()):
            if job.remaining_ratio <= _FINISH_TOLERANCE:
                ctx.completions[name] = time
                del ctx.active[name]
                finished.append(name)
        if finished and ctx.active:
            pruned = self._without_finished(ctx, ctx.schedule)
            if pruned is not ctx.schedule:
                self._commit(ctx, pruned)
        return finished

    def _reschedule_at(self, ctx: _RunContext, time: float) -> None:
        """Re-activate the scheduler for the remaining jobs (remap on finish)."""
        problem = SchedulingProblem(
            self._capacity, self._tables, list(ctx.active.values()), now=time
        )
        result = self._scheduler.schedule(problem)
        ctx.log.activations += 1
        if result.feasible:
            self._commit(ctx, result.schedule)
        # If rescheduling fails the previously committed schedule (which is
        # still feasible for the remaining jobs) stays in force.

    # ------------------------------------------------------------------ #
    # Final bookkeeping
    # ------------------------------------------------------------------ #
    def _finalise_outcomes(self, ctx: _RunContext) -> None:
        for name, event in ctx.request_info.items():
            accepted, search_time = ctx.admissions[name]
            ctx.log.outcomes.append(
                RequestOutcome(
                    name=name,
                    application=event.application,
                    arrival=event.time,
                    deadline=event.absolute_deadline,
                    accepted=accepted,
                    completion_time=ctx.completions.get(name),
                    scheduler_time=search_time,
                )
            )
