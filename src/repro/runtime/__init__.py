"""Online runtime manager.

The schedulers in :mod:`repro.schedulers` answer a single activation: *given
these unfinished jobs right now, produce a schedule*.  The runtime manager in
this package drives them over time: it receives a trace of request arrivals,
activates the scheduler on every arrival (and optionally on every job
completion, which is how the "fixed mapper with remapping at finish" of the
motivational example behaves), tracks job progress, accounts the energy that
is actually consumed and records acceptances, rejections and deadline misses.
"""

from repro.runtime.trace import RequestEvent, RequestTrace, poisson_trace
from repro.runtime.log import ExecutionLog, ExecutedInterval, RequestOutcome
from repro.runtime.manager import RuntimeManager

__all__ = [
    "RequestEvent",
    "RequestTrace",
    "poisson_trace",
    "ExecutionLog",
    "ExecutedInterval",
    "RequestOutcome",
    "RuntimeManager",
]
