"""Request traces for the online runtime manager.

A :class:`RequestTrace` is the ordered list of application requests the
runtime manager receives over time.  Each :class:`RequestEvent` carries the
arrival time, the application (configuration-table key), and the relative
deadline granted to the request.  Traces can be written by hand (the
motivational scenarios), loaded from JSON, or generated randomly with
:func:`poisson_trace` for the online examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.config import ConfigTable
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class RequestEvent:
    """One application request arriving at the runtime manager.

    Parameters
    ----------
    time:
        Arrival time in seconds.
    application:
        Name of the application to execute (must match a configuration table).
    relative_deadline:
        Deadline granted to the request, relative to its arrival time.
    name:
        Unique request name; auto-derived names are used by the generators.
    """

    time: float
    application: str
    relative_deadline: float
    name: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise WorkloadError("request arrival time must be non-negative")
        if self.relative_deadline <= 0:
            raise WorkloadError("relative deadline must be positive")
        if not self.name:
            raise WorkloadError("request name must not be empty")

    @property
    def absolute_deadline(self) -> float:
        """Arrival time plus relative deadline."""
        return self.time + self.relative_deadline


class RequestTrace:
    """A time-ordered sequence of request events.

    Examples
    --------
    >>> trace = RequestTrace([
    ...     RequestEvent(0.0, "lambda1", 9.0, "sigma1"),
    ...     RequestEvent(1.0, "lambda2", 4.0, "sigma2"),
    ... ])
    >>> len(trace)
    2
    """

    def __init__(self, events: Iterable[RequestEvent]):
        ordered = sorted(events, key=lambda e: (e.time, e.name))
        names = [e.name for e in ordered]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate request names in trace: {names}")
        self._events = tuple(ordered)

    @property
    def events(self) -> tuple[RequestEvent, ...]:
        """All events in arrival order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RequestEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> RequestEvent:
        return self._events[index]

    @property
    def end_time(self) -> float:
        """Arrival time of the last request (0.0 for an empty trace)."""
        return self._events[-1].time if self._events else 0.0

    def applications(self) -> set[str]:
        """The distinct applications requested by the trace."""
        return {e.application for e in self._events}


def poisson_trace(
    tables: Mapping[str, ConfigTable],
    arrival_rate: float,
    num_requests: int,
    deadline_factor_range: tuple[float, float] = (1.5, 4.0),
    seed: int = 0,
) -> RequestTrace:
    """Generate a random request trace with Poisson arrivals.

    Inter-arrival times are exponential with the given rate; each request
    picks a uniformly random application and a deadline equal to the execution
    time of a random configuration scaled by a random factor from
    ``deadline_factor_range`` — the same deadline recipe as the evaluation
    workload, applied online.

    Parameters
    ----------
    tables:
        The available applications (configuration tables).
    arrival_rate:
        Average number of request arrivals per second.
    num_requests:
        Length of the trace.
    deadline_factor_range:
        Range of the random deadline scale factor.
    seed:
        Seed for reproducibility.
    """
    if arrival_rate <= 0:
        raise WorkloadError("arrival rate must be positive")
    if num_requests <= 0:
        raise WorkloadError("number of requests must be positive")
    low, high = deadline_factor_range
    if not 0 < low <= high:
        raise WorkloadError("invalid deadline factor range")

    rng = random.Random(seed)
    applications: Sequence[str] = sorted(tables)
    events = []
    time = 0.0
    for index in range(num_requests):
        time += rng.expovariate(arrival_rate)
        application = rng.choice(applications)
        table = tables[application]
        point = table[rng.randrange(len(table))]
        deadline = point.execution_time * rng.uniform(low, high)
        events.append(
            RequestEvent(time, application, deadline, name=f"req{index:04d}")
        )
    return RequestTrace(events)
