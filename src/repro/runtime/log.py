"""Execution logs produced by the runtime manager."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.segment import MappingSegment


@dataclass(frozen=True)
class RequestOutcome:
    """Admission decision and final outcome of one request.

    Attributes
    ----------
    name:
        Request name.
    application:
        Requested application.
    arrival, deadline:
        Arrival time and absolute deadline.
    accepted:
        Whether the runtime manager admitted the request.
    completion_time:
        Time the job finished (``None`` if rejected or still running when the
        simulation ended).
    scheduler_time:
        Wall-clock seconds the scheduler spent on the activation triggered by
        this request.
    energy:
        Joules the runtime manager attributed to this request's execution
        (0.0 for rejected requests).
    """

    name: str
    application: str
    arrival: float
    deadline: float
    accepted: bool
    completion_time: float | None = None
    scheduler_time: float = 0.0
    energy: float = 0.0

    @property
    def met_deadline(self) -> bool:
        """True iff the job completed no later than its deadline."""
        return self.completion_time is not None and self.completion_time <= self.deadline + 1e-6


@dataclass(frozen=True)
class ExecutedInterval:
    """One executed portion of a mapping segment.

    The runtime manager may recompute the schedule before a planned segment
    finishes, so the executed timeline stores what actually ran.
    """

    start: float
    end: float
    job_configs: tuple[tuple[str, int], ...]
    energy: float

    @property
    def duration(self) -> float:
        """Length of the executed interval in seconds."""
        return self.end - self.start


@dataclass
class ExecutionLog:
    """Everything the runtime manager recorded during one simulation run.

    ``cluster_energy`` and ``job_energy`` are filled by the manager's
    incremental :class:`~repro.energy.accounting.EnergyMeter`:
    per-processor-type ``{"busy": J, "idle": J, "total": J}`` breakdowns
    (empty when the manager only knows a bare capacity vector) and joules
    per request.  ``budget_rejections`` counts requests that had a feasible
    schedule but were turned away by the
    :class:`~repro.energy.budget.EnergyBudget` admission control.
    """

    outcomes: list[RequestOutcome] = field(default_factory=list)
    timeline: list[ExecutedInterval] = field(default_factory=list)
    total_energy: float = 0.0
    activations: int = 0
    cluster_energy: dict[str, dict[str, float]] = field(default_factory=dict)
    job_energy: dict[str, float] = field(default_factory=dict)
    budget_rejections: int = 0

    # ------------------------------------------------------------------ #
    # Summary queries
    # ------------------------------------------------------------------ #
    @property
    def accepted(self) -> list[RequestOutcome]:
        """Outcomes of admitted requests."""
        return [o for o in self.outcomes if o.accepted]

    @property
    def rejected(self) -> list[RequestOutcome]:
        """Outcomes of rejected requests."""
        return [o for o in self.outcomes if not o.accepted]

    @property
    def acceptance_rate(self) -> float:
        """Fraction of requests that were admitted."""
        return len(self.accepted) / len(self.outcomes) if self.outcomes else 1.0

    @property
    def deadline_misses(self) -> list[RequestOutcome]:
        """Admitted requests that finished after their deadline (should be empty)."""
        return [o for o in self.accepted if o.completion_time is not None and not o.met_deadline]

    @property
    def makespan(self) -> float:
        """End time of the last executed interval."""
        return self.timeline[-1].end if self.timeline else 0.0

    def completion_of(self, request_name: str) -> float | None:
        """Completion time of the named request, if it completed."""
        for outcome in self.outcomes:
            if outcome.name == request_name:
                return outcome.completion_time
        return None

    def energy_between(self, start: float, end: float) -> float:
        """Energy consumed by executed intervals overlapping ``[start, end)``."""
        total = 0.0
        for interval in self.timeline:
            overlap = min(end, interval.end) - max(start, interval.start)
            if overlap <= 0:
                continue
            total += interval.energy * overlap / interval.duration
        return total

    # ------------------------------------------------------------------ #
    # Wire-friendly views
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """SHA-256 digest of every deterministic field of the run.

        Two runs of the same experiment produce the same fingerprint exactly
        when they admitted the same requests, executed the same intervals on
        the same configurations and charged the same energy — the equality
        the gateway uses to prove a remote run matches an in-process one.
        Floats are hashed through ``repr`` so the digest is bit-exact, not
        tolerance-based.
        """
        digest = hashlib.sha256()
        key = (
            repr(self.total_energy),
            self.activations,
            self.budget_rejections,
            tuple(
                (
                    o.name,
                    o.application,
                    repr(o.arrival),
                    repr(o.deadline),
                    o.accepted,
                    repr(o.completion_time),
                    repr(o.energy),
                )
                for o in self.outcomes
            ),
            tuple(
                (repr(i.start), repr(i.end), i.job_configs, repr(i.energy))
                for i in self.timeline
            ),
        )
        digest.update(repr(key).encode("utf-8"))
        return digest.hexdigest()

    def summary(self) -> dict:
        """A JSON-ready summary of the run (the gateway's result payload).

        Carries the aggregate figures plus :meth:`fingerprint`, never the
        full timeline — remote consumers follow the event stream for that.
        """
        return {
            "requests": len(self.outcomes),
            "accepted": len(self.accepted),
            "rejected": len(self.rejected),
            "acceptance_rate": self.acceptance_rate,
            "total_energy": self.total_energy,
            "makespan": self.makespan,
            "activations": self.activations,
            "deadline_misses": len(self.deadline_misses),
            "budget_rejections": self.budget_rejections,
            "cluster_energy": {
                name: dict(entry) for name, entry in sorted(self.cluster_energy.items())
            },
            "fingerprint": self.fingerprint(),
        }
