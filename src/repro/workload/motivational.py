"""The motivational example of the paper (Section III, Tables I and II).

Two synthetic applications :math:`\\lambda_1` and :math:`\\lambda_2` run on a
heterogeneous device with two little and two big cores.  Table II of the paper
lists, for every (little, big) core allocation, the execution time and energy
of a full run; the progress-dependent triples of the paper are simply the full
values scaled by the remaining ratio and therefore do not need to be stored.

The module reproduces the two request scenarios of Table I and exposes the
scheduling problem the runtime manager faces at the interesting activation
point: :math:`t = 1`, when request :math:`\\sigma_2` arrives and
:math:`\\sigma_1` has progressed to 18.87 %.
"""

from __future__ import annotations

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.exceptions import WorkloadError
from repro.platforms import Platform, big_little
from repro.platforms.resources import ResourceVector

#: Progress of sigma1 when sigma2 arrives at t = 1 (Section III): one second
#: of execution in the 2L1B configuration, whose full run takes 5.3 s.  The
#: paper rounds this to 18.87 %.
SIGMA1_PROGRESS_AT_T1 = 1.0 / 5.3

#: Table II of the paper: (little cores, big cores, execution time, energy)
#: for application lambda1.
LAMBDA1_TABLE = (
    (1, 0, 16.8, 7.90),
    (2, 0, 10.3, 7.01),
    (0, 1, 11.2, 18.54),
    (0, 2, 6.3, 17.70),
    (1, 1, 8.1, 10.90),
    (1, 2, 7.9, 10.60),
    (2, 1, 5.3, 8.90),
    (2, 2, 4.7, 11.00),
)

#: Table II of the paper: configurations of application lambda2.
LAMBDA2_TABLE = (
    (1, 0, 10.0, 2.00),
    (2, 0, 7.0, 2.87),
    (0, 1, 5.0, 7.55),
    (0, 2, 3.5, 10.5),
    (1, 1, 3.5, 6.44),
    (1, 2, 3.0, 6.81),
    (2, 1, 3.0, 5.73),
    (2, 2, 2.0, 6.58),
)

#: Table I of the paper: request parameters per scenario.
#: scenario -> job name -> (arrival, absolute deadline)
SCENARIOS = {
    "S1": {"sigma1": (0.0, 9.0), "sigma2": (1.0, 5.0)},
    "S2": {"sigma1": (0.0, 9.0), "sigma2": (1.0, 4.0)},
}

#: Application requested by each scenario job.
REQUEST_APPLICATIONS = {"sigma1": "lambda1", "sigma2": "lambda2"}

#: Index of the 2L1B configuration in both tables (used by examples/tests).
CONFIG_2L1B = 6
#: Index of the 1L1B configuration in both tables.
CONFIG_1L1B = 4
#: Index of the 2L configuration in both tables.
CONFIG_2L = 1


def motivational_platform() -> Platform:
    """The 2-little/2-big device of the motivational example."""
    return big_little(num_little=2, num_big=2, name="motivational-2L2B")


def _build_table(application: str, rows) -> ConfigTable:
    points = [
        OperatingPoint(ResourceVector([little, big]), execution_time, energy)
        for little, big, execution_time, energy in rows
    ]
    return ConfigTable(application, points)


def motivational_tables() -> dict[str, ConfigTable]:
    """Configuration tables of :math:`\\lambda_1` and :math:`\\lambda_2` (Table II)."""
    return {
        "lambda1": _build_table("lambda1", LAMBDA1_TABLE),
        "lambda2": _build_table("lambda2", LAMBDA2_TABLE),
    }


def _jobs_at_t1(scenario: str) -> list[Job]:
    if scenario not in SCENARIOS:
        raise WorkloadError(f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}")
    requests = SCENARIOS[scenario]
    sigma1_arrival, sigma1_deadline = requests["sigma1"]
    sigma2_arrival, sigma2_deadline = requests["sigma2"]
    return [
        Job(
            "sigma1",
            "lambda1",
            arrival=sigma1_arrival,
            deadline=sigma1_deadline,
            remaining_ratio=1.0 - SIGMA1_PROGRESS_AT_T1,
        ),
        Job("sigma2", "lambda2", arrival=sigma2_arrival, deadline=sigma2_deadline),
    ]


def motivational_trace(scenario: str = "S1"):
    """The request trace of one scenario, for the online runtime manager.

    Examples
    --------
    >>> trace = motivational_trace("S1")
    >>> [event.name for event in trace]
    ['sigma1', 'sigma2']
    """
    # Local import: repro.runtime depends on this module's tables.
    from repro.runtime.trace import RequestEvent, RequestTrace

    if scenario not in SCENARIOS:
        raise WorkloadError(f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}")
    return RequestTrace(
        [
            RequestEvent(arrival, REQUEST_APPLICATIONS[name], deadline - arrival, name)
            for name, (arrival, deadline) in SCENARIOS[scenario].items()
        ]
    )


def scenario_s1() -> list[Job]:
    """The jobs of scenario S1 at the activation point ``t = 1``."""
    return _jobs_at_t1("S1")


def scenario_s2() -> list[Job]:
    """The jobs of scenario S2 (tight deadline for sigma2) at ``t = 1``."""
    return _jobs_at_t1("S2")


def motivational_problem(scenario: str = "S1") -> SchedulingProblem:
    """The scheduling problem at ``t = 1`` of the given scenario.

    Examples
    --------
    >>> problem = motivational_problem("S1")
    >>> len(problem.jobs)
    2
    >>> problem.now
    1.0
    """
    return SchedulingProblem(
        motivational_platform(),
        motivational_tables(),
        _jobs_at_t1(scenario),
        now=1.0,
    )


def initial_problem(scenario: str = "S1") -> SchedulingProblem:
    """The scheduling problem at ``t = 0`` (only sigma1 has arrived)."""
    if scenario not in SCENARIOS:
        raise WorkloadError(f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}")
    arrival, deadline = SCENARIOS[scenario]["sigma1"]
    job = Job("sigma1", "lambda1", arrival=arrival, deadline=deadline)
    return SchedulingProblem(
        motivational_platform(), motivational_tables(), [job], now=0.0
    )


#: Reference energies of the three schedules in Fig. 1 of the paper (joules).
FIGURE1_ENERGIES = {
    "fixed_remap_at_start": 16.96,
    "fixed_remap_at_start_and_finish": 15.49,
    "adaptive": 14.63,
}
