"""The full evaluation suite and the Table III census.

Table III of the paper reports how many of the 1676 test cases fall into each
(number of jobs, deadline level) bucket.  :func:`table_iii_census` returns
exactly those counts; :class:`EvaluationSuite` generates (or wraps) the test
cases and offers the filtered views the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.config import ConfigTable
from repro.exceptions import WorkloadError
from repro.platforms.platform import Platform
from repro.platforms.resources import ResourceVector
from repro.workload.testgen import DeadlineLevel, TestCase, TestCaseGenerator

#: Table III of the paper: (deadline level, number of jobs) -> number of tests.
TABLE_III = {
    (DeadlineLevel.WEAK, 1): 15,
    (DeadlineLevel.WEAK, 2): 255,
    (DeadlineLevel.WEAK, 3): 255,
    (DeadlineLevel.WEAK, 4): 230,
    (DeadlineLevel.TIGHT, 1): 35,
    (DeadlineLevel.TIGHT, 2): 340,
    (DeadlineLevel.TIGHT, 3): 340,
    (DeadlineLevel.TIGHT, 4): 206,
}

#: Total number of test cases in the paper's evaluation.
TOTAL_TEST_CASES = 1676


def table_iii_census() -> dict[tuple[DeadlineLevel, int], int]:
    """The exact test-case census of Table III (1676 cases in total)."""
    return dict(TABLE_III)


def scaled_census(
    fraction: float, minimum_per_bucket: int = 1
) -> dict[tuple[DeadlineLevel, int], int]:
    """A down-scaled census for quick experiments and CI benchmarks.

    Every bucket of Table III is multiplied by ``fraction`` (rounded) but kept
    at least at ``minimum_per_bucket`` so every (level, job count) combination
    stays represented.
    """
    if not 0.0 < fraction <= 1.0:
        raise WorkloadError(f"fraction must be in (0, 1], got {fraction}")
    return {
        key: max(minimum_per_bucket, round(count * fraction))
        for key, count in TABLE_III.items()
    }


class EvaluationSuite:
    """A collection of test cases with census and filtering helpers.

    Parameters
    ----------
    cases:
        The test cases of the suite (typically produced by
        :class:`~repro.workload.testgen.TestCaseGenerator`).

    Examples
    --------
    >>> from repro.workload.motivational import motivational_tables
    >>> suite = EvaluationSuite.generate(motivational_tables(), scaled_census(0.01))
    >>> suite.census()[(DeadlineLevel.WEAK, 2)] >= 1
    True
    """

    def __init__(self, cases: Iterable[TestCase]):
        self._cases = tuple(cases)
        if not self._cases:
            raise WorkloadError("an evaluation suite needs at least one test case")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def generate(
        cls,
        tables: Mapping[str, ConfigTable],
        census: Mapping[tuple[DeadlineLevel, int], int] | None = None,
        seed: int = 2020,
    ) -> "EvaluationSuite":
        """Generate a suite from application tables and a census.

        The default census is the full Table III (1676 cases).
        """
        generator = TestCaseGenerator(tables, seed=seed)
        cases = generator.generate_from_census(census or table_iii_census())
        return cls(cases)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def cases(self) -> tuple[TestCase, ...]:
        """All test cases of the suite."""
        return self._cases

    def __len__(self) -> int:
        return len(self._cases)

    def __iter__(self) -> Iterator[TestCase]:
        return iter(self._cases)

    def __getitem__(self, index: int) -> TestCase:
        return self._cases[index]

    # ------------------------------------------------------------------ #
    # Views used by the experiments
    # ------------------------------------------------------------------ #
    def census(self) -> dict[tuple[DeadlineLevel, int], int]:
        """Count the test cases per (deadline level, number of jobs) bucket."""
        counts: dict[tuple[DeadlineLevel, int], int] = {}
        for case in self._cases:
            key = (case.deadline_level, case.num_jobs)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def filtered(
        self,
        deadline_level: DeadlineLevel | None = None,
        num_jobs: int | None = None,
    ) -> list[TestCase]:
        """Test cases matching the given deadline level and/or job count."""
        result = []
        for case in self._cases:
            if deadline_level is not None and case.deadline_level is not deadline_level:
                continue
            if num_jobs is not None and case.num_jobs != num_jobs:
                continue
            result.append(case)
        return result

    def single_application_share(self) -> float:
        """Fraction of test cases whose jobs all run the same application."""
        singles = sum(1 for case in self._cases if case.single_application)
        return singles / len(self._cases)

    def initial_state_share(self) -> float:
        """Fraction of test cases in which every job is still unstarted."""
        initial = sum(
            1
            for case in self._cases
            if all(not job.is_started() for job in case.jobs)
        )
        return initial / len(self._cases)

    def problems(
        self,
        capacity: ResourceVector | Platform,
        tables: Mapping[str, ConfigTable],
        deadline_level: DeadlineLevel | None = None,
        num_jobs: int | None = None,
    ):
        """Yield ``(test case, scheduling problem)`` pairs for a filtered view."""
        for case in self.filtered(deadline_level, num_jobs):
            yield case, case.problem(capacity, tables)
