"""Workloads: the motivational example and the evaluation test-case generator.

* :mod:`repro.workload.motivational` — Tables I and II of the paper (the two
  synthetic applications, scenarios S1/S2 and the 2-little/2-big platform).
* :mod:`repro.workload.testgen` — the Section VI.A test-case generator
  (1–4 jobs, application mixes, progress ratios, weak/tight deadline factors).
* :mod:`repro.workload.suite` — the full 1676-test evaluation suite with the
  Table III census.
"""

from repro.exceptions import WorkloadError
from repro.workload.testgen import TestCase, TestCaseGenerator, DeadlineLevel
from repro.workload.suite import EvaluationSuite, table_iii_census
from repro.workload.motivational import (
    motivational_platform,
    motivational_tables,
    motivational_problem,
    motivational_trace,
    scenario_s1,
    scenario_s2,
)

#: Names accepted by :func:`named_tables`.
TABLE_SETS = ("motivational", "paper", "paper-reduced")


def named_tables(name: str):
    """Build one of the well-known application table sets by name.

    * ``"motivational"`` — Tables I/II of the paper (two synthetic apps).
    * ``"paper"`` — the full DSE-generated operating-point tables.
    * ``"paper-reduced"`` — the DSE tables capped at 8 points per app (the
      size used for the EX-MEM comparison).

    The registry gives declarative specs (batch files, CLI arguments) a
    stable vocabulary without embedding table contents.
    """
    if name == "motivational":
        return motivational_tables()
    if name in ("paper", "paper-reduced"):
        # Local import: the DSE flow is comparatively heavy and only needed
        # when a paper-scale table set is actually requested.
        from repro.dse import paper_operating_points, reduced_tables

        tables = paper_operating_points()
        if name == "paper-reduced":
            tables = reduced_tables(tables, max_points=8)
        return tables
    raise WorkloadError(
        f"unknown table set {name!r}; choose from {sorted(TABLE_SETS)}"
    )


__all__ = [
    "named_tables",
    "TABLE_SETS",
    "TestCase",
    "TestCaseGenerator",
    "DeadlineLevel",
    "EvaluationSuite",
    "table_iii_census",
    "motivational_platform",
    "motivational_tables",
    "motivational_problem",
    "motivational_trace",
    "scenario_s1",
    "scenario_s2",
]
