"""Workloads: the motivational example and the evaluation test-case generator.

* :mod:`repro.workload.motivational` — Tables I and II of the paper (the two
  synthetic applications, scenarios S1/S2 and the 2-little/2-big platform).
* :mod:`repro.workload.testgen` — the Section VI.A test-case generator
  (1–4 jobs, application mixes, progress ratios, weak/tight deadline factors).
* :mod:`repro.workload.suite` — the full 1676-test evaluation suite with the
  Table III census.
"""

from repro.workload.testgen import TestCase, TestCaseGenerator, DeadlineLevel
from repro.workload.suite import EvaluationSuite, table_iii_census
from repro.workload.motivational import (
    motivational_platform,
    motivational_tables,
    motivational_problem,
    scenario_s1,
    scenario_s2,
)

__all__ = [
    "TestCase",
    "TestCaseGenerator",
    "DeadlineLevel",
    "EvaluationSuite",
    "table_iii_census",
    "motivational_platform",
    "motivational_tables",
    "motivational_problem",
    "scenario_s1",
    "scenario_s2",
]
