"""Test-case generation following Section VI.A of the paper.

Every test case is one activation of the runtime manager: a set of one to four
jobs, each characterised by the application it runs, its current progress
ratio and its (absolute) deadline.  The generator reproduces the statistical
recipe of the paper:

* 31.9 % of the test cases consist of requests of a single application
  (uniformly distributed among the applications/input sizes); the remaining
  68.1 % are application mixes.
* In about 22.6 % of the test cases all jobs start in the initial state
  (progress zero).  In all other cases the jobs get a uniformly random
  completed progress in ``[0, 0.9]``, except for the newly arrived job which
  naturally starts in the initial state.
* Deadlines are derived by picking a random configuration of the job's
  application, computing the remaining time with that configuration and
  scaling it by a random factor: 2–6 for *weak* deadlines and 0.6–2 for
  *tight* deadlines.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.config import ConfigTable
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.exceptions import WorkloadError
from repro.platforms.platform import Platform
from repro.platforms.resources import ResourceVector

#: Share of test cases that use a single application for all jobs (Sec. VI.A).
SINGLE_APPLICATION_SHARE = 0.319
#: Share of test cases in which every job is still in its initial state.
INITIAL_STATE_SHARE = 0.226
#: Maximum completed progress of an already running job.
MAX_COMPLETED_PROGRESS = 0.9
#: Deadline scale factor ranges per deadline level.
WEAK_FACTOR_RANGE = (2.0, 6.0)
TIGHT_FACTOR_RANGE = (0.6, 2.0)


class DeadlineLevel(enum.Enum):
    """Deadline tightness of a test case (Sec. VI.A)."""

    WEAK = "weak"
    TIGHT = "tight"

    @property
    def factor_range(self) -> tuple[float, float]:
        """The deadline scale-factor range of this level."""
        return WEAK_FACTOR_RANGE if self is DeadlineLevel.WEAK else TIGHT_FACTOR_RANGE


@dataclass(frozen=True)
class TestCase:
    """One generated runtime-manager activation.

    Attributes
    ----------
    name:
        Unique test-case identifier.
    jobs:
        The jobs of the activation (1–4 of them), all anchored at time 0.
    deadline_level:
        Whether deadlines were drawn from the weak or the tight factor range.
    single_application:
        ``True`` when all jobs run the same application.
    """

    #: Not a pytest test class despite the name.
    __test__ = False

    name: str
    jobs: tuple[Job, ...]
    deadline_level: DeadlineLevel
    single_application: bool

    @property
    def num_jobs(self) -> int:
        """Number of jobs in this activation."""
        return len(self.jobs)

    @property
    def applications(self) -> tuple[str, ...]:
        """The applications of the jobs, in job order."""
        return tuple(job.application for job in self.jobs)

    def problem(
        self, capacity: ResourceVector | Platform, tables: Mapping[str, ConfigTable]
    ) -> SchedulingProblem:
        """Build the :class:`SchedulingProblem` of this test case."""
        return SchedulingProblem(capacity, tables, self.jobs, now=0.0)


class TestCaseGenerator:
    """Random test-case generator implementing the Section VI.A recipe.

    Parameters
    ----------
    tables:
        Application name → configuration table.  Every generated job picks
        one of these applications.
    seed:
        Seed of the internal pseudo-random generator; the same seed always
        yields the same test cases.

    Examples
    --------
    >>> from repro.workload.motivational import motivational_tables
    >>> generator = TestCaseGenerator(motivational_tables(), seed=1)
    >>> case = generator.generate_case(3, DeadlineLevel.WEAK)
    >>> case.num_jobs
    3
    """

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, tables: Mapping[str, ConfigTable], seed: int = 2020):
        if not tables:
            raise WorkloadError("the generator needs at least one application table")
        self._tables = dict(tables)
        self._applications = sorted(self._tables)
        self._rng = random.Random(seed)
        self._counter = 0

    # ------------------------------------------------------------------ #
    # Single test case
    # ------------------------------------------------------------------ #
    def generate_case(
        self, num_jobs: int, deadline_level: DeadlineLevel
    ) -> TestCase:
        """Generate one test case with the given job count and deadline level."""
        if not 1 <= num_jobs:
            raise WorkloadError(f"a test case needs at least one job, got {num_jobs}")
        self._counter += 1
        name = f"tc{self._counter:05d}-{deadline_level.value}-{num_jobs}j"

        single_application = self._rng.random() < SINGLE_APPLICATION_SHARE
        if single_application or len(self._applications) == 1 or num_jobs == 1:
            applications = [self._rng.choice(self._applications)] * num_jobs
            single_application = True
        else:
            # An "application mix" (Sec. VI.A) contains at least two distinct
            # applications; redraw until the sample is a genuine mix.
            applications = [self._rng.choice(self._applications) for _ in range(num_jobs)]
            while len(set(applications)) == 1:
                applications = [
                    self._rng.choice(self._applications) for _ in range(num_jobs)
                ]
            single_application = False

        all_initial = self._rng.random() < INITIAL_STATE_SHARE
        jobs = []
        for index, application in enumerate(applications):
            # The last job is the newly arrived request and is always in its
            # initial state; earlier jobs may have progressed already.
            newly_arrived = index == num_jobs - 1
            if all_initial or newly_arrived:
                completed = 0.0
            else:
                completed = self._rng.uniform(0.0, MAX_COMPLETED_PROGRESS)
            remaining = 1.0 - completed
            deadline = self._draw_deadline(application, remaining, deadline_level)
            jobs.append(
                Job(
                    name=f"{name}-job{index}",
                    application=application,
                    arrival=0.0,
                    deadline=deadline,
                    remaining_ratio=remaining,
                )
            )
        return TestCase(name, tuple(jobs), deadline_level, single_application)

    def _draw_deadline(
        self, application: str, remaining_ratio: float, level: DeadlineLevel
    ) -> float:
        """Deadline = random-configuration remaining time × random level factor."""
        table = self._tables[application]
        point = table[self._rng.randrange(len(table))]
        remaining_time = point.remaining_time(remaining_ratio)
        low, high = level.factor_range
        factor = self._rng.uniform(low, high)
        return remaining_time * factor

    # ------------------------------------------------------------------ #
    # Batches
    # ------------------------------------------------------------------ #
    def generate_batch(
        self, num_cases: int, num_jobs: int, deadline_level: DeadlineLevel
    ) -> list[TestCase]:
        """Generate ``num_cases`` test cases of identical shape."""
        return [self.generate_case(num_jobs, deadline_level) for _ in range(num_cases)]

    def generate_from_census(
        self, census: Mapping[tuple[DeadlineLevel, int], int]
    ) -> list[TestCase]:
        """Generate test cases according to a ``(level, num jobs) → count`` census."""
        cases: list[TestCase] = []
        for (level, num_jobs), count in sorted(
            census.items(), key=lambda item: (item[0][0].value, item[0][1])
        ):
            cases.extend(self.generate_batch(count, num_jobs, level))
        return cases
