"""Scheduling problem instances and schedule validation.

A :class:`SchedulingProblem` bundles everything a scheduler activation needs:
the platform capacity :math:`\\vec{\\Theta}`, the application configuration
tables :math:`c`, the set of unfinished jobs :math:`\\Sigma_{t'}` and the
current time :math:`t'`.  The :meth:`SchedulingProblem.validate` method checks
a candidate schedule against the constraints (2b)–(2e) of the paper and
returns a detailed :class:`ValidationReport`, which the test-suite and the
property-based tests use as the single source of truth for schedule
feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.core.config import ConfigTable

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.optable.table import OpTable
    from repro.optable.view import ProblemView
from repro.core.request import Job
from repro.core.segment import Schedule, TIME_EPSILON
from repro.exceptions import SchedulingError
from repro.platforms.platform import Platform
from repro.platforms.resources import ResourceVector

#: Relative tolerance when checking that a job's progress sums to its ratio.
PROGRESS_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating a schedule against a problem instance.

    The report collects one human-readable message per violated constraint so
    test failures point directly at the broken invariant.
    """

    feasible: bool
    violations: tuple[str, ...] = ()
    energy: float = 0.0

    def __bool__(self) -> bool:
        return self.feasible


class SchedulingProblem:
    """One activation of the runtime manager.

    Parameters
    ----------
    capacity:
        The platform capacity :math:`\\vec{\\Theta}`.  A full
        :class:`~repro.platforms.platform.Platform` may be passed instead; only
        its capacity vector is used.
    tables:
        Mapping from application name to its :class:`ConfigTable`.
    jobs:
        The jobs :math:`\\Sigma_{t'}` to schedule.  Job names must be unique
        and every job's application must have a table.
    now:
        The current time :math:`t'`; all generated segments start at or after
        this time.

    Examples
    --------
    >>> from repro.workload.motivational import motivational_tables, scenario_s1
    >>> from repro.platforms import big_little
    >>> problem = SchedulingProblem(
    ...     big_little(2, 2), motivational_tables(), scenario_s1(), now=0.0)
    >>> problem.job("sigma1").deadline
    9.0
    """

    def __init__(
        self,
        capacity: ResourceVector | Platform,
        tables: Mapping[str, ConfigTable],
        jobs: Iterable[Job],
        now: float = 0.0,
    ):
        if isinstance(capacity, Platform):
            capacity = capacity.capacity
        self._capacity = capacity
        self._tables = dict(tables)
        self._jobs = tuple(jobs)
        self._now = float(now)
        self._jobs_by_name = {}
        self._view = None
        self._check_consistency()

    def _check_consistency(self) -> None:
        if not self._jobs:
            raise SchedulingError("a scheduling problem needs at least one job")
        for job in self._jobs:
            if job.name in self._jobs_by_name:
                raise SchedulingError(f"duplicate job name {job.name!r}")
            self._jobs_by_name[job.name] = job
            if job.application not in self._tables:
                raise SchedulingError(
                    f"job {job.name!r} uses application {job.application!r} "
                    f"which has no configuration table"
                )
            table = self._tables[job.application]
            if table.dimension != len(self._capacity):
                raise SchedulingError(
                    f"table of {job.application!r} has dimension {table.dimension}, "
                    f"platform has {len(self._capacity)}"
                )
            if job.deadline < self._now - TIME_EPSILON:
                raise SchedulingError(
                    f"job {job.name!r} deadline {job.deadline} lies before now={self._now}"
                )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> ResourceVector:
        """The platform capacity :math:`\\vec{\\Theta}`."""
        return self._capacity

    @property
    def tables(self) -> dict[str, ConfigTable]:
        """Application name → configuration table."""
        return dict(self._tables)

    @property
    def jobs(self) -> tuple[Job, ...]:
        """The jobs of this activation."""
        return self._jobs

    @property
    def now(self) -> float:
        """The activation time :math:`t'`."""
        return self._now

    @property
    def horizon(self) -> float:
        """The analysis horizon: the largest absolute deadline."""
        return max(job.deadline for job in self._jobs)

    def job(self, name: str) -> Job:
        """Return the job called ``name``."""
        try:
            return self._jobs_by_name[name]
        except KeyError:
            raise SchedulingError(f"unknown job {name!r}") from None

    def table_for(self, job: Job | str) -> ConfigTable:
        """Return the configuration table of a job (or application name)."""
        application = job.application if isinstance(job, Job) else job
        try:
            return self._tables[application]
        except KeyError:
            raise SchedulingError(f"no table for application {application!r}") from None

    def optable_for(self, job: Job | str) -> "OpTable":
        """The interned columnar table of a job (or application name)."""
        return self.table_for(job).optable

    def view(self) -> "ProblemView":
        """The cached columnar :class:`~repro.optable.view.ProblemView`.

        Built on first access; schedulers use it instead of re-deriving
        capacity-feasible slices and MMKP weight rows per activation.
        """
        if self._view is None:
            from repro.optable.view import ProblemView

            self._view = ProblemView(self)
        return self._view

    def share_view(self, shared) -> "ProblemView":
        """Seed :meth:`view` with cross-activation shared table slices.

        The incremental kernel calls this right after constructing the
        problem, passing the run's
        :class:`~repro.optable.view.SharedSlices` so the capacity-dependent
        slices derived by earlier activations are reused instead of rebuilt.
        A no-op when the view already exists.
        """
        if self._view is None:
            from repro.optable.view import ProblemView

            self._view = ProblemView(self, shared)
        return self._view

    def processing_capacity(self) -> list[float]:
        """The knapsack capacities :math:`\\vec{J}` of Algorithm 1, line 1.

        Per resource type: number of cores times the time from now until the
        latest deadline.
        """
        horizon = self.horizon - self._now
        return [count * horizon for count in self._capacity]

    def with_jobs(self, jobs: Sequence[Job]) -> "SchedulingProblem":
        """Return a copy of the problem with a different job set."""
        return SchedulingProblem(self._capacity, self._tables, jobs, self._now)

    def with_now(self, now: float) -> "SchedulingProblem":
        """Return a copy of the problem re-anchored at a different time."""
        return SchedulingProblem(self._capacity, self._tables, self._jobs, now)

    # ------------------------------------------------------------------ #
    # Validation of the constraints (2b)-(2e)
    # ------------------------------------------------------------------ #
    def validate(self, schedule: Schedule | None) -> ValidationReport:
        """Check a candidate schedule against all paper constraints.

        ``None`` (a rejected request) is reported as infeasible with a single
        explanatory message.
        """
        if schedule is None:
            return ValidationReport(False, ("scheduler returned no schedule",))

        violations: list[str] = []
        dimension = len(self._capacity)

        # Segments must not start before the activation time and must be ordered.
        if schedule and schedule.start < self._now - TIME_EPSILON:
            violations.append(
                f"schedule starts at {schedule.start} before activation time {self._now}"
            )

        # Constraint (2b): per-segment resource usage within capacity.
        for segment in schedule:
            usage = segment.resource_usage(self._tables, dimension)
            if not usage.fits_into(self._capacity):
                violations.append(
                    f"segment [{segment.start:.3f}, {segment.end:.3f}) uses "
                    f"{usage.counts} > capacity {self._capacity.counts}"
                )

        # Constraint (2c): at most one mapping per job per segment.  This is
        # enforced structurally by MappingSegment, but unknown jobs are not.
        known_names = set(self._jobs_by_name)
        for segment in schedule:
            unknown = segment.job_names() - known_names
            if unknown:
                violations.append(
                    f"segment [{segment.start:.3f}, {segment.end:.3f}) maps unknown "
                    f"jobs {sorted(unknown)}"
                )

        # Constraints (2d) and (2e): full completion before the deadline.
        for job in self._jobs:
            progress = schedule.total_progress(job.name, self._tables)
            if abs(progress - job.remaining_ratio) > PROGRESS_TOLERANCE * max(
                1.0, job.remaining_ratio
            ):
                violations.append(
                    f"job {job.name!r} completes {progress:.6f} of required "
                    f"{job.remaining_ratio:.6f}"
                )
            completion = schedule.completion_time(job.name)
            if completion is None:
                if job.remaining_ratio > PROGRESS_TOLERANCE:
                    violations.append(f"job {job.name!r} never appears in the schedule")
            elif completion > job.deadline + 1e-6:
                violations.append(
                    f"job {job.name!r} finishes at {completion:.6f} after deadline "
                    f"{job.deadline:.6f}"
                )

        energy = schedule.total_energy(self._tables)
        return ValidationReport(not violations, tuple(violations), energy)

    def energy_of(self, schedule: Schedule) -> float:
        """Objective (2a) of a schedule for this problem."""
        return schedule.total_energy(self._tables)

    def __repr__(self) -> str:
        return (
            f"SchedulingProblem({len(self._jobs)} jobs, now={self._now}, "
            f"capacity={self._capacity.counts})"
        )
