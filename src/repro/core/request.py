"""Jobs (requests) handled by the runtime manager.

A job is the paper's request :math:`\\sigma = \\langle\\alpha, \\delta, \\lambda,
\\rho\\rangle`: the arrival time, the absolute deadline, the application to run
and the *remaining* progress ratio.  A freshly arrived job has remaining ratio
1.0; a job that already completed 40 % of its work has remaining ratio 0.6
(this matches constraint (2d) of the paper, which requires the schedule to
cover exactly :math:`\\sigma[\\rho]` of a full execution).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import SchedulingError

#: Numerical slack used when comparing progress ratios and times.
RATIO_EPSILON = 1e-9


@dataclass(frozen=True)
class Job:
    """One admitted (or newly arrived) request.

    Parameters
    ----------
    name:
        Unique identifier of the request, e.g. ``"sigma1"``.
    application:
        Name of the application to execute; must match a
        :class:`~repro.core.config.ConfigTable`.
    arrival:
        Arrival time :math:`\\alpha` in seconds.
    deadline:
        Absolute deadline :math:`\\delta` in seconds.
    remaining_ratio:
        Remaining progress ratio :math:`\\rho \\in (0, 1]`; 1.0 for a job that
        has not started yet.

    Examples
    --------
    >>> job = Job("sigma1", "audio_filter", arrival=0.0, deadline=9.0)
    >>> job.completed_ratio
    0.0
    >>> job.with_progress(0.25).remaining_ratio
    0.75
    """

    name: str
    application: str
    arrival: float
    deadline: float
    remaining_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulingError("job name must not be empty")
        if not self.application:
            raise SchedulingError("job application must not be empty")
        if self.deadline < self.arrival:
            raise SchedulingError(
                f"job {self.name!r}: deadline {self.deadline} before arrival {self.arrival}"
            )
        if not (0.0 < self.remaining_ratio <= 1.0 + RATIO_EPSILON):
            raise SchedulingError(
                f"job {self.name!r}: remaining ratio must be in (0, 1], got {self.remaining_ratio}"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def completed_ratio(self) -> float:
        """The share of work already completed (``1 - remaining_ratio``)."""
        return max(0.0, 1.0 - self.remaining_ratio)

    def laxity(self, now: float) -> float:
        """Absolute time budget left at time ``now`` (may be negative)."""
        return self.deadline - now

    def is_started(self) -> bool:
        """Return ``True`` iff the job has made progress already."""
        return self.remaining_ratio < 1.0 - RATIO_EPSILON

    # ------------------------------------------------------------------ #
    # Functional updates (jobs are immutable)
    # ------------------------------------------------------------------ #
    def with_progress(self, additional_ratio: float) -> "Job":
        """Return a copy of the job after completing ``additional_ratio`` more work.

        Raises
        ------
        SchedulingError
            If the additional progress exceeds the remaining work by more than
            a numerical epsilon.
        """
        if additional_ratio < -RATIO_EPSILON:
            raise SchedulingError("additional progress must be non-negative")
        new_remaining = self.remaining_ratio - additional_ratio
        if new_remaining < -RATIO_EPSILON:
            raise SchedulingError(
                f"job {self.name!r}: progress {additional_ratio} exceeds remaining "
                f"{self.remaining_ratio}"
            )
        new_remaining = min(1.0, max(new_remaining, RATIO_EPSILON))
        return replace(self, remaining_ratio=new_remaining)

    def with_remaining(self, remaining_ratio: float) -> "Job":
        """Return a copy of the job with the remaining ratio replaced."""
        return replace(self, remaining_ratio=remaining_ratio)

    def is_finished(self, tolerance: float = 1e-6) -> bool:
        """Return ``True`` iff the remaining work is numerically negligible."""
        return self.remaining_ratio <= tolerance
