"""Core data model of the runtime resource manager.

This package contains the entities of Section IV of the paper:

* :class:`OperatingPoint` — one configuration :math:`c^j_\\lambda =
  \\langle\\vec{\\theta}, \\tau, \\xi\\rangle` of an application.
* :class:`ConfigTable` — the Pareto-filtered set of operating points of one
  application (one row group of Table II).
* :class:`Job` — a request :math:`\\sigma = \\langle\\alpha, \\delta, \\lambda,
  \\rho\\rangle` (arrival, absolute deadline, application, remaining ratio).
* :class:`JobMapping` / :class:`MappingSegment` / :class:`Schedule` — the
  schedule :math:`\\kappa = \\{\\mu_i \\times \\Delta_{\\mu_i}\\}` made of
  consecutive mapping segments.
* :class:`SchedulingProblem` — a full problem instance (platform capacity,
  application table, job set, current time) together with a validator for the
  constraints (2b)–(2e) and the energy objective (2a).
"""

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.core.problem import SchedulingProblem, ValidationReport

__all__ = [
    "OperatingPoint",
    "ConfigTable",
    "Job",
    "JobMapping",
    "MappingSegment",
    "Schedule",
    "SchedulingProblem",
    "ValidationReport",
]
