"""Operating points and per-application configuration tables.

An *operating point* (the paper's configuration :math:`c^j_\\lambda`) tells the
runtime manager that application :math:`\\lambda`, when given the resources
:math:`\\vec{\\theta}`, finishes a full execution in :math:`\\tau` seconds and
consumes :math:`\\xi` joules.  The table of operating points of one application
is produced at design time (by the DSE in :mod:`repro.dse` or by direct
benchmarking) and is assumed to be Pareto-filtered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.platforms.resources import ResourceVector

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.optable.table import OpTable


@dataclass(frozen=True)
class OperatingPoint:
    """One configuration :math:`c^j_\\lambda = \\langle\\vec{\\theta}, \\tau, \\xi\\rangle`.

    Parameters
    ----------
    resources:
        Core demand per resource type (:math:`\\vec{\\theta}`).
    execution_time:
        Worst-case execution time :math:`\\tau` in seconds of a *full* run of
        the application with this configuration.
    energy:
        Energy :math:`\\xi` in joules of a full run with this configuration.
    frequency_scale:
        Relative platform frequency the point was characterised at (the
        frequency column of DVFS-swept tables).  1.0 — the default, and the
        only value the paper's pinned-frequency tables use — means the
        nominal operating frequencies; a point at 0.8 was simulated with
        every cluster re-pinned to the slowest OPP sustaining 80 % speed.

    Examples
    --------
    >>> point = OperatingPoint(ResourceVector([2, 1]), execution_time=5.3, energy=8.9)
    >>> point.remaining_time(0.5)
    2.65
    """

    resources: ResourceVector
    execution_time: float
    energy: float
    frequency_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.execution_time <= 0:
            raise ConfigurationError(
                f"execution time must be positive, got {self.execution_time}"
            )
        if self.energy < 0:
            raise ConfigurationError(f"energy must be non-negative, got {self.energy}")
        if self.frequency_scale <= 0:
            raise ConfigurationError(
                f"frequency scale must be positive, got {self.frequency_scale}"
            )
        if self.resources.is_zero():
            raise ConfigurationError("an operating point must use at least one core")

    # ------------------------------------------------------------------ #
    # Derived quantities used by the schedulers
    # ------------------------------------------------------------------ #
    @property
    def power(self) -> float:
        """Average power in watts while running with this configuration."""
        return self.energy / self.execution_time

    def remaining_time(self, remaining_ratio: float) -> float:
        """Seconds needed to finish the remaining ``remaining_ratio`` of the job."""
        _check_ratio(remaining_ratio)
        return self.execution_time * remaining_ratio

    def remaining_energy(self, remaining_ratio: float) -> float:
        """Joules needed to finish the remaining ``remaining_ratio`` of the job."""
        _check_ratio(remaining_ratio)
        return self.energy * remaining_ratio

    def progress_of(self, duration: float) -> float:
        """Progress ratio achieved by running ``duration`` seconds in this point."""
        if duration < 0:
            raise ConfigurationError("duration must be non-negative")
        return duration / self.execution_time

    def dominates(self, other: "OperatingPoint", tolerance: float = 1e-12) -> bool:
        """Pareto dominance: no worse in every dimension, strictly better in one.

        The dimensions are the per-type resource demands, the execution time
        and the energy (all minimised).
        """
        if len(self.resources) != len(other.resources):
            raise ConfigurationError("operating points of different platform dimension")
        no_worse = (
            all(a <= b for a, b in zip(self.resources, other.resources))
            and self.execution_time <= other.execution_time + tolerance
            and self.energy <= other.energy + tolerance
        )
        strictly_better = (
            any(a < b for a, b in zip(self.resources, other.resources))
            or self.execution_time < other.execution_time - tolerance
            or self.energy < other.energy - tolerance
        )
        return no_worse and strictly_better


def _check_ratio(ratio: float) -> None:
    if not 0.0 <= ratio <= 1.0:
        raise ConfigurationError(f"progress ratio must be in [0, 1], got {ratio}")


class ConfigTable:
    """The Pareto-filtered operating points of one application.

    The table preserves insertion order; the index of a point in the table is
    the configuration identifier ``j`` used by job mappings and schedules.

    Parameters
    ----------
    application:
        Name of the application the table describes.
    points:
        The operating points.  Set ``pareto_filter=True`` to drop dominated
        points on construction (dropping preserves the relative order of the
        surviving points).

    Examples
    --------
    >>> from repro.platforms import ResourceVector
    >>> table = ConfigTable("app", [
    ...     OperatingPoint(ResourceVector([1, 0]), 10.0, 2.0),
    ...     OperatingPoint(ResourceVector([0, 1]), 5.0, 7.5),
    ... ])
    >>> len(table)
    2
    >>> table.most_efficient().energy
    2.0
    """

    def __init__(
        self,
        application: str,
        points: Iterable[OperatingPoint],
        pareto_filter: bool = False,
    ):
        if not application:
            raise ConfigurationError("application name must not be empty")
        point_list = list(points)
        if not point_list:
            raise ConfigurationError(f"application {application!r} has no operating points")
        dimensions = {len(p.resources) for p in point_list}
        if len(dimensions) != 1:
            raise ConfigurationError(
                f"operating points of {application!r} have mixed dimensions {dimensions}"
            )
        if pareto_filter:
            point_list = pareto_filter_points(point_list)
        self._application = application
        self._points = tuple(point_list)
        self._optable = None

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def application(self) -> str:
        """Name of the application this table belongs to."""
        return self._application

    @property
    def points(self) -> tuple[OperatingPoint, ...]:
        """All operating points in configuration-index order."""
        return self._points

    @property
    def optable(self) -> "OpTable":
        """The interned columnar twin of this table (:mod:`repro.optable`).

        Built lazily on first access and shared — via content fingerprinting
        — with every other table holding the same points, so per-table
        aggregates (sort orders, minima, Pareto index) are computed once per
        process rather than once per job per scheduler activation.
        """
        if self._optable is None:
            from repro.optable.table import as_optable

            self._optable = as_optable(self._points)
        return self._optable

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __getitem__(self, config_index: int) -> OperatingPoint:
        try:
            return self._points[config_index]
        except IndexError:
            raise ConfigurationError(
                f"application {self._application!r} has no configuration {config_index}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigTable):
            return NotImplemented
        return self._application == other._application and self._points == other._points

    def __repr__(self) -> str:
        return f"ConfigTable({self._application!r}, {len(self._points)} points)"

    # ------------------------------------------------------------------ #
    # Queries used by the schedulers
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Number of resource types the points refer to."""
        return len(self._points[0].resources)

    def indices(self) -> range:
        """The valid configuration indices ``j``."""
        return range(len(self._points))

    def most_efficient(self) -> OperatingPoint:
        """The point with the lowest energy."""
        return self._points[self.optable.argmin_energy]

    def fastest(self) -> OperatingPoint:
        """The point with the lowest execution time."""
        return self._points[self.optable.argmin_time]

    def fastest_fitting(self, capacity: ResourceVector) -> OperatingPoint | None:
        """The fastest point whose demand fits ``capacity``, or ``None``."""
        table = self.optable
        if len(capacity) != table.dimension:
            # Raise the platform's dimension error, exactly as the seed did.
            self._points[0].resources.fits_into(capacity)
        times = table.times
        best_index = -1
        for index in table.fitting_indices(capacity):
            if best_index < 0 or times[index] < times[best_index]:
                best_index = index
        return self._points[best_index] if best_index >= 0 else None

    def feasible_indices(
        self,
        capacity: ResourceVector,
        remaining_ratio: float,
        time_budget: float,
    ) -> list[int]:
        """Indices of points that fit ``capacity`` and can finish within ``time_budget``."""
        _check_ratio(remaining_ratio)
        table = self.optable
        if len(capacity) != table.dimension:
            self._points[0].resources.fits_into(capacity)
        capacity_counts = tuple(capacity)
        times = table.times
        result = []
        for index, row in enumerate(table.resources):
            if any(r > c for r, c in zip(row, capacity_counts)):
                continue
            if times[index] * remaining_ratio > time_budget + 1e-12:
                continue
            result.append(index)
        return result

    def is_pareto_optimal(self) -> bool:
        """Return ``True`` iff no point of the table dominates another."""
        for i, a in enumerate(self._points):
            for j, b in enumerate(self._points):
                if i != j and a.dominates(b):
                    return False
        return True


def pareto_filter_points(points: Sequence[OperatingPoint]) -> list[OperatingPoint]:
    """Return the non-dominated subset of ``points``, preserving order.

    When two points are exactly identical in all dimensions only the first one
    is kept.  Dominance matches :meth:`OperatingPoint.dominates` — exact
    comparison on the integer resource demands, a small slack on time and
    energy — evaluated through the incremental Pareto engine of
    :mod:`repro.optable` instead of the seed's O(n²) pairwise scan.
    """
    from repro.optable.frontier import pareto_select
    from repro.optable.table import POINT_TOLERANCE

    point_list = list(points)
    if not point_list:
        return []
    dimension = len(point_list[0].resources)
    if any(len(p.resources) != dimension for p in point_list):
        raise ConfigurationError("operating points of different platform dimension")
    vectors = [
        tuple(p.resources) + (p.execution_time, p.energy) for p in point_list
    ]
    tolerances = (0.0,) * dimension + (POINT_TOLERANCE, POINT_TOLERANCE)
    return [point_list[index] for index in pareto_select(vectors, tolerances)]
