"""Mapping segments and schedules.

A schedule :math:`\\kappa` is a list of *mapping segments*.  Each segment owns
a half-open time interval :math:`[\\mathrm{start}, \\mathrm{end})` and a
mapping :math:`\\mu`: the set of job mappings active during that interval.  A
job mapping :math:`\\nu = \\langle\\sigma, \\lambda, j\\rangle` states that job
:math:`\\sigma` runs its application with configuration index ``j`` during the
segment.  Jobs not mentioned in a segment are suspended for its duration —
this is exactly how the adaptive mapper of the motivational example suspends
:math:`\\sigma_1` while :math:`\\sigma_2` occupies the platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.request import Job
from repro.exceptions import SchedulingError
from repro.optable.runtime import columnar_enabled
from repro.platforms.resources import ResourceVector

#: Numerical slack for time comparisons (seconds).
TIME_EPSILON = 1e-9


@dataclass(frozen=True)
class JobMapping:
    """One job running one configuration within a segment (:math:`\\nu`)."""

    job: Job
    config_index: int

    def __post_init__(self) -> None:
        if self.config_index < 0:
            raise SchedulingError("configuration index must be non-negative")

    @property
    def job_name(self) -> str:
        """Name of the mapped job."""
        return self.job.name

    @property
    def application(self) -> str:
        """Application executed by the mapped job."""
        return self.job.application

    def operating_point(self, tables: Mapping[str, ConfigTable]) -> OperatingPoint:
        """Resolve the configuration index against the application tables."""
        try:
            table = tables[self.application]
        except KeyError:
            raise SchedulingError(
                f"no configuration table for application {self.application!r}"
            ) from None
        return table[self.config_index]


class MappingSegment:
    """One segment :math:`\\mu \\times \\Delta_\\mu` of a schedule.

    Parameters
    ----------
    start, end:
        Boundaries of the half-open interval :math:`[\\mathrm{start},
        \\mathrm{end})`; ``end`` must be strictly greater than ``start``.
    mappings:
        The job mappings active during the segment.  At most one mapping per
        job is allowed (constraint (2c)).
    """

    def __init__(self, start: float, end: float, mappings: Iterable[JobMapping] = ()):
        if end <= start + TIME_EPSILON:
            raise SchedulingError(
                f"segment end {end} must be greater than start {start}"
            )
        mapping_list = tuple(mappings)
        names = [m.job_name for m in mapping_list]
        if len(set(names)) != len(names):
            raise SchedulingError(f"duplicate job mappings in segment: {names}")
        self._start = float(start)
        self._end = float(end)
        self._mappings = mapping_list

    @classmethod
    def _trusted(
        cls, start: float, end: float, mappings: tuple[JobMapping, ...]
    ) -> "MappingSegment":
        """Construct without validation (internal fast paths only).

        The caller guarantees the constructor invariants: ``end > start +
        TIME_EPSILON``, at most one mapping per job, float boundaries.  The
        columnar EDF packer maintains them structurally and materialises its
        final segments through here.
        """
        segment = cls.__new__(cls)
        segment._start = start
        segment._end = end
        segment._mappings = mappings
        return segment

    # ------------------------------------------------------------------ #
    # Interval accessors
    # ------------------------------------------------------------------ #
    @property
    def start(self) -> float:
        """Begin of the segment interval."""
        return self._start

    @property
    def end(self) -> float:
        """End of the segment interval (exclusive)."""
        return self._end

    @property
    def duration(self) -> float:
        """Length :math:`|\\Delta_\\mu|` of the segment in seconds."""
        return self._end - self._start

    @property
    def mappings(self) -> tuple[JobMapping, ...]:
        """The job mappings active in the segment."""
        return self._mappings

    def __len__(self) -> int:
        return len(self._mappings)

    def __iter__(self) -> Iterator[JobMapping]:
        return iter(self._mappings)

    def __repr__(self) -> str:
        jobs = ", ".join(f"{m.job_name}:c{m.config_index}" for m in self._mappings)
        return f"MappingSegment([{self._start:.3f}, {self._end:.3f}), {{{jobs}}})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MappingSegment):
            return NotImplemented
        return (
            abs(self._start - other._start) <= TIME_EPSILON
            and abs(self._end - other._end) <= TIME_EPSILON
            and set((m.job_name, m.config_index) for m in self._mappings)
            == set((m.job_name, m.config_index) for m in other._mappings)
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def job_names(self) -> set[str]:
        """Names of the jobs mapped in the segment."""
        return {m.job_name for m in self._mappings}

    def mapping_for(self, job_name: str) -> JobMapping | None:
        """The mapping of ``job_name`` in the segment, or ``None`` if suspended."""
        for mapping in self._mappings:
            if mapping.job_name == job_name:
                return mapping
        return None

    def resource_usage(
        self, tables: Mapping[str, ConfigTable], dimension: int
    ) -> ResourceVector:
        """Total core demand of the segment (left side of constraint (2b))."""
        return ResourceVector.sum(
            [m.operating_point(tables).resources for m in self._mappings], dimension
        )

    def energy(self, tables: Mapping[str, ConfigTable]) -> float:
        """Energy consumed during the segment (one summand of objective (2a))."""
        if columnar_enabled():
            duration = self._end - self._start
            total = 0.0
            for mapping in self._mappings:
                try:
                    table = tables[mapping.application].optable
                except KeyError:
                    raise SchedulingError(
                        f"no configuration table for application "
                        f"{mapping.application!r}"
                    ) from None
                config_index = mapping.config_index
                total += (
                    table.energies[config_index]
                    * duration
                    / table.times[config_index]
                )
            return total
        total = 0.0
        for mapping in self._mappings:
            point = mapping.operating_point(tables)
            total += point.energy * self.duration / point.execution_time
        return total

    def progress_of(self, job_name: str, tables: Mapping[str, ConfigTable]) -> float:
        """Progress ratio the named job achieves during this segment."""
        mapping = self.mapping_for(job_name)
        if mapping is None:
            return 0.0
        point = mapping.operating_point(tables)
        return self.duration / point.execution_time

    # ------------------------------------------------------------------ #
    # Functional updates used by the EDF packer
    # ------------------------------------------------------------------ #
    def with_mapping(self, mapping: JobMapping) -> "MappingSegment":
        """Return a copy of the segment with ``mapping`` added."""
        if self.mapping_for(mapping.job_name) is not None:
            raise SchedulingError(
                f"job {mapping.job_name!r} is already mapped in this segment"
            )
        return MappingSegment(self._start, self._end, self._mappings + (mapping,))

    def split_at(self, time: float) -> tuple["MappingSegment", "MappingSegment"]:
        """Split the segment into two consecutive segments at ``time``.

        Both halves carry the same job mappings; the caller is responsible for
        adding/removing mappings afterwards (Algorithm 2, line 13).
        """
        if not (self._start + TIME_EPSILON < time < self._end - TIME_EPSILON):
            raise SchedulingError(
                f"split time {time} outside open interval ({self._start}, {self._end})"
            )
        first = MappingSegment(self._start, time, self._mappings)
        second = MappingSegment(time, self._end, self._mappings)
        return first, second


class Schedule:
    """An ordered list of consecutive mapping segments (:math:`\\kappa`).

    The class enforces that segments are sorted by start time; contiguity is
    checked by :meth:`is_contiguous` and by the problem validator rather than
    at construction time, because intermediate schedules built by the EDF
    packer legitimately contain gaps until later jobs fill them.
    """

    def __init__(self, segments: Iterable[MappingSegment] = ()):
        ordered = sorted(segments, key=lambda s: s.start)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.end - TIME_EPSILON:
                raise SchedulingError(
                    f"overlapping segments: [{earlier.start}, {earlier.end}) and "
                    f"[{later.start}, {later.end})"
                )
        self._segments = tuple(ordered)

    @classmethod
    def _trusted(cls, segments: tuple[MappingSegment, ...]) -> "Schedule":
        """Construct from segments already sorted and disjoint (fast paths).

        The columnar EDF packer keeps its working list in start-time order
        with pairwise-disjoint intervals at all times, so the sort and the
        overlap scan of the public constructor are redundant there.
        """
        schedule = cls.__new__(cls)
        schedule._segments = segments
        return schedule

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def segments(self) -> tuple[MappingSegment, ...]:
        """The segments in ascending time order."""
        return self._segments

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[MappingSegment]:
        return iter(self._segments)

    def __getitem__(self, index: int) -> MappingSegment:
        return self._segments[index]

    def __bool__(self) -> bool:
        return bool(self._segments)

    def __repr__(self) -> str:
        return f"Schedule({len(self._segments)} segments, end={self.end:.3f})" if self._segments else "Schedule(empty)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._segments == other._segments

    # ------------------------------------------------------------------ #
    # Global queries
    # ------------------------------------------------------------------ #
    @property
    def start(self) -> float:
        """Start time of the first segment (0.0 for an empty schedule)."""
        return self._segments[0].start if self._segments else 0.0

    @property
    def end(self) -> float:
        """End time of the last segment (0.0 for an empty schedule)."""
        return self._segments[-1].end if self._segments else 0.0

    @property
    def makespan(self) -> float:
        """Total time span covered by the schedule."""
        return self.end - self.start if self._segments else 0.0

    def job_names(self) -> set[str]:
        """Names of all jobs appearing anywhere in the schedule."""
        names: set[str] = set()
        for segment in self._segments:
            names |= segment.job_names()
        return names

    def is_contiguous(self) -> bool:
        """Return ``True`` iff consecutive segments share their boundary."""
        for earlier, later in zip(self._segments, self._segments[1:]):
            if abs(later.start - earlier.end) > 1e-6:
                return False
        return True

    def segments_of(self, job_name: str) -> list[MappingSegment]:
        """All segments in which ``job_name`` is mapped."""
        return [s for s in self._segments if s.mapping_for(job_name) is not None]

    def completion_time(self, job_name: str) -> float | None:
        """Finish time of ``job_name`` (end of its last segment), or ``None``."""
        own = self.segments_of(job_name)
        return own[-1].end if own else None

    def total_energy(self, tables: Mapping[str, ConfigTable]) -> float:
        """The objective (2a): total energy of the schedule in joules."""
        return sum(segment.energy(tables) for segment in self._segments)

    def total_progress(self, job_name: str, tables: Mapping[str, ConfigTable]) -> float:
        """Total progress ratio the named job achieves over the whole schedule."""
        return sum(s.progress_of(job_name, tables) for s in self._segments)

    def configuration_changes(self, job_name: str) -> int:
        """Number of times the named job switches configuration (or resumes)."""
        indices = [
            s.mapping_for(job_name).config_index
            for s in self._segments
            if s.mapping_for(job_name) is not None
        ]
        return sum(1 for a, b in zip(indices, indices[1:]) if a != b)

    # ------------------------------------------------------------------ #
    # Functional updates
    # ------------------------------------------------------------------ #
    def with_segment(self, segment: MappingSegment) -> "Schedule":
        """Return a copy of the schedule with ``segment`` added."""
        return Schedule(self._segments + (segment,))

    def replace_segment(
        self, old: MappingSegment, new: Sequence[MappingSegment]
    ) -> "Schedule":
        """Return a copy with ``old`` replaced by the segments in ``new``."""
        remaining = [s for s in self._segments if s is not old]
        if len(remaining) == len(self._segments):
            raise SchedulingError("segment to replace is not part of the schedule")
        return Schedule(tuple(remaining) + tuple(new))

    def truncated_before(self, time: float) -> "Schedule":
        """Return the part of the schedule at or after ``time``.

        Segments that straddle ``time`` are cut; segments that end before
        ``time`` are dropped.  Used by the runtime manager when a new request
        arrives in the middle of a previously computed schedule.
        """
        kept: list[MappingSegment] = []
        for segment in self._segments:
            if segment.end <= time + TIME_EPSILON:
                continue
            if segment.start >= time - TIME_EPSILON:
                kept.append(segment)
            else:
                kept.append(MappingSegment(time, segment.end, segment.mappings))
        return Schedule(kept)

    def truncated_after(self, time: float) -> "Schedule":
        """Return the part of the schedule strictly before ``time``."""
        kept: list[MappingSegment] = []
        for segment in self._segments:
            if segment.start >= time - TIME_EPSILON:
                continue
            if segment.end <= time + TIME_EPSILON:
                kept.append(segment)
            else:
                kept.append(MappingSegment(segment.start, time, segment.mappings))
        return Schedule(kept)
