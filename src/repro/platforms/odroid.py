"""Model of the Hardkernel Odroid XU4 board used in the paper.

The board features a Samsung Exynos 5422 big.LITTLE SoC with four Cortex-A15
cores (pinned to 1.8 GHz in the paper) and four Cortex-A7 cores (pinned to
1.5 GHz).  The paper measured power with a ZES Zimmer LMG450 analyzer; here we
substitute published per-core figures for the Exynos 5422 at those
frequencies: an A15 at 1.8 GHz draws roughly 1.4–1.8 W fully loaded while an
A7 at 1.5 GHz draws roughly 0.25–0.4 W, and the A15 delivers roughly 1.9–2.2×
the single-thread performance of the A7.  The exact constants matter only for
the *ratios* in the generated operating-point tables, which is what the
scheduling experiments are sensitive to.
"""

from __future__ import annotations

from repro.platforms.platform import Platform
from repro.platforms.power import PowerModel
from repro.platforms.processor import ProcessorType

#: Published-figure substitutes for the LMG450 power measurements (watts).
A7_STATIC_WATTS = 0.05
A7_DYNAMIC_WATTS = 0.30
A15_STATIC_WATTS = 0.20
A15_DYNAMIC_WATTS = 1.40

#: Single-thread performance of an A15 @1.8 GHz relative to an A7 @1.5 GHz.
A15_PERFORMANCE_FACTOR = 2.1
A7_PERFORMANCE_FACTOR = 1.0

A7_FREQUENCY_HZ = 1.5e9
A15_FREQUENCY_HZ = 1.8e9


def odroid_xu4(dvfs: bool = True) -> Platform:
    """Return the Odroid XU4 platform model (4×A7 "little" + 4×A15 "big").

    The little cluster is resource type 0 and the big cluster resource type 1,
    matching the ``#L`` / ``#B`` column order of Table II in the paper.  With
    ``dvfs=True`` (the default) every cluster carries its Exynos-5422-style
    OPP ladder as metadata; the nominal frequencies stay pinned as in the
    paper, so this changes nothing unless a frequency governor or an OPP
    sweep is explicitly enabled.

    Examples
    --------
    >>> platform = odroid_xu4()
    >>> platform.capacity.counts
    (4, 4)
    """
    little = ProcessorType(
        name="A7",
        frequency_hz=A7_FREQUENCY_HZ,
        performance_factor=A7_PERFORMANCE_FACTOR,
        power=PowerModel(A7_STATIC_WATTS, A7_DYNAMIC_WATTS),
    )
    big = ProcessorType(
        name="A15",
        frequency_hz=A15_FREQUENCY_HZ,
        performance_factor=A15_PERFORMANCE_FACTOR,
        power=PowerModel(A15_STATIC_WATTS, A15_DYNAMIC_WATTS),
    )
    if dvfs:
        # Imported lazily: repro.energy.opp reads this module's constants at
        # import time, so a module-level import here would be cyclic.
        from repro.energy.opp import exynos5422_ladders

        ladders = exynos5422_ladders(little=little, big=big)
        little = little.with_opps(ladders["A7"])
        big = big.with_opps(ladders["A15"])
    return Platform(name="odroid-xu4", processor_types=[little, big], core_counts=[4, 4])
