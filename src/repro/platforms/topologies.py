"""Convenience builders for platforms other than the Odroid XU4.

The paper evaluates only on the Odroid, but the motivational example uses a
smaller 2-little/2-big device and the library is meant to be reusable for
other heterogeneous platforms, so we provide parametrised builders.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import PlatformError
from repro.platforms.platform import Platform
from repro.platforms.power import PowerModel
from repro.platforms.processor import ProcessorType


def big_little(
    num_little: int = 4,
    num_big: int = 4,
    name: str | None = None,
    little_performance: float = 1.0,
    big_performance: float = 2.1,
) -> Platform:
    """Return a generic big.LITTLE platform.

    Parameters
    ----------
    num_little, num_big:
        Core counts of the two clusters (both must be positive).
    name:
        Optional platform name; defaults to ``"big-little-<L>L<B>B"``.
    little_performance, big_performance:
        Relative single-thread performance of the two core types.

    Examples
    --------
    >>> big_little(2, 2).capacity.counts
    (2, 2)
    """
    if num_little <= 0 or num_big <= 0:
        raise PlatformError("big.LITTLE platform needs at least one core per cluster")
    little = ProcessorType(
        name="little",
        frequency_hz=1.5e9,
        performance_factor=little_performance,
        power=PowerModel(0.05, 0.30),
    )
    big = ProcessorType(
        name="big",
        frequency_hz=1.8e9,
        performance_factor=big_performance,
        power=PowerModel(0.20, 1.40),
    )
    platform_name = name or f"big-little-{num_little}L{num_big}B"
    return Platform(platform_name, [little, big], [num_little, num_big])


def homogeneous(
    num_cores: int = 8,
    name: str = "homogeneous",
    frequency_hz: float = 2.0e9,
    performance: float = 1.0,
    static_watts: float = 0.1,
    dynamic_watts: float = 0.8,
) -> Platform:
    """Return a platform with a single core type.

    Useful for checking that the schedulers degrade gracefully to the
    single-resource-type (classic multiprocessor) case.
    """
    if num_cores <= 0:
        raise PlatformError("homogeneous platform needs at least one core")
    core = ProcessorType(
        name="core",
        frequency_hz=frequency_hz,
        performance_factor=performance,
        power=PowerModel(static_watts, dynamic_watts),
    )
    return Platform(name, [core], [num_cores])


def generic_heterogeneous(
    cluster_sizes: Sequence[int],
    performance_factors: Sequence[float] | None = None,
    name: str = "heterogeneous",
) -> Platform:
    """Return a platform with an arbitrary number of clusters.

    Each cluster becomes one resource type.  Performance factors default to a
    geometric progression (1.0, 1.6, 2.56, ...), and power scales with
    performance so that faster clusters are less energy-proportional — the
    same qualitative trade-off as big.LITTLE.

    Parameters
    ----------
    cluster_sizes:
        Number of cores in each cluster; at least one cluster is required.
    performance_factors:
        Optional explicit relative performance per cluster.
    name:
        Platform name.
    """
    sizes = [int(s) for s in cluster_sizes]
    if not sizes:
        raise PlatformError("at least one cluster is required")
    if performance_factors is None:
        performance_factors = [1.6**i for i in range(len(sizes))]
    factors = [float(f) for f in performance_factors]
    if len(factors) != len(sizes):
        raise PlatformError("one performance factor per cluster is required")

    types = []
    for index, (size, factor) in enumerate(zip(sizes, factors)):
        if size <= 0:
            raise PlatformError("cluster sizes must be positive")
        # Power grows super-linearly with performance: the classic reason why
        # heterogeneous platforms save energy in the first place.
        power = PowerModel(static_watts=0.05 * factor, dynamic_watts=0.3 * factor**1.7)
        types.append(
            ProcessorType(
                name=f"cluster{index}",
                frequency_hz=1.5e9 * factor,
                performance_factor=factor,
                power=power,
            )
        )
    return Platform(name, types, sizes)
