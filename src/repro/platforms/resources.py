"""Integer resource vectors.

A :class:`ResourceVector` represents either the capacity of a platform
(:math:`\\vec{\\Theta}` in the paper — how many cores of each type exist) or the
demand of an operating point (:math:`\\vec{\\theta}` — how many cores of each
type a configuration uses).  The vector is immutable and supports the small
amount of arithmetic the schedulers need: addition, subtraction, scaling and
component-wise comparison.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import PlatformError


class ResourceVector:
    """Immutable vector of non-negative integers, one entry per resource type.

    Parameters
    ----------
    counts:
        Core count per resource type.  The order of entries must match the
        order of processor types of the platform the vector refers to.

    Examples
    --------
    >>> demand = ResourceVector([2, 1])
    >>> capacity = ResourceVector([4, 4])
    >>> demand.fits_into(capacity)
    True
    >>> (capacity - demand).counts
    (2, 3)
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Iterable[int]):
        values = tuple(int(c) for c in counts)
        if any(c < 0 for c in values):
            raise PlatformError(f"resource counts must be non-negative, got {values}")
        self._counts = values

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    @property
    def counts(self) -> tuple[int, ...]:
        """The underlying tuple of counts."""
        return self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[int]:
        return iter(self._counts)

    def __getitem__(self, index: int) -> int:
        return self._counts[index]

    def __hash__(self) -> int:
        return hash(self._counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResourceVector):
            return self._counts == other._counts
        if isinstance(other, (tuple, list)):
            return self._counts == tuple(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"ResourceVector({list(self._counts)})"

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def _check_compatible(self, other: "ResourceVector") -> None:
        if len(self) != len(other):
            raise PlatformError(
                f"resource vectors of different dimension: {len(self)} vs {len(other)}"
            )

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        self._check_compatible(other)
        return ResourceVector(a + b for a, b in zip(self._counts, other._counts))

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        self._check_compatible(other)
        diff = [a - b for a, b in zip(self._counts, other._counts)]
        if any(d < 0 for d in diff):
            raise PlatformError(f"resource subtraction would go negative: {diff}")
        return ResourceVector(diff)

    def saturating_sub(self, other: "ResourceVector") -> "ResourceVector":
        """Subtract ``other`` clamping every component at zero."""
        self._check_compatible(other)
        return ResourceVector(max(0, a - b) for a, b in zip(self._counts, other._counts))

    def scaled(self, factor: int) -> "ResourceVector":
        """Return the vector with every component multiplied by ``factor``."""
        if factor < 0:
            raise PlatformError("scale factor must be non-negative")
        return ResourceVector(c * factor for c in self._counts)

    # ------------------------------------------------------------------ #
    # Comparisons used by the schedulers
    # ------------------------------------------------------------------ #
    def fits_into(self, capacity: "ResourceVector") -> bool:
        """Return ``True`` iff every component is <= the capacity component."""
        self._check_compatible(capacity)
        return all(a <= b for a, b in zip(self._counts, capacity._counts))

    def dominates(self, other: "ResourceVector") -> bool:
        """Return ``True`` iff every component is >= the other's component."""
        self._check_compatible(other)
        return all(a >= b for a, b in zip(self._counts, other._counts))

    def is_zero(self) -> bool:
        """Return ``True`` iff the vector uses no resources at all."""
        return all(c == 0 for c in self._counts)

    @property
    def total(self) -> int:
        """The total number of cores regardless of type."""
        return sum(self._counts)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, dimension: int) -> "ResourceVector":
        """A vector of ``dimension`` zero entries."""
        return cls([0] * dimension)

    @classmethod
    def sum(cls, vectors: Sequence["ResourceVector"], dimension: int) -> "ResourceVector":
        """Sum a (possibly empty) sequence of vectors of the given dimension."""
        result = cls.zeros(dimension)
        for vector in vectors:
            result = result + vector
        return result
