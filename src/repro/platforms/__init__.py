"""Heterogeneous platform models.

The schedulers in :mod:`repro.schedulers` only need to know *how many cores of
each resource type* exist (the vector :math:`\\vec{\\Theta}` of the paper).
The richer classes in this package additionally describe per-core frequency
and power characteristics so that the design-space exploration in
:mod:`repro.dse` can derive execution time and energy of candidate mappings —
this replaces the physical Odroid XU4 board and the power analyzer used in the
paper.

Public API
----------

* :class:`ResourceVector` — integer vector of core counts per resource type.
* :class:`ProcessorType` — a core type (name, frequency, power model, speed).
* :class:`PowerModel` — static + dynamic power of a core type.
* :class:`Platform` — a named set of processor types with core counts.
* :func:`odroid_xu4` — model of the board used in the paper.
* :func:`big_little`, :func:`homogeneous`, :func:`generic_heterogeneous` —
  convenience builders for other platform shapes.
"""

from repro.platforms.power import PowerModel
from repro.platforms.processor import ProcessorType
from repro.platforms.resources import ResourceVector
from repro.platforms.platform import Platform
from repro.platforms.odroid import odroid_xu4
from repro.platforms.topologies import big_little, generic_heterogeneous, homogeneous

__all__ = [
    "PowerModel",
    "ProcessorType",
    "ResourceVector",
    "Platform",
    "odroid_xu4",
    "big_little",
    "homogeneous",
    "generic_heterogeneous",
]
