"""Analytical per-core power model.

The paper measures power of the Odroid XU4 board with an external power
analyzer.  We replace the measurement with a simple but standard analytical
model: a core consumes *static* power whenever it is switched on and
additional *dynamic* power proportional to its utilisation.  The dynamic part
follows the usual CMOS scaling :math:`P_{dyn} \\propto C\\,V^2 f`; the model
stores the resulting wattage directly so the DSE does not need to know about
capacitance or voltage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PlatformError

#: Absolute slack accepted on utilisations before they are treated as errors.
#: Accumulated float arithmetic in the runtime manager legitimately produces
#: values like ``1.0000000000000002``; anything within this tolerance is
#: clamped into ``[0, 1]`` instead of raising.
UTILISATION_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PowerModel:
    """Static and dynamic power of one core of a processor type.

    Parameters
    ----------
    static_watts:
        Power drawn whenever the core is powered on, regardless of activity.
    dynamic_watts:
        Additional power drawn when the core is fully busy.  Partial
        utilisation scales this component linearly.

    Examples
    --------
    >>> model = PowerModel(static_watts=0.1, dynamic_watts=0.5)
    >>> model.power(utilisation=0.5)
    0.35
    """

    static_watts: float
    dynamic_watts: float

    def __post_init__(self) -> None:
        if self.static_watts < 0 or self.dynamic_watts < 0:
            raise PlatformError("power components must be non-negative")

    def power(self, utilisation: float = 1.0) -> float:
        """Power in watts of one core at the given utilisation in ``[0, 1]``.

        Utilisations within :data:`UTILISATION_TOLERANCE` outside the unit
        interval are clamped rather than rejected.
        """
        if not 0.0 <= utilisation <= 1.0:
            if -UTILISATION_TOLERANCE <= utilisation < 0.0:
                utilisation = 0.0
            elif 1.0 < utilisation <= 1.0 + UTILISATION_TOLERANCE:
                utilisation = 1.0
            else:
                raise PlatformError(
                    f"utilisation must be in [0, 1], got {utilisation}"
                )
        return self.static_watts + self.dynamic_watts * utilisation

    def energy(self, duration: float, utilisation: float = 1.0) -> float:
        """Energy in joules consumed over ``duration`` seconds."""
        if duration < 0:
            raise PlatformError("duration must be non-negative")
        return self.power(utilisation) * duration

    def scaled_frequency(self, factor: float) -> "PowerModel":
        """Return a model for the same core running at ``factor`` × frequency.

        Dynamic power scales roughly cubically with frequency when voltage is
        scaled along (DVFS); static power is assumed constant.  This is used
        by the generic platform builders to derive plausible power numbers for
        platforms other than the Odroid.
        """
        if factor <= 0:
            raise PlatformError("frequency scale factor must be positive")
        return PowerModel(
            static_watts=self.static_watts,
            dynamic_watts=self.dynamic_watts * factor**3,
        )
