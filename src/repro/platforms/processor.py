"""Processor (core) types of a heterogeneous platform."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.exceptions import PlatformError
from repro.platforms.power import PowerModel

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.energy.opp import OPP, OPPLadder


@dataclass(frozen=True)
class ProcessorType:
    """One core type of a heterogeneous platform.

    The *performance factor* expresses how fast one core of this type executes
    a unit of work relative to a reference core (performance factor 1.0).  The
    trace-driven mapping simulator divides the reference cycle counts of a
    dataflow process by this factor to obtain execution time on this core
    type.

    Parameters
    ----------
    name:
        Unique human-readable name, e.g. ``"A15"``.
    frequency_hz:
        Operating frequency in hertz (the *nominal* frequency; the paper pins
        the clusters there, DVFS-aware runs re-pin cores via :meth:`at_opp`).
    performance_factor:
        Relative single-thread performance w.r.t. the reference core at the
        same frequency (an IPC-like factor, frequency-independent).
    power:
        Static/dynamic power model of one core at the nominal frequency.
    opps:
        Optional :class:`~repro.energy.opp.OPPLadder` with the DVFS operating
        performance points of this core type.  Metadata only — it does not
        participate in equality, and all accounting at the nominal frequency
        is unaffected by its presence.

    Examples
    --------
    >>> big = ProcessorType("A15", 1.8e9, 2.1, PowerModel(0.25, 1.3))
    >>> big.cycles_to_seconds(1.8e9)  # doctest: +ELLIPSIS
    0.476...
    """

    name: str
    frequency_hz: float
    performance_factor: float
    power: PowerModel
    opps: "OPPLadder | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("processor type name must not be empty")
        if self.frequency_hz <= 0:
            raise PlatformError("frequency must be positive")
        if self.performance_factor <= 0:
            raise PlatformError("performance factor must be positive")

    def cycles_to_seconds(self, reference_cycles: float) -> float:
        """Execution time of ``reference_cycles`` reference cycles on this core.

        Reference cycles are defined w.r.t. a core with performance factor 1.0
        running at this core's frequency; faster cores retire proportionally
        more reference work per second.
        """
        if reference_cycles < 0:
            raise PlatformError("cycle count must be non-negative")
        return reference_cycles / (self.frequency_hz * self.performance_factor)

    def busy_energy(self, duration: float) -> float:
        """Energy of one fully busy core of this type over ``duration`` seconds."""
        return self.power.energy(duration, utilisation=1.0)

    def idle_energy(self, duration: float) -> float:
        """Energy of one powered but idle core of this type over ``duration`` seconds."""
        return self.power.energy(duration, utilisation=0.0)

    # ------------------------------------------------------------------ #
    # DVFS
    # ------------------------------------------------------------------ #
    @property
    def has_opps(self) -> bool:
        """``True`` iff an OPP ladder is attached to this core type."""
        return self.opps is not None

    def with_opps(self, ladder: "OPPLadder") -> "ProcessorType":
        """Return a copy of this core type with ``ladder`` attached."""
        return replace(self, opps=ladder)

    def at_opp(self, opp: "OPP") -> "ProcessorType":
        """Return this core type re-pinned at ``opp``.

        The frequency and power model change; the performance factor (an
        IPC-like, frequency-independent quantity) and the attached ladder are
        preserved, so :meth:`cycles_to_seconds` scales linearly with the OPP
        frequency.
        """
        return replace(self, frequency_hz=opp.frequency_hz, power=opp.power)
