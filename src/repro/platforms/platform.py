"""The :class:`Platform` class — a named set of processor types with counts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.exceptions import PlatformError
from repro.platforms.processor import ProcessorType
from repro.platforms.resources import ResourceVector


@dataclass(frozen=True)
class Platform:
    """A heterogeneous multi-core platform.

    The platform is the :math:`\\vec{\\Theta}` of the paper enriched with the
    processor-type metadata needed by the DSE substrate.  The order of
    ``processor_types`` defines the order of components in every
    :class:`~repro.platforms.resources.ResourceVector` that refers to this
    platform.

    Parameters
    ----------
    name:
        Human-readable platform name.
    processor_types:
        The core types, in resource-vector order.
    core_counts:
        Number of cores per type, same order as ``processor_types``.

    Examples
    --------
    >>> from repro.platforms import odroid_xu4
    >>> odroid = odroid_xu4()
    >>> odroid.capacity.counts
    (4, 4)
    >>> odroid.type_names
    ('A7', 'A15')
    """

    name: str
    processor_types: tuple[ProcessorType, ...]
    core_counts: tuple[int, ...]
    _index_by_name: Mapping[str, int] = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __init__(
        self,
        name: str,
        processor_types: Sequence[ProcessorType],
        core_counts: Iterable[int],
    ):
        types = tuple(processor_types)
        counts = tuple(int(c) for c in core_counts)
        if not name:
            raise PlatformError("platform name must not be empty")
        if not types:
            raise PlatformError("platform needs at least one processor type")
        if len(types) != len(counts):
            raise PlatformError(
                f"{len(types)} processor types but {len(counts)} core counts"
            )
        if any(c <= 0 for c in counts):
            raise PlatformError("core counts must be positive")
        names = [t.name for t in types]
        if len(set(names)) != len(names):
            raise PlatformError(f"duplicate processor type names: {names}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "processor_types", types)
        object.__setattr__(self, "core_counts", counts)
        object.__setattr__(
            self, "_index_by_name", {t.name: i for i, t in enumerate(types)}
        )

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    @property
    def num_resource_types(self) -> int:
        """The number :math:`m` of resource types."""
        return len(self.processor_types)

    @property
    def capacity(self) -> ResourceVector:
        """The capacity vector :math:`\\vec{\\Theta}`."""
        return ResourceVector(self.core_counts)

    @property
    def total_cores(self) -> int:
        """Total number of cores of all types."""
        return sum(self.core_counts)

    @property
    def type_names(self) -> tuple[str, ...]:
        """Processor type names in resource-vector order."""
        return tuple(t.name for t in self.processor_types)

    def type_index(self, name: str) -> int:
        """Return the resource-vector index of the processor type ``name``."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise PlatformError(
                f"unknown processor type {name!r}; known: {self.type_names}"
            ) from None

    def processor_type(self, name: str) -> ProcessorType:
        """Return the :class:`ProcessorType` called ``name``."""
        return self.processor_types[self.type_index(name)]

    # ------------------------------------------------------------------ #
    # Helpers used by the DSE and energy accounting
    # ------------------------------------------------------------------ #
    def resource_vector(self, demand: Mapping[str, int]) -> ResourceVector:
        """Build a demand vector from a ``{type name: count}`` mapping.

        Types not mentioned in ``demand`` get a zero entry.  Demands must not
        exceed the platform capacity.
        """
        counts = [0] * self.num_resource_types
        for type_name, count in demand.items():
            counts[self.type_index(type_name)] = int(count)
        vector = ResourceVector(counts)
        if not vector.fits_into(self.capacity):
            raise PlatformError(
                f"demand {vector.counts} exceeds capacity {self.capacity.counts}"
            )
        return vector

    def fits(self, demand: ResourceVector) -> bool:
        """Return ``True`` iff ``demand`` fits into the platform capacity."""
        return demand.fits_into(self.capacity)

    def busy_power(self, demand: ResourceVector) -> float:
        """Total power in watts when ``demand`` cores are fully busy."""
        if len(demand) != self.num_resource_types:
            raise PlatformError("demand dimension does not match platform")
        return sum(
            count * ptype.power.power(1.0)
            for count, ptype in zip(demand, self.processor_types)
        )

    def allocations(self, max_cores: ResourceVector | None = None):
        """Iterate over all non-empty core allocations ``(n_1, ..., n_m)``.

        Used by the exhaustive DSE: every combination of per-type core counts
        from zero up to the platform capacity (or ``max_cores``), excluding
        the all-zero allocation.
        """
        limit = max_cores if max_cores is not None else self.capacity
        if len(limit) != self.num_resource_types:
            raise PlatformError("allocation limit dimension does not match platform")

        def recurse(prefix: list[int], index: int):
            if index == self.num_resource_types:
                if any(prefix):
                    yield ResourceVector(prefix)
                return
            for count in range(limit[index] + 1):
                yield from recurse(prefix + [count], index + 1)

        yield from recurse([], 0)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{count}x{ptype.name}" for count, ptype in zip(self.core_counts, self.processor_types)
        )
        return f"Platform({self.name!r}: {parts})"
