"""Online energy accounting for the runtime manager.

The seed accumulated one scalar (``ExecutionLog.total_energy``) from the
operating-point energies; any richer view — per-cluster or per-request
breakdowns — required a post-hoc scan over the executed timeline with table
lookups per interval.  The :class:`EnergyMeter` integrates those views
*online*: the runtime manager feeds it every executed interval and the meter
updates per-cluster busy/idle joules and per-job joules in O(active mappings
× resource types) — proportional to the active cores, not to the log length.

Two accounting modes exist:

* **table mode** (default, no governor): interval energy is the seed's
  operating-point energy, bit-identical to pre-meter behaviour; the meter
  only *attributes* it — to jobs exactly, and to clusters proportionally to
  each cluster's share of the point's full-load power.
* **analytical mode** (a governor is active): interval energy is integrated
  from the platform power models at the selected OPPs — busy cores at full
  utilisation, allocated-but-idle cores at static power — so DVFS decisions
  change the recorded energy consistently.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.segment import MappingSegment, Schedule
from repro.energy.opp import OPPDecision
from repro.platforms.platform import Platform


class EnergyMeter:
    """Incremental per-cluster and per-job energy accounting of one run.

    Parameters
    ----------
    platform:
        The platform whose clusters the meter attributes energy to.  ``None``
        (a bare capacity vector) disables the cluster breakdown; per-job
        energies are still tracked.

    Examples
    --------
    >>> from repro.platforms import odroid_xu4
    >>> meter = EnergyMeter(odroid_xu4())
    >>> sorted(meter.cluster_breakdown())
    ['A15', 'A7']
    """

    def __init__(self, platform: Platform | None):
        self._platform = platform
        self.total_joules = 0.0
        self.job_joules: dict[str, float] = {}
        if platform is not None:
            self._type_names = platform.type_names
            self._busy_watts = tuple(
                ptype.power.power(1.0) for ptype in platform.processor_types
            )
            self._capacity = platform.core_counts
            self._busy = {name: 0.0 for name in self._type_names}
            self._idle = {name: 0.0 for name in self._type_names}
        else:
            self._type_names = ()
            self._busy_watts = ()
            self._capacity = ()
            self._busy = {}
            self._idle = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_table(
        self, contributions: Sequence[tuple[str, OperatingPoint, float]]
    ) -> None:
        """Attribute the operating-point energies of one executed interval.

        ``contributions`` holds ``(job name, operating point, joules)`` per
        active mapping, with joules exactly as charged to the execution log.
        The cluster attribution weights each cluster by its share of the
        point's full-load power (demand × busy watts), since the table energy
        does not expose a busy/idle split.
        """
        for job_name, point, joules in contributions:
            self.total_joules += joules
            self.job_joules[job_name] = self.job_joules.get(job_name, 0.0) + joules
            if self._platform is None:
                continue
            weights = [
                count * watts
                for count, watts in zip(point.resources, self._busy_watts)
            ]
            weight_total = sum(weights)
            if weight_total <= 0.0:
                continue
            for name, weight in zip(self._type_names, weights):
                if weight > 0.0:
                    self._busy[name] += joules * weight / weight_total

    def record_analytical(
        self,
        duration: float,
        points: Sequence[tuple[str, OperatingPoint]],
        decision: OPPDecision,
    ) -> float:
        """Integrate one executed interval from the platform power models.

        ``duration`` is the wall-clock interval length, ``points`` the active
        ``(job name, operating point)`` pairs and ``decision`` the per-cluster
        OPPs in force.  Busy cores are charged at full utilisation, the rest
        of the platform at static power.  Returns the interval's total joules
        (what the execution log records in analytical mode).
        """
        if self._platform is None:
            raise ValueError("analytical accounting needs a full Platform")
        busy_counts = [0] * len(self._capacity)
        for job_name, point in points:
            job_joules = 0.0
            for index, count in enumerate(point.resources):
                if count:
                    busy_counts[index] += count
                    job_joules += (
                        count * decision.cluster_opps[index].power.power(1.0) * duration
                    )
            self.job_joules[job_name] = self.job_joules.get(job_name, 0.0) + job_joules
        interval_joules = 0.0
        for index, name in enumerate(self._type_names):
            opp = decision.cluster_opps[index]
            busy = busy_counts[index]
            idle = max(0, self._capacity[index] - busy)
            busy_joules = busy * opp.power.power(1.0) * duration
            idle_joules = idle * opp.power.power(0.0) * duration
            self._busy[name] += busy_joules
            self._idle[name] += idle_joules
            interval_joules += busy_joules + idle_joules
        self.total_joules += interval_joules
        return interval_joules

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def cluster_breakdown(self) -> dict[str, dict[str, float]]:
        """Per-cluster ``{"busy": J, "idle": J, "total": J}`` (JSON-ready)."""
        return {
            name: {
                "busy": self._busy[name],
                "idle": self._idle[name],
                "total": self._busy[name] + self._idle[name],
            }
            for name in self._type_names
        }


# ---------------------------------------------------------------------- #
# Analytical schedule energy (offline helpers)
# ---------------------------------------------------------------------- #
def cluster_power(
    busy_counts, platform: Platform, decision: OPPDecision
) -> float:
    """Platform watts for the given per-cluster busy-core counts.

    The single home of the busy/idle per-cluster power formula: both the
    seed admission path (via :func:`segment_analytical_power`) and the
    incremental kernel's ledger-backed walk price segments through here, so
    the two can never drift apart.
    """
    power = 0.0
    for index, opp in enumerate(decision.cluster_opps):
        busy = busy_counts[index]
        idle = max(0, platform.core_counts[index] - busy)
        power += busy * opp.power.power(1.0) + idle * opp.power.power(0.0)
    return power


def segment_analytical_power(
    segment: MappingSegment,
    tables: Mapping[str, ConfigTable],
    platform: Platform,
    decision: OPPDecision,
) -> float:
    """Platform power in watts while ``segment`` executes under ``decision``."""
    from repro.optable.adapters import segment_busy_counts

    busy_counts = segment_busy_counts(segment, tables, platform.num_resource_types)
    return cluster_power(busy_counts, platform, decision)


def analytical_schedule_energy(
    schedule: Schedule,
    tables: Mapping[str, ConfigTable],
    platform: Platform,
    decision: OPPDecision,
) -> float:
    """Energy in joules of executing ``schedule`` under ``decision``.

    Segment durations are taken as-is, so a schedule stretched by a governor
    integrates over its stretched timeline.  Time outside segments is not
    charged, matching the runtime manager (and the seed, which charged
    nothing during idle gaps either).
    """
    return sum(
        segment_analytical_power(segment, tables, platform, decision)
        * segment.duration
        for segment in schedule
    )
