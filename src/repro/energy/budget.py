"""Power-cap and energy-budget admission control.

The paper's runtime manager rejects a request when no deadline-feasible
schedule exists.  Deployments add a second rejection axis: thermal/power
envelopes (a cap on instantaneous platform power) and energy budgets (a cap
on the joules a battery or a billing period can supply).  The
:class:`EnergyBudget` encodes both; the runtime manager consults it after
the scheduler found a feasible schedule and before committing, so a request
that fits the deadlines but busts the envelope is rejected exactly like an
infeasible one (the previously committed schedule stays in force).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.config import ConfigTable
from repro.core.segment import Schedule
from repro.energy.accounting import (
    analytical_schedule_energy,
    cluster_power,
    segment_analytical_power,
)
from repro.energy.opp import OPPDecision
from repro.exceptions import EnergyError
from repro.platforms.platform import Platform


@dataclass(frozen=True)
class BudgetDecision:
    """Outcome of one admission check; falsy when the request must be rejected."""

    admitted: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.admitted


@dataclass(frozen=True)
class EnergyBudget:
    """Admission-control envelope for the runtime manager.

    Parameters
    ----------
    power_cap_watts:
        Maximum instantaneous platform power any committed segment may draw;
        ``None`` disables the cap.
    energy_budget_joules:
        Maximum total energy of the whole run (already consumed energy plus
        the planned remainder); ``None`` disables the budget.

    Examples
    --------
    >>> EnergyBudget(power_cap_watts=5.0).admits(Schedule(), {}, now=0.0,
    ...                                          consumed_joules=0.0).admitted
    True
    """

    power_cap_watts: float | None = None
    energy_budget_joules: float | None = None

    def __post_init__(self) -> None:
        if self.power_cap_watts is not None and self.power_cap_watts <= 0:
            raise EnergyError(
                f"power cap must be positive, got {self.power_cap_watts}"
            )
        if self.energy_budget_joules is not None and self.energy_budget_joules <= 0:
            raise EnergyError(
                f"energy budget must be positive, got {self.energy_budget_joules}"
            )

    @property
    def unconstrained(self) -> bool:
        """``True`` iff neither the cap nor the budget is set."""
        return self.power_cap_watts is None and self.energy_budget_joules is None

    def admits(
        self,
        schedule: Schedule,
        tables: Mapping[str, ConfigTable],
        now: float,
        consumed_joules: float,
        platform: Platform | None = None,
        decision: OPPDecision | None = None,
        *,
        optables: Mapping | None = None,
        ledger=None,
    ) -> BudgetDecision:
        """Check the planned ``schedule`` against the envelope.

        Only the part of the schedule after ``now`` counts.  With a
        ``platform`` and an OPP ``decision`` the check uses the analytical
        per-core power model (matching governor-mode accounting); otherwise
        it uses the operating-point averages (matching table-mode
        accounting), so the admission test always agrees with how the run
        will actually be metered.

        ``optables`` and ``ledger`` are the incremental kernel's fast lane:
        with the interned column tables (and, analytically, the run's
        :class:`~repro.kernel.state.LoadLedger` busy rows) the check walks
        the planned segments directly — same sums over the same floats —
        instead of materialising a truncated :class:`Schedule` per admitted
        arrival.
        """
        if optables is not None:
            return self._admits_kernel(
                schedule, now, consumed_joules, platform, decision, optables, ledger
            )
        future = schedule.truncated_before(now)
        analytical = platform is not None and decision is not None

        if self.power_cap_watts is not None:
            for segment in future:
                if analytical:
                    watts = segment_analytical_power(
                        segment, tables, platform, decision
                    )
                else:
                    watts = sum(
                        m.operating_point(tables).power for m in segment
                    )
                if watts > self.power_cap_watts + 1e-9:
                    return BudgetDecision(
                        False,
                        f"segment [{segment.start:.3f}, {segment.end:.3f}) draws "
                        f"{watts:.3f} W > cap {self.power_cap_watts:.3f} W",
                    )

        if self.energy_budget_joules is not None:
            if analytical:
                planned = analytical_schedule_energy(
                    future, tables, platform, decision
                )
            else:
                planned = future.total_energy(tables)
            total = consumed_joules + planned
            if total > self.energy_budget_joules + 1e-9:
                return BudgetDecision(
                    False,
                    f"plan needs {total:.3f} J > budget "
                    f"{self.energy_budget_joules:.3f} J",
                )

        return BudgetDecision(True)

    def _admits_kernel(
        self,
        schedule: Schedule,
        now: float,
        consumed_joules: float,
        platform: Platform | None,
        decision: OPPDecision | None,
        optables: Mapping,
        ledger,
    ) -> BudgetDecision:
        """The incremental kernel's admission walk.

        Replays the exact arithmetic of :meth:`admits` — the same per-segment
        power sums (mapping order) and the same truncated-duration energy
        integral — directly over the planned segments and the interned
        column tables, without materialising ``schedule.truncated_before``.
        A straddling segment contributes ``end - now`` exactly like its
        truncated twin would.
        """
        from repro.core.segment import TIME_EPSILON

        analytical = platform is not None and decision is not None
        if analytical and ledger is None:
            from repro.kernel.state import LoadLedger

            ledger = LoadLedger(optables, platform.num_resource_types)

        def analytical_power(segment) -> float:
            # Same rows and the same formula as the seed's
            # segment_analytical_power, via the shared helpers.
            return cluster_power(ledger.busy_counts(segment), platform, decision)

        if self.power_cap_watts is not None:
            for segment in schedule:
                if segment.end <= now + TIME_EPSILON:
                    continue
                if analytical:
                    watts = analytical_power(segment)
                else:
                    watts = sum(
                        optables[m.application].powers[m.config_index]
                        for m in segment
                    )
                if watts > self.power_cap_watts + 1e-9:
                    start = segment.start
                    if start < now - TIME_EPSILON:
                        start = now
                    return BudgetDecision(
                        False,
                        f"segment [{start:.3f}, {segment.end:.3f}) draws "
                        f"{watts:.3f} W > cap {self.power_cap_watts:.3f} W",
                    )

        if self.energy_budget_joules is not None:
            planned = 0.0
            for segment in schedule:
                end = segment.end
                if end <= now + TIME_EPSILON:
                    continue
                start = segment.start
                if start < now - TIME_EPSILON:
                    start = now
                duration = end - start
                if analytical:
                    planned += analytical_power(segment) * duration
                else:
                    segment_energy = 0.0
                    for mapping in segment:
                        table = optables[mapping.application]
                        config_index = mapping.config_index
                        segment_energy += (
                            table.energies[config_index]
                            * duration
                            / table.times[config_index]
                        )
                    planned += segment_energy
            total = consumed_joules + planned
            if total > self.energy_budget_joules + 1e-9:
                return BudgetDecision(
                    False,
                    f"plan needs {total:.3f} J > budget "
                    f"{self.energy_budget_joules:.3f} J",
                )

        return BudgetDecision(True)
