"""DVFS, frequency governors and online energy accounting.

The paper pins the Odroid XU4 cluster frequencies; this package makes
frequency a first-class runtime dimension:

* :mod:`repro.energy.opp` — per-cluster operating-performance-point ladders
  (Exynos-5422-style tables for the Odroid, synthetic ladders elsewhere),
  uniform platform scales and re-pinned platform variants for the DSE sweep.
* :mod:`repro.energy.governor` — pluggable frequency governors
  (``performance``, ``powersave``, ``ondemand``, ``schedule-aware``) plus
  the schedule-stretching primitives they rely on.
* :mod:`repro.energy.accounting` — the incremental :class:`EnergyMeter` the
  runtime manager feeds every executed interval (per-cluster busy/idle and
  per-job joules in O(active cores) per interval).
* :mod:`repro.energy.budget` — power-cap / energy-budget admission control
  consulted before a feasible request is committed.

Without a governor everything is bit-identical to the pinned-frequency seed
behaviour.  With one, energy switches to the analytical per-core model so
governors are comparable; the ``performance`` governor then reproduces the
seed's schedules and admissions exactly and serves as the fixed-frequency
energy baseline.
"""

from repro.energy.accounting import (
    EnergyMeter,
    analytical_schedule_energy,
    segment_analytical_power,
)
from repro.energy.budget import BudgetDecision, EnergyBudget
from repro.energy.governor import (
    FrequencyGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    ScheduleAwareGovernor,
    build_governor,
    required_scale,
    stretch_schedule,
)
from repro.energy.opp import (
    DEFAULT_SCALES,
    OPP,
    OPPDecision,
    OPPLadder,
    attach_opps,
    available_scales,
    decide,
    default_ladder,
    ensure_opps,
    exynos5422_ladders,
    ladder_from_frequencies,
    scaled_platform,
)

__all__ = [
    "OPP",
    "OPPLadder",
    "OPPDecision",
    "DEFAULT_SCALES",
    "ladder_from_frequencies",
    "default_ladder",
    "exynos5422_ladders",
    "attach_opps",
    "ensure_opps",
    "available_scales",
    "decide",
    "scaled_platform",
    "FrequencyGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "OndemandGovernor",
    "ScheduleAwareGovernor",
    "GOVERNORS",
    "build_governor",
    "required_scale",
    "stretch_schedule",
    "EnergyMeter",
    "analytical_schedule_energy",
    "segment_analytical_power",
    "EnergyBudget",
    "BudgetDecision",
]

#: ``GOVERNORS`` is the governor plugin registry (repro.api.registry), which
#: imports the scheduler/platform/workload stack to register the built-ins —
#: far too heavy for this package's import time.  Resolve it lazily so
#: ``import repro.energy`` (and everything that pulls it in, e.g. repro.io)
#: stays light.
_LAZY = {"GOVERNORS": "repro.energy.governor"}

from repro._lazy import lazy_attributes

__getattr__, __dir__ = lazy_attributes(globals(), _LAZY)
