"""Operating-performance-point (OPP) ladders for DVFS-aware platforms.

The paper pins the Odroid XU4 clusters at fixed frequencies (A15 @ 1.8 GHz,
A7 @ 1.5 GHz).  Real Exynos-5422 firmware instead exposes a *ladder* of
operating performance points per cluster — discrete (frequency, voltage)
pairs the cpufreq governor switches between.  This module models those
ladders: every :class:`OPP` carries the frequency, the *speed* relative to
the nominal (paper-pinned) frequency, and a :class:`~repro.platforms.power.PowerModel`
derived from the nominal model via
:meth:`~repro.platforms.power.PowerModel.scaled_frequency` (dynamic power
scales cubically with frequency under voltage scaling, static power stays).

Ladders attach to :class:`~repro.platforms.processor.ProcessorType` as
metadata (``ProcessorType.opps``); nothing at the nominal frequency changes,
so platforms with ladders behave bit-identically to the seed until a
governor or an OPP sweep actually uses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import EnergyError
from repro.platforms.odroid import (
    A7_DYNAMIC_WATTS,
    A7_FREQUENCY_HZ,
    A7_PERFORMANCE_FACTOR,
    A7_STATIC_WATTS,
    A15_DYNAMIC_WATTS,
    A15_FREQUENCY_HZ,
    A15_PERFORMANCE_FACTOR,
    A15_STATIC_WATTS,
)
from repro.platforms.platform import Platform
from repro.platforms.power import PowerModel
from repro.platforms.processor import ProcessorType

#: Numerical slack for comparing frequency ratios.
SCALE_EPSILON = 1e-9

#: Relative frequency scales used when a platform has no measured ladder
#: (generic big.LITTLE, homogeneous and heterogeneous builders).
DEFAULT_SCALES = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Exynos-5422-style frequency ladders (Hz).  The LITTLE (A7) cluster steps
#: from 600 MHz to its 1.5 GHz nominal, the big (A15) cluster from 800 MHz
#: past its 1.8 GHz nominal up to the 2.0 GHz boost step.
EXYNOS5422_A7_FREQUENCIES_HZ = (0.6e9, 0.8e9, 1.0e9, 1.1e9, 1.2e9, 1.3e9, 1.4e9, 1.5e9)
EXYNOS5422_A15_FREQUENCIES_HZ = (0.8e9, 1.0e9, 1.2e9, 1.4e9, 1.6e9, 1.8e9, 2.0e9)


@dataclass(frozen=True)
class OPP:
    """One operating performance point of a core type.

    Parameters
    ----------
    frequency_hz:
        Core frequency at this point.
    speed:
        Execution speed relative to the nominal OPP (``frequency / nominal
        frequency``); reference work retires proportionally to this factor.
    power:
        Power model of one core running at this point.
    """

    frequency_hz: float
    speed: float
    power: PowerModel

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise EnergyError(f"OPP frequency must be positive, got {self.frequency_hz}")
        if self.speed <= 0:
            raise EnergyError(f"OPP speed must be positive, got {self.speed}")


class OPPLadder:
    """The ordered DVFS ladder of one core type.

    Points are kept in ascending frequency order; exactly one point must sit
    at the nominal frequency (speed 1.0), which is the point the seed model
    pins the cluster to.

    Examples
    --------
    >>> base = ProcessorType("A7", 1.5e9, 1.0, PowerModel(0.05, 0.30))
    >>> ladder = ladder_from_frequencies(base, [0.75e9, 1.5e9])
    >>> ladder.nominal.speed
    1.0
    >>> ladder.slowest.speed
    0.5
    """

    def __init__(self, opps: Iterable[OPP]):
        points = tuple(sorted(opps, key=lambda p: p.frequency_hz))
        if not points:
            raise EnergyError("an OPP ladder needs at least one point")
        for lower, upper in zip(points, points[1:]):
            if upper.frequency_hz <= lower.frequency_hz * (1 + SCALE_EPSILON):
                raise EnergyError(
                    f"OPP frequencies must be strictly increasing, got "
                    f"{lower.frequency_hz} and {upper.frequency_hz}"
                )
        nominal = [p for p in points if abs(p.speed - 1.0) <= SCALE_EPSILON]
        if len(nominal) != 1:
            raise EnergyError(
                "an OPP ladder needs exactly one nominal point (speed 1.0), "
                f"got speeds {[p.speed for p in points]}"
            )
        self._opps = points
        self._nominal = nominal[0]

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def opps(self) -> tuple[OPP, ...]:
        """All points in ascending frequency order."""
        return self._opps

    def __len__(self) -> int:
        return len(self._opps)

    def __iter__(self) -> Iterator[OPP]:
        return iter(self._opps)

    def __getitem__(self, index: int) -> OPP:
        return self._opps[index]

    def __repr__(self) -> str:
        freqs = ", ".join(f"{p.frequency_hz / 1e6:.0f}" for p in self._opps)
        return f"OPPLadder([{freqs}] MHz, nominal={self._nominal.frequency_hz / 1e6:.0f})"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def nominal(self) -> OPP:
        """The point at the nominal (paper-pinned) frequency."""
        return self._nominal

    @property
    def slowest(self) -> OPP:
        """The lowest-frequency point."""
        return self._opps[0]

    @property
    def fastest(self) -> OPP:
        """The highest-frequency point."""
        return self._opps[-1]

    def scales(self) -> tuple[float, ...]:
        """The relative speeds of all points, ascending."""
        return tuple(p.speed for p in self._opps)

    def at_scale(self, scale: float) -> OPP:
        """The slowest point with speed at least ``scale``.

        Guarantees the returned point retires work no slower than ``scale``
        times nominal; requests above the fastest point clamp to it.
        """
        if scale <= 0:
            raise EnergyError(f"OPP scale must be positive, got {scale}")
        for point in self._opps:
            if point.speed >= scale - SCALE_EPSILON:
                return point
        return self._opps[-1]


# ---------------------------------------------------------------------- #
# Ladder construction
# ---------------------------------------------------------------------- #
def ladder_from_frequencies(
    base: ProcessorType, frequencies_hz: Sequence[float]
) -> OPPLadder:
    """Derive a ladder for ``base`` from a list of frequencies.

    Each point's power model comes from
    :meth:`~repro.platforms.power.PowerModel.scaled_frequency` applied to the
    base model at the frequency ratio; the base (nominal) frequency must be
    among ``frequencies_hz``.
    """
    points = []
    for frequency in frequencies_hz:
        if frequency <= 0:
            raise EnergyError(f"OPP frequency must be positive, got {frequency}")
        ratio = frequency / base.frequency_hz
        if abs(ratio - 1.0) <= SCALE_EPSILON:
            # Keep the nominal point bit-identical to the base model instead
            # of routing it through the cubic scaling (1.0**3 round-trips
            # exactly, but being explicit costs nothing).
            points.append(OPP(base.frequency_hz, 1.0, base.power))
        else:
            points.append(OPP(frequency, ratio, base.power.scaled_frequency(ratio)))
    return OPPLadder(points)


def default_ladder(
    base: ProcessorType, scales: Sequence[float] = DEFAULT_SCALES
) -> OPPLadder:
    """A synthetic ladder at the given relative ``scales`` of the base frequency."""
    frequencies = [base.frequency_hz * scale for scale in scales]
    if not any(abs(s - 1.0) <= SCALE_EPSILON for s in scales):
        frequencies.append(base.frequency_hz)
    return ladder_from_frequencies(base, frequencies)


def exynos5422_ladders(
    little: ProcessorType | None = None, big: ProcessorType | None = None
) -> dict[str, OPPLadder]:
    """The Exynos-5422-style ladders of the Odroid XU4 clusters, by type name.

    ``odroid_xu4`` passes its own cluster models so the ladders' nominal
    points can never drift from the platform; standalone callers get bases
    rebuilt from the published odroid constants.
    """
    if little is None:
        little = ProcessorType(
            "A7", A7_FREQUENCY_HZ, A7_PERFORMANCE_FACTOR,
            PowerModel(A7_STATIC_WATTS, A7_DYNAMIC_WATTS),
        )
    if big is None:
        big = ProcessorType(
            "A15", A15_FREQUENCY_HZ, A15_PERFORMANCE_FACTOR,
            PowerModel(A15_STATIC_WATTS, A15_DYNAMIC_WATTS),
        )
    return {
        little.name: ladder_from_frequencies(little, EXYNOS5422_A7_FREQUENCIES_HZ),
        big.name: ladder_from_frequencies(big, EXYNOS5422_A15_FREQUENCIES_HZ),
    }


# ---------------------------------------------------------------------- #
# Attaching ladders to platforms
# ---------------------------------------------------------------------- #
def attach_opps(platform: Platform, ladders: Mapping[str, OPPLadder]) -> Platform:
    """Return ``platform`` with the given ladders attached by type name.

    Types not mentioned in ``ladders`` keep their current ladder (or none).
    """
    unknown = set(ladders) - set(platform.type_names)
    if unknown:
        raise EnergyError(
            f"ladders for unknown processor types {sorted(unknown)}; "
            f"platform has {platform.type_names}"
        )
    types = [
        ptype.with_opps(ladders[ptype.name]) if ptype.name in ladders else ptype
        for ptype in platform.processor_types
    ]
    return Platform(platform.name, types, platform.core_counts)


def ensure_opps(
    platform: Platform, scales: Sequence[float] = DEFAULT_SCALES
) -> Platform:
    """Return ``platform`` with every core type carrying a ladder.

    Types that already have a ladder are untouched; the rest get a synthetic
    :func:`default_ladder` at the given relative scales.  Idempotent, and the
    identity when every type already has a ladder.
    """
    if all(ptype.has_opps for ptype in platform.processor_types):
        return platform
    ladders = {
        ptype.name: default_ladder(ptype, scales)
        for ptype in platform.processor_types
        if not ptype.has_opps
    }
    return attach_opps(platform, ladders)


# ---------------------------------------------------------------------- #
# Uniform platform scales
# ---------------------------------------------------------------------- #
def available_scales(platform: Platform) -> tuple[float, ...]:
    """The uniform relative speeds the platform can run at, ascending.

    The union of every cluster's ladder speeds capped at 1.0 (a uniform
    slow-down never needs a cluster to exceed its nominal point; per-cluster
    boost points remain reachable through :meth:`OPPLadder.at_scale`).  The
    nominal scale 1.0 is always included.
    """
    scales = {1.0}
    for ptype in platform.processor_types:
        if ptype.opps is None:
            continue
        for speed in ptype.opps.scales():
            if speed <= 1.0 + SCALE_EPSILON:
                scales.add(min(speed, 1.0))
    return tuple(sorted(round(scale, 12) for scale in scales))


@dataclass(frozen=True)
class OPPDecision:
    """A platform-wide frequency decision: one OPP per cluster.

    Attributes
    ----------
    scale:
        The uniform execution speed the decision guarantees (every cluster
        runs at least this fast relative to nominal).
    cluster_opps:
        The selected OPP per processor type, in resource-vector order.
    """

    scale: float
    cluster_opps: tuple[OPP, ...]


def decide(platform: Platform, scale: float) -> OPPDecision:
    """Pick, per cluster, the slowest OPP that sustains ``scale``.

    Clusters without a ladder get a synthetic point derived via
    :meth:`~repro.platforms.power.PowerModel.scaled_frequency`.
    """
    if not 0 < scale <= 1.0 + SCALE_EPSILON:
        raise EnergyError(f"uniform platform scale must be in (0, 1], got {scale}")
    opps = []
    for ptype in platform.processor_types:
        if ptype.opps is not None:
            opps.append(ptype.opps.at_scale(scale))
        elif abs(scale - 1.0) <= SCALE_EPSILON:
            opps.append(OPP(ptype.frequency_hz, 1.0, ptype.power))
        else:
            opps.append(
                OPP(ptype.frequency_hz * scale, scale, ptype.power.scaled_frequency(scale))
            )
    return OPPDecision(scale=min(scale, 1.0), cluster_opps=tuple(opps))


def scaled_platform(platform: Platform, scale: float) -> Platform:
    """Return ``platform`` re-pinned at the uniform ``scale``.

    Every core type moves to its :func:`decide`-selected OPP; the identity at
    scale 1.0.  Used by the DSE OPP sweep to re-simulate mappings at lower
    frequencies.
    """
    if abs(scale - 1.0) <= SCALE_EPSILON:
        return platform
    decision = decide(platform, scale)
    types = [
        ptype.at_opp(opp)
        for ptype, opp in zip(platform.processor_types, decision.cluster_opps)
    ]
    return Platform(platform.name, types, platform.core_counts)
