"""Pluggable frequency governors for the runtime manager.

A governor decides, at every schedule commit, the uniform relative speed the
platform runs the committed schedule at.  Speeds come from the platform's
OPP ladders (:func:`~repro.energy.opp.available_scales`); a speed below 1.0
stretches the committed schedule in time (work retires proportionally
slower) and moves every cluster to the slowest OPP that sustains the speed
(:func:`~repro.energy.opp.decide`), which is where the energy saving comes
from — dynamic power drops cubically while execution only stretches
linearly.

Four governors mirror the classic cpufreq line-up:

* :class:`PerformanceGovernor` — always nominal frequency.  With default
  OPPs this reproduces the paper's pinned-frequency behaviour.
* :class:`PowersaveGovernor` — always the slowest available speed,
  regardless of deadlines (the cpufreq semantics; admitted jobs may miss).
* :class:`OndemandGovernor` — utilisation-driven: scales the speed to the
  core utilisation of the next committed segment against an ``up_threshold``.
* :class:`ScheduleAwareGovernor` — deadline-aware: among the speeds that
  keep every committed completion before its deadline, picks the one with
  the lowest modelled energy (in the common dynamic-power-dominated case,
  the slowest OPP that still meets the deadlines).
"""

from __future__ import annotations

import abc
from typing import Mapping

from repro.core.config import ConfigTable
from repro.core.request import Job
from repro.core.segment import MappingSegment, Schedule, TIME_EPSILON
from repro.energy.opp import SCALE_EPSILON, available_scales, decide
from repro.exceptions import EnergyError
from repro.platforms.platform import Platform


# ---------------------------------------------------------------------- #
# Schedule stretching
# ---------------------------------------------------------------------- #
def stretch_schedule(schedule: Schedule, now: float, scale: float) -> Schedule:
    """Stretch the part of ``schedule`` after ``now`` by ``1 / scale``.

    Segment boundaries at or before ``now`` are already history and stay
    put; later boundaries map to ``now + (t - now) / scale``.  The mapping is
    monotone, so segment ordering and disjointness are preserved.
    """
    if scale <= 0:
        raise EnergyError(f"stretch scale must be positive, got {scale}")
    if abs(scale - 1.0) <= SCALE_EPSILON:
        return schedule
    segments = []
    for segment in schedule:
        if segment.end <= now + TIME_EPSILON:
            segments.append(segment)
            continue
        start = segment.start
        if start > now + TIME_EPSILON:
            start = now + (start - now) / scale
        end = now + (segment.end - now) / scale
        segments.append(MappingSegment(start, end, segment.mappings))
    return Schedule(segments)


def required_scale(
    schedule: Schedule, jobs: Mapping[str, Job], now: float
) -> float:
    """The smallest uniform speed at which every committed deadline holds.

    Stretching by ``1 / s`` moves a completion at ``c`` to ``now + (c - now)
    / s``, which stays before the deadline ``d`` iff ``s >= (c - now) / (d -
    now)``.  Returns 0.0 when the schedule commits no future completions
    (any speed works) and 1.0 when some deadline leaves no slack at all.
    """
    worst = 0.0
    for name, job in jobs.items():
        completion = schedule.completion_time(name)
        if completion is None or completion <= now + TIME_EPSILON:
            continue
        window = job.deadline - now
        if window <= TIME_EPSILON:
            return 1.0
        worst = max(worst, (completion - now) / window)
    return min(worst, 1.0)


# ---------------------------------------------------------------------- #
# Governors
# ---------------------------------------------------------------------- #
class FrequencyGovernor(abc.ABC):
    """Strategy interface: pick the platform speed for a committed schedule."""

    #: Short machine-readable identifier used by the CLI and batch specs.
    name: str = "governor"

    @abc.abstractmethod
    def select_scale(
        self,
        schedule: Schedule,
        jobs: Mapping[str, Job],
        now: float,
        platform: Platform,
        tables: Mapping[str, ConfigTable],
        ledger=None,
    ) -> float:
        """Return a uniform speed from ``available_scales(platform)``.

        ``ledger`` (keyword, optional) is the incremental kernel's
        :class:`~repro.kernel.state.LoadLedger`: cached per-segment
        busy-core rows shared with the budget admission check.  The rows
        are integer sums, so reading them instead of re-deriving
        ``resource_usage`` cannot change any selected speed.  Governors
        that ignore it — including third-party ones written against the
        pre-kernel signature, which the runtime manager detects and calls
        without the argument — behave identically.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PerformanceGovernor(FrequencyGovernor):
    """Always run at the nominal frequency (the paper's pinned setup)."""

    name = "performance"

    def select_scale(self, schedule, jobs, now, platform, tables, ledger=None) -> float:
        return 1.0


class PowersaveGovernor(FrequencyGovernor):
    """Always run at the slowest available speed, deadlines be damned.

    This mirrors the cpufreq ``powersave`` semantics: admitted jobs may
    finish after their deadline (the execution log reports the misses).
    """

    name = "powersave"

    def select_scale(self, schedule, jobs, now, platform, tables, ledger=None) -> float:
        return available_scales(platform)[0]


class OndemandGovernor(FrequencyGovernor):
    """Utilisation-driven speed selection (cpufreq ``ondemand`` style).

    The utilisation of the next committed segment (busy cores over platform
    cores) is compared against ``up_threshold``: at or above the threshold
    the platform runs at nominal speed, below it the speed scales down
    proportionally, never lower than the slowest available OPP.  Like its
    cpufreq namesake it is deadline-blind — lightly loaded segments with
    tight deadlines can miss; use the schedule-aware governor when deadline
    guarantees must survive the slow-down.
    """

    name = "ondemand"

    def __init__(self, up_threshold: float = 0.8):
        if not 0.0 < up_threshold <= 1.0:
            raise EnergyError(
                f"up_threshold must be in (0, 1], got {up_threshold}"
            )
        self.up_threshold = up_threshold

    def select_scale(self, schedule, jobs, now, platform, tables, ledger=None) -> float:
        scales = available_scales(platform)
        upcoming = next(
            (s for s in schedule if s.end > now + TIME_EPSILON), None
        )
        if upcoming is None:
            return scales[0]
        if ledger is not None:
            # Same integer core counts as resource_usage, read from the
            # kernel's shared ledger rows.
            busy_total = sum(ledger.busy_counts(upcoming))
        else:
            busy_total = upcoming.resource_usage(
                tables, platform.num_resource_types
            ).total
        utilisation = busy_total / platform.total_cores
        target = min(1.0, utilisation / self.up_threshold)
        for scale in scales:
            if scale >= target - SCALE_EPSILON:
                return scale
        return 1.0


class ScheduleAwareGovernor(FrequencyGovernor):
    """Deadline-aware speed selection over the committed schedule.

    Among the available speeds that keep every committed completion before
    its deadline (:func:`required_scale`), the governor evaluates the
    analytical energy of the stretched schedule and picks the cheapest —
    with dynamic-dominated power models that is the slowest feasible OPP;
    when long idle-within-segment stretches would make slowing down *more*
    expensive, it falls back toward nominal.  Nominal speed is always a
    candidate, so the selection never costs energy relative to the
    performance governor under the same accounting.
    """

    name = "schedule-aware"

    def select_scale(self, schedule, jobs, now, platform, tables, ledger=None) -> float:
        floor = required_scale(schedule, jobs, now)
        candidates = [
            scale
            for scale in available_scales(platform)
            if scale >= floor - SCALE_EPSILON
        ]
        if not candidates:
            return 1.0
        # Per-segment busy-core counts are scale-invariant; resolve them once
        # from the interned OpTable demand columns (or the kernel's shared
        # ledger rows, which the budget admission check then reuses) and
        # re-price per candidate scale.  Stretching anchors at ``now``, so
        # every future duration scales by exactly 1 / scale and no stretched
        # Schedule needs to be materialised.
        from repro.optable.adapters import segment_busy_counts

        future: list[tuple[float, list[int]]] = []
        for segment in schedule:
            if segment.end <= now + TIME_EPSILON:
                continue
            duration = segment.end - max(segment.start, now)
            if ledger is not None:
                busy = ledger.busy_counts(segment)
            else:
                busy = segment_busy_counts(
                    segment, tables, platform.num_resource_types
                )
            future.append((duration, busy))
        best_scale, best_energy = 1.0, None
        for scale in candidates:
            opps = decide(platform, scale).cluster_opps
            busy_watts = [opp.power.power(1.0) for opp in opps]
            idle_watts = [opp.power.power(0.0) for opp in opps]
            energy = 0.0
            for duration, busy in future:
                power = sum(
                    count * full + max(0, capacity - count) * static
                    for count, full, static, capacity in zip(
                        busy, busy_watts, idle_watts, platform.core_counts
                    )
                )
                energy += power * duration / scale
            if best_energy is None or energy < best_energy - 1e-12:
                best_scale, best_energy = scale, energy
        return best_scale


def build_governor(name: str) -> FrequencyGovernor:
    """Instantiate the named governor (fresh instance per call).

    Lookup goes through the plugin registry of :mod:`repro.api.registry`, so
    governors registered with :func:`repro.api.register_governor` are built
    here too.  Unknown names raise :class:`~repro.exceptions.EnergyError`
    listing every registered governor, as they always did.
    """
    from repro.api.registry import governors

    return governors.build(name)


def __getattr__(name: str):
    # ``GOVERNORS`` migrated to the plugin registry (repro.api.registry).
    # The lazy alias avoids an import cycle (the registry imports the
    # governor classes defined above) while keeping the historical
    # ``from repro.energy.governor import GOVERNORS`` working — the registry
    # is a read-only Mapping, exactly like the dict it replaced.
    if name == "GOVERNORS":
        from repro.api.registry import governors

        return governors
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
