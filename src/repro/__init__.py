"""repro — Energy-efficient Runtime Resource Management for Adaptable Multi-application Mapping.

A from-scratch Python reproduction of Khasanov & Castrillon (DATE 2020).  The
library contains the full stack the paper relies on:

* platform models (:mod:`repro.platforms`) and dataflow application models
  (:mod:`repro.dataflow`),
* a trace-driven mapping simulator and design-space exploration that
  regenerate the per-application operating-point tables
  (:mod:`repro.mapping`, :mod:`repro.dse`),
* the scheduling core — mapping segments, schedules, the MMKP-MDF heuristic
  and the EX-MEM / MMKP-LR baselines (:mod:`repro.core`,
  :mod:`repro.schedulers`, :mod:`repro.knapsack`),
* an online runtime manager that admits requests and executes schedules over
  time (:mod:`repro.runtime`),
* the evaluation workload generator and the experiment harness that
  regenerates every table and figure of the paper (:mod:`repro.workload`,
  :mod:`repro.analysis`).

Quickstart
----------

>>> from repro import MMKPMDFScheduler
>>> from repro.workload.motivational import motivational_problem
>>> result = MMKPMDFScheduler().schedule(motivational_problem("S1"))
>>> round(result.energy, 2)
12.95
"""

from repro.version import __version__
from repro.core import (
    ConfigTable,
    Job,
    JobMapping,
    MappingSegment,
    OperatingPoint,
    Schedule,
    SchedulingProblem,
)
from repro.platforms import Platform, ResourceVector, odroid_xu4
from repro.schedulers import (
    ExMemScheduler,
    MMKPLRScheduler,
    MMKPMDFScheduler,
    Scheduler,
    SchedulingResult,
)

__all__ = [
    "__version__",
    "OperatingPoint",
    "ConfigTable",
    "Job",
    "JobMapping",
    "MappingSegment",
    "Schedule",
    "SchedulingProblem",
    "Platform",
    "ResourceVector",
    "odroid_xu4",
    "Scheduler",
    "SchedulingResult",
    "MMKPMDFScheduler",
    "ExMemScheduler",
    "MMKPLRScheduler",
]
