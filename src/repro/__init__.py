"""repro — Energy-efficient Runtime Resource Management for Adaptable Multi-application Mapping.

A from-scratch Python reproduction of Khasanov & Castrillon (DATE 2020).  The
library contains the full stack the paper relies on:

* platform models (:mod:`repro.platforms`) and dataflow application models
  (:mod:`repro.dataflow`),
* a trace-driven mapping simulator and design-space exploration that
  regenerate the per-application operating-point tables
  (:mod:`repro.mapping`, :mod:`repro.dse`),
* the scheduling core — mapping segments, schedules, the MMKP-MDF heuristic
  and the EX-MEM / MMKP-LR baselines (:mod:`repro.core`,
  :mod:`repro.schedulers`, :mod:`repro.knapsack`),
* an online runtime manager that admits requests and executes schedules over
  time (:mod:`repro.runtime`),
* the evaluation workload generator and the experiment harness that
  regenerates every table and figure of the paper (:mod:`repro.workload`,
  :mod:`repro.analysis`),
* the composable public front door (:mod:`repro.api`): the typed
  :class:`~repro.api.spec.ExperimentSpec` config tree, the plugin
  registries, and the streaming :class:`~repro.api.session.Session` facade.

Quickstart
----------

>>> from repro import ExperimentSpec, Session, WorkloadSpec
>>> spec = ExperimentSpec(name="demo", workload=WorkloadSpec.scenario("S1"))
>>> log = Session.from_spec(spec).run()
>>> round(log.total_energy, 2)
12.95
"""

from repro.version import __version__
from repro.core import (
    ConfigTable,
    Job,
    JobMapping,
    MappingSegment,
    OperatingPoint,
    Schedule,
    SchedulingProblem,
)
from repro.platforms import Platform, ResourceVector, odroid_xu4
from repro.schedulers import (
    ExMemScheduler,
    MMKPLRScheduler,
    MMKPMDFScheduler,
    Scheduler,
    SchedulingResult,
)

__all__ = [
    "__version__",
    "OperatingPoint",
    "ConfigTable",
    "Job",
    "JobMapping",
    "MappingSegment",
    "Schedule",
    "SchedulingProblem",
    "Platform",
    "ResourceVector",
    "odroid_xu4",
    "Scheduler",
    "SchedulingResult",
    "MMKPMDFScheduler",
    "ExMemScheduler",
    "MMKPLRScheduler",
    # Lazily loaded from repro.api (the composable public front door):
    "ExperimentSpec",
    "PlatformSpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "EnergySpec",
    "DSESpec",
    "Session",
    "RunEvent",
    "RunEventKind",
    "register_scheduler",
    "register_platform",
    "register_governor",
    "register_trace_source",
]

#: Lazy attribute → defining module (PEP 562).  ``repro.api`` composes the
#: runtime/service/dse layers, which themselves import :mod:`repro`'s
#: subpackages, so eager re-export here would both slow ``import repro``
#: down and risk cycles.
_LAZY = {
    name: "repro.api"
    for name in (
        "ExperimentSpec",
        "PlatformSpec",
        "WorkloadSpec",
        "SchedulerSpec",
        "EnergySpec",
        "DSESpec",
        "Session",
        "RunEvent",
        "RunEventKind",
        "register_scheduler",
        "register_platform",
        "register_governor",
        "register_trace_source",
    )
}

from repro._lazy import lazy_attributes  # noqa: E402

__getattr__, __dir__ = lazy_attributes(globals(), _LAZY)
