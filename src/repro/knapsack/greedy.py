"""Greedy MMKP heuristic in the style of Ykman-Couvreur et al.

The heuristic collapses the multi-dimensional weight vector of every item into
a single scalar (the weighted sum of its per-dimension utilisation of the
knapsack) and then proceeds greedily: it starts from the lowest-weight item of
every group and repeatedly upgrades the group with the best value-gain per
additional aggregate weight while the capacities allow it.
"""

from __future__ import annotations

from repro.knapsack.mmkp import MMKPProblem, MMKPSolution


def _aggregate_weight(problem: MMKPProblem, weights: tuple[float, ...]) -> float:
    """Scalarise a weight vector by normalising each dimension by its capacity."""
    total = 0.0
    for dim, weight in enumerate(weights):
        capacity = problem.capacities[dim]
        total += weight / capacity if capacity > 0 else (float("inf") if weight > 0 else 0.0)
    return total


def solve_greedy(problem: MMKPProblem) -> MMKPSolution:
    """Solve an MMKP instance with the aggregate-resource greedy heuristic.

    Returns an infeasible solution when even the per-group lowest-weight items
    do not fit together.

    Examples
    --------
    >>> from repro.knapsack import MMKPItem, MMKPProblem
    >>> problem = MMKPProblem([3.0], [[MMKPItem(5.0, (3.0,)), MMKPItem(1.0, (1.0,))],
    ...                                [MMKPItem(4.0, (2.0,)), MMKPItem(2.0, (1.0,))]])
    >>> solution = solve_greedy(problem)
    >>> solution.feasible
    True
    """
    # Start with the item of the smallest aggregate weight in every group.
    selection = []
    for group in problem.groups:
        lightest = min(
            range(len(group)),
            key=lambda i: _aggregate_weight(problem, group[i].weights),
        )
        selection.append(lightest)

    iterations = 0
    if not problem.is_feasible(selection):
        return MMKPSolution(None, float("-inf"), False, iterations)

    improved = True
    while improved:
        improved = False
        iterations += 1
        best_gain = 0.0
        best_upgrade: tuple[int, int] | None = None
        for group_index, group in enumerate(problem.groups):
            current = group[selection[group_index]]
            for item_index, item in enumerate(group):
                if item_index == selection[group_index]:
                    continue
                if item.value <= current.value:
                    continue
                candidate = list(selection)
                candidate[group_index] = item_index
                if not problem.is_feasible(candidate):
                    continue
                extra_weight = _aggregate_weight(problem, item.weights) - _aggregate_weight(
                    problem, current.weights
                )
                gain = item.value - current.value
                # Prefer upgrades with the best gain per extra aggregate weight;
                # upgrades that need no extra weight are always taken first.
                score = gain / extra_weight if extra_weight > 1e-12 else float("inf")
                if score > best_gain:
                    best_gain = score
                    best_upgrade = (group_index, item_index)
        if best_upgrade is not None:
            selection[best_upgrade[0]] = best_upgrade[1]
            improved = True

    return MMKPSolution(
        tuple(selection), problem.value_of(selection), True, iterations
    )
