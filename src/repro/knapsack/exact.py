"""Exact MMKP solver for small instances (branch and bound).

The exact solver exists to validate the heuristics in the test-suite and to
provide optimal references for the ablation benchmarks.  It enumerates group
choices depth-first and prunes with (a) capacity feasibility and (b) an
optimistic bound that adds the best remaining per-group value regardless of
weights.  It is exponential and intended for instances with at most a handful
of groups.
"""

from __future__ import annotations

from repro.knapsack.mmkp import MMKPProblem, MMKPSolution


def solve_exact(problem: MMKPProblem, max_nodes: int = 1_000_000) -> MMKPSolution:
    """Solve an MMKP instance exactly via branch and bound.

    Parameters
    ----------
    problem:
        The instance to solve.
    max_nodes:
        Safety bound on the number of explored search nodes; exceeding it
        aborts the search and returns the best solution found so far.

    Examples
    --------
    >>> from repro.knapsack import MMKPItem, MMKPProblem
    >>> problem = MMKPProblem([3.0], [[MMKPItem(5.0, (3.0,)), MMKPItem(1.0, (1.0,))],
    ...                                [MMKPItem(4.0, (2.0,)), MMKPItem(2.0, (1.0,))]])
    >>> solve_exact(problem).value
    5.0
    """
    num_dimensions = problem.num_dimensions
    capacities = problem.capacities
    # Columnar views: the recursion reads flat value/weight tuples instead of
    # MMKPItem attributes, and the per-group exploration order is computed
    # once instead of being re-sorted on every node visit.
    values = problem.dense_values
    rows = problem.dense_rows
    num_groups = problem.num_groups

    # Optimistic per-group maxima for the bound.
    best_values = [max(group_values) for group_values in values]
    suffix_best = [0.0] * (num_groups + 1)
    for index in range(num_groups - 1, -1, -1):
        suffix_best[index] = suffix_best[index + 1] + best_values[index]

    # Explore higher-value items first so the bound prunes aggressively.
    orders = [
        sorted(range(len(group_values)), key=group_values.__getitem__, reverse=True)
        for group_values in values
    ]

    best_value = float("-inf")
    best_selection: tuple[int, ...] | None = None
    nodes = 0

    def recurse(group_index: int, used: list[float], value: float, partial: list[int]):
        nonlocal best_value, best_selection, nodes
        nodes += 1
        if nodes > max_nodes:
            return
        if group_index == num_groups:
            if value > best_value:
                best_value = value
                best_selection = tuple(partial)
            return
        if value + suffix_best[group_index] <= best_value:
            return
        group_rows = rows[group_index]
        group_values = values[group_index]
        for item_index in orders[group_index]:
            weights = group_rows[item_index]
            new_used = [used[d] + weights[d] for d in range(num_dimensions)]
            if any(new_used[d] > capacities[d] + 1e-9 for d in range(num_dimensions)):
                continue
            partial.append(item_index)
            recurse(group_index + 1, new_used, value + group_values[item_index], partial)
            partial.pop()

    recurse(0, [0.0] * num_dimensions, 0.0, [])

    if best_selection is None:
        return MMKPSolution(None, float("-inf"), False, nodes)
    return MMKPSolution(best_selection, best_value, True, nodes)
