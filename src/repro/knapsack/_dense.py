"""Dense-matrix numpy backend of the Lagrangian MMKP solver.

The pure-Python subgradient method in :mod:`repro.knapsack.lagrangian` walks
every group and item per iteration; this backend runs the same method on
padded ``(groups x max_items)`` value and ``(groups x max_items x dims)``
weight ndarrays — the whole relaxed selection is one penalty broadcast plus a
per-group ``argmax``, the greedy repair is a masked savings matrix, and
:func:`solve_many` stacks same-shape problems into one 3-D tensor and runs
*all* their subgradient loops lock-step (converged problems drop out of the
updates through an active mask, exactly as if each had broken out of its own
loop).

Every fast path reproduces the pure path's floats **bit-identically**:

* penalties, subgradient steps and multiplier projections are elementwise
  operations applied in the pure path's evaluation order;
* group/dimension reductions that the pure path computes with Python's
  left-to-right ``sum`` are evaluated with ``np.add.accumulate`` (a strictly
  sequential accumulation) seeded with the same ``0.0`` start;
* per-group argmaxes and repair-downgrade scans rely on ``np.argmax``'s
  first-occurrence tie rule, which matches the pure loops' strict ``>``
  updates.

The backend is selected automatically when numpy is importable; set
``REPRO_SOLVER_NUMPY=0`` to force the pure path (the benchmarks use
:func:`solver_numpy_override` to A/B the two on one host).  The pure path is
always available and remains the reference the equivalence suite trusts.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager

try:  # pragma: no cover — exercised implicitly on numpy-equipped hosts
    import numpy as _np
except ImportError:  # pragma: no cover — the pure-Python fallback
    _np = None

#: True when numpy is importable at all (the hatch can only disable it).
HAVE_NUMPY = _np is not None

_ENABLED = HAVE_NUMPY and os.environ.get("REPRO_SOLVER_NUMPY", "1") not in (
    "0",
    "false",
    "no",
)

#: ``groups x max_items`` element count below which the *single-problem*
#: dense path loses to the pure loops (array set-up costs more than the
#: Python it saves on the paper's 1-4-job census instances).  The batched
#: :func:`solve_many` entry has no threshold: stacking amortises the set-up
#: across the whole batch.
DENSE_MIN_ELEMENTS = 64


def solver_numpy_enabled() -> bool:
    """``True`` when the dense numpy solver backend is in force."""
    return _ENABLED


def set_solver_numpy_enabled(enabled: bool) -> bool:
    """Set the switch globally; returns the previous state.

    Enabling is a no-op on hosts without numpy (the pure path is the only
    one available there).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled) and HAVE_NUMPY
    return previous


@contextmanager
def solver_numpy_override(enabled: bool):
    """Context manager pinning the switch to ``enabled`` within the block."""
    previous = set_solver_numpy_enabled(enabled)
    try:
        yield
    finally:
        set_solver_numpy_enabled(previous)


class DensePack:
    """Padded ndarray twin of one :class:`~repro.knapsack.mmkp.MMKPProblem`.

    Attributes
    ----------
    values:
        ``(groups, max_items)`` float64; padding slots hold ``-inf`` so no
        argmax can select them.
    weights:
        ``(groups, max_items, dims)`` float64; padding slots hold ``0.0`` so
        penalty broadcasts stay finite.
    mask:
        ``(groups, max_items)`` bool — ``True`` on real items.
    group_sizes:
        The real item count per group (the ragged shape the padding hides).
    capacities:
        ``(dims,)`` float64 copy of the problem capacities.

    Packs are interned on the problem instance (one pack per problem, built
    on first use) and expose a content :attr:`fingerprint` so solve caches
    and content stores can key batched solves the way
    :class:`~repro.optable.table.OpTable` interning keys tables.
    """

    __slots__ = (
        "values",
        "weights",
        "mask",
        "group_sizes",
        "capacities",
        "shape_key",
        "_fingerprint",
    )

    def __init__(self, problem) -> None:
        values = problem.dense_values
        rows = problem.dense_rows
        num_groups = len(values)
        max_items = max(len(group) for group in values)
        dims = problem.num_dimensions
        self.values = _np.full((num_groups, max_items), -_np.inf)
        self.weights = _np.zeros((num_groups, max_items, dims))
        self.mask = _np.zeros((num_groups, max_items), dtype=bool)
        self.group_sizes = tuple(len(group) for group in values)
        for g, (group_values, group_rows) in enumerate(zip(values, rows)):
            size = len(group_values)
            self.values[g, :size] = group_values
            self.weights[g, :size, :] = group_rows
            self.mask[g, :size] = True
        self.capacities = _np.asarray(problem.capacities, dtype=float)
        self.shape_key = (num_groups, max_items, dims)
        self._fingerprint: str | None = None

    @property
    def fingerprint(self) -> str:
        """Content hash of the packed instance (values, weights, capacities)."""
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(repr(self.shape_key).encode())
            digest.update(repr(self.group_sizes).encode())
            digest.update(_np.ascontiguousarray(self.values).tobytes())
            digest.update(_np.ascontiguousarray(self.weights).tobytes())
            digest.update(_np.ascontiguousarray(self.capacities).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint


def pack_dense(problem) -> DensePack:
    """The problem's :class:`DensePack`, built once and cached on the problem."""
    pack = getattr(problem, "_dense_pack", None)
    if pack is None:
        pack = DensePack(problem)
        problem._dense_pack = pack
    return pack


def use_dense_for(problem) -> bool:
    """Should a *single* ``solve_lagrangian`` call take the dense path?"""
    if not _ENABLED:
        return False
    values = problem.dense_values
    return len(values) * max(len(group) for group in values) >= DENSE_MIN_ELEMENTS


# --------------------------------------------------------------------- #
# Sequential reductions (bit-identical to Python's left-to-right sum)
# --------------------------------------------------------------------- #
def _prefix_total(array, counts, batch_index):
    """Left-to-right group sum, truncated at each problem's real group count.

    ``array`` is ``(B, G)`` or ``(B, G, D)``; the result drops axis 1.
    ``np.add.accumulate`` evaluates ``out[i] = out[i-1] + a[i]`` strictly in
    order (unlike ``np.sum``, whose pairwise blocking rounds differently), so
    the prefix at index ``counts[b] - 1`` is the running total over exactly
    problem ``b``'s real groups; the canvas's padding groups never enter it.

    The trailing ``+ 0.0`` reconciles the one representable difference with
    Python's zero-seeded ``sum(...)``: a running IEEE sum seeded with ``0``
    can never be ``-0.0`` (``0 + -0.0`` and ``x + -x`` both round to
    ``+0.0``), while an unseeded accumulation over all ``-0.0`` terms is
    ``-0.0`` — adding ``+0.0`` maps that single case back and is the
    identity everywhere else.
    """
    acc = _np.add.accumulate(array, axis=1)
    if array.ndim == 2:
        return acc[batch_index, counts - 1] + 0.0
    return acc[batch_index, counts - 1, :] + 0.0


# --------------------------------------------------------------------- #
# Batched greedy repair (the pure ``_repair`` lock-stepped over a batch)
# --------------------------------------------------------------------- #
def _repair_stacked(values, weights, mask, capacities, group_counts, limits, selections):
    """Repair ``B`` relaxed selections lock-step.

    Mirrors :func:`repro.knapsack.lagrangian._repair` pass for pass: each
    round checks feasibility, finds the worst-violated dimension and applies
    the single best strictly-positive downgrade — per problem, under a done
    mask, until every problem has returned (feasible, hit its no-downgrade
    break, or exhausted its ``groups * max_group_size`` pass bound in
    ``limits``).  ``group_counts`` holds each problem's real group count on
    the shared canvas; padding groups are fully masked, so they can never be
    downgraded, and the prefix totals never include them.

    Returns ``(feasible, value, selection)`` per problem, where ``selection``
    is ``None`` when even repair failed (value ``-inf``), exactly like the
    pure path's :class:`~repro.knapsack.mmkp.MMKPSolution` fields.
    """
    batch, num_groups, max_items = values.shape
    current = selections.copy()
    slack = capacities + 1e-9
    divisor = _np.where(capacities == 0.0, 1.0, capacities)
    done = _np.zeros(batch, dtype=bool)
    out: list[tuple[bool, float, tuple[int, ...] | None]] = [
        (False, float("-inf"), None)
    ] * batch
    batch_index = _np.arange(batch)
    batch_col = batch_index[:, None]
    group_row = _np.arange(num_groups)[None, :]
    item_cube = _np.arange(max_items)[None, None, :]

    passes = 0
    while not done.all():
        selected_rows = weights[batch_col, group_row, current]  # (B, G, D)
        used = _prefix_total(selected_rows, group_counts, batch_index)  # (B, D)
        feasible = (used <= slack).all(axis=1)

        finish_feasible = ~done & feasible
        if finish_feasible.any():
            totals = _prefix_total(
                values[batch_col, group_row, current], group_counts, batch_index
            )
            for b in _np.nonzero(finish_feasible)[0]:
                out[b] = (
                    True,
                    float(totals[b]),
                    tuple(int(i) for i in current[b, : group_counts[b]]),
                )
            done |= finish_feasible

        # The pure loop runs ``limit`` passes then re-checks once more; an
        # infeasible problem at its bound has just failed that final check.
        over_limit = ~done & (passes >= limits)
        done |= over_limit
        active = ~done
        if not active.any():
            break

        violations = (used - capacities) / divisor  # (B, D)
        worst = _np.argmax(violations, axis=1)  # first max, like pure ``max``
        current_weight = selected_rows[batch_col, group_row, worst[:, None]]  # (B, G)
        column = weights[
            batch_col[:, :, None], group_row[:, :, None], item_cube, worst[:, None, None]
        ]  # (B, G, I)
        savings = _np.where(mask, current_weight[:, :, None] - column, -_np.inf)
        flat = savings.reshape(batch, num_groups * max_items)
        best_flat = _np.argmax(flat, axis=1)  # first occurrence == pure scan order
        best_saving = flat[batch_index, best_flat]

        # ``best_group is None`` break: no strictly positive saving left and
        # the top-of-pass check was infeasible, so the final check re-fails.
        stuck = active & ~(best_saving > 0.0)
        done |= stuck
        apply = active & (best_saving > 0.0)
        if apply.any():
            rows = best_flat // max_items
            items = best_flat % max_items
            targets = _np.nonzero(apply)[0]
            current[targets, rows[targets]] = items[targets]
        passes += 1

    return out


# --------------------------------------------------------------------- #
# Batched subgradient loop
# --------------------------------------------------------------------- #
def _stack_packs(packs):
    """Embed same-dimension packs into one shared padded canvas.

    The canvas is ``(B, Gmax, Imax[, D])`` over the batch-wide maxima; each
    problem occupies its top-left corner, with padding *groups* (all items
    masked, value ``-inf``, weight ``0``) below its real ones.  Padding
    groups always argmax to item 0 and the prefix totals stop at the real
    group count, so problems of different sizes share one tensor without any
    representable difference in their arithmetic.
    """
    batch = len(packs)
    dims = int(packs[0].capacities.shape[0])
    group_max = max(p.values.shape[0] for p in packs)
    item_max = max(p.values.shape[1] for p in packs)
    values = _np.full((batch, group_max, item_max), -_np.inf)
    weights = _np.zeros((batch, group_max, item_max, dims))
    mask = _np.zeros((batch, group_max, item_max), dtype=bool)
    capacities = _np.empty((batch, dims))
    group_counts = _np.empty(batch, dtype=_np.int64)
    limits = _np.empty(batch, dtype=_np.int64)
    for b, pack in enumerate(packs):
        groups, items = pack.values.shape
        values[b, :groups, :items] = pack.values
        weights[b, :groups, :items, :] = pack.weights
        mask[b, :groups, :items] = pack.mask
        capacities[b] = pack.capacities
        group_counts[b] = groups
        limits[b] = groups * max(pack.group_sizes)
    return values, weights, mask, capacities, group_counts, limits


def _solve_stacked(packs, max_iterations: int, initial_step: float):
    """Run the subgradient method on same-dimension packs lock-step.

    Returns one ``(multipliers, dual_bound, best_primal, iterations)`` tuple
    per pack, bit-identical to running the pure loop on each problem alone.
    """
    batch = len(packs)
    values, weights, mask, capacities, group_counts, limits = _stack_packs(packs)
    dims = capacities.shape[1]
    num_groups = values.shape[1]
    batch_index = _np.arange(batch)
    batch_col = batch_index[:, None]
    group_row = _np.arange(num_groups)[None, :]

    multipliers = _np.zeros((batch, dims))
    best_dual = _np.full(batch, _np.inf)
    best_multipliers = _np.zeros((batch, dims))
    best_value = _np.full(batch, -_np.inf)
    best_selection: list[tuple[int, ...] | None] = [None] * batch
    best_feasible = [False] * batch
    iterations = _np.zeros(batch, dtype=_np.int64)
    active = _np.ones(batch, dtype=bool)
    repair_memo: list[dict] = [{} for _ in range(batch)]
    previous_selection = _np.full((batch, num_groups), -1, dtype=_np.int64)

    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # Relaxed selection: padded slots hold value -inf / weight 0, so the
        # penalty leaves them at -inf and no argmax can pick them.  The
        # penalty accumulates per dimension in the pure path's term order.
        penalty = multipliers[:, 0][:, None, None] * weights[..., 0]
        for d in range(1, dims):
            penalty = penalty + multipliers[:, d][:, None, None] * weights[..., d]
        reduced = values - penalty
        selection = _np.argmax(reduced, axis=2)  # (B, G), first-occurrence ties

        selected_values = values[batch_col, group_row, selection]  # (B, G)
        selected_rows = weights[batch_col, group_row, selection]  # (B, G, D)
        total_value = _prefix_total(selected_values, group_counts, batch_index)
        used = _prefix_total(selected_rows, group_counts, batch_index)  # (B, D)

        # Relaxed value = value + sum(m * (cap - used)), terms in pure order.
        gap = _np.zeros(batch)
        for d in range(dims):
            gap = gap + multipliers[:, d] * (capacities[:, d] - used[:, d])
        relaxed = total_value + gap

        improved = active & (relaxed < best_dual)
        if improved.any():
            best_dual[improved] = relaxed[improved]
            best_multipliers[improved] = multipliers[improved]

        # Primal repair — memoised per problem on the relaxed selection
        # (repair is a pure function of it, so a replay is bit-identical).
        # A problem whose selection is unchanged from the previous iteration
        # re-repairs to the same solution, and the pure path's strict ``>``
        # best update makes an equal value a no-op — so only problems whose
        # selection actually moved do any Python-level work here.
        changed = active & (selection != previous_selection).any(axis=1)
        if changed.any():
            changed_list = [int(b) for b in _np.nonzero(changed)[0]]
            keys = [selection[b].tobytes() for b in changed_list]
            need = [
                b for b, key in zip(changed_list, keys) if key not in repair_memo[b]
            ]
            if need:
                subset = _np.asarray(need)
                repaired = _repair_stacked(
                    values[subset],
                    weights[subset],
                    mask[subset],
                    capacities[subset],
                    group_counts[subset],
                    limits[subset],
                    selection[subset],
                )
                for b, outcome in zip(need, repaired):
                    repair_memo[b][selection[b].tobytes()] = outcome
            for b, key in zip(changed_list, keys):
                feasible, value, repaired_selection = repair_memo[b][key]
                if feasible and value > best_value[b]:
                    best_value[b] = value
                    best_selection[b] = repaired_selection
                    best_feasible[b] = True
        previous_selection = selection

        subgradient = used - capacities  # (B, D)
        converged = active & (_np.abs(subgradient) < 1e-12).all(axis=1)
        if converged.any():
            iterations[converged] = iteration
            active &= ~converged
        if not active.any():
            break

        step = initial_step / (iteration**0.5)
        updated = multipliers + step * subgradient
        updated = _np.where(updated > 0.0, updated, 0.0)  # max(0.0, x)
        multipliers = _np.where(active[:, None], updated, multipliers)

    iterations[active] = iteration

    results = []
    for b in range(batch):
        count = int(iterations[b])
        results.append(
            (
                tuple(float(m) for m in best_multipliers[b]),
                float(best_dual[b]),
                (
                    best_feasible[b],
                    float(best_value[b]) if best_feasible[b] else float("-inf"),
                    best_selection[b],
                ),
                count,
            )
        )
    return results


def solve_one(problem, max_iterations: int, initial_step: float):
    """Dense solve of a single problem (a lock-step batch of one)."""
    return solve_packed([pack_dense(problem)], max_iterations, initial_step)[0]


def solve_many(problems, max_iterations: int, initial_step: float):
    """Dense solve of many problems, grouped by knapsack dimension count.

    Problems sharing a dimension count are embedded into one padded canvas
    (batch-wide ``Gmax``/``Imax``, see :func:`_stack_packs`) and solved
    lock-step — one bucket per ``dims`` keeps a heterogeneous sweep in as few
    tensors as possible.  The result order follows the input order.
    """
    packs = [pack_dense(problem) for problem in problems]
    buckets: dict[int, list[int]] = {}
    for index, pack in enumerate(packs):
        buckets.setdefault(pack.shape_key[2], []).append(index)
    results: list = [None] * len(packs)
    for indices in buckets.values():
        solved = solve_packed([packs[i] for i in indices], max_iterations, initial_step)
        for i, result in zip(indices, solved):
            results[i] = result
    return results


def solve_packed(packs, max_iterations: int, initial_step: float):
    """Solve a same-dimension pack list; see :func:`_solve_stacked` for details."""
    return _solve_stacked(packs, max_iterations, initial_step)
